#!/usr/bin/env bash
# End-to-end smoke test of the verification service, driven through the
# real binaries the way an operator would use them:
#
#   1. start `unity-serve` on an ephemeral port over a fresh data dir
#   2. submit the ring16 battery twice via `unity-check --serve`
#      - the second response must answer from the artifact store
#        (cache hits) with verdicts identical to the first
#   3. kill the daemon with SIGKILL (no shutdown handler runs)
#   4. restart it over the same data dir and check the journal replayed
#      the full verdict history
set -euo pipefail

cd "$(dirname "$0")/.."

SPEC=examples/specs/priority_ring16.unity
DATA_DIR="$(mktemp -d)"
DAEMON_OUT="$(mktemp)"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$DATA_DIR" "$DAEMON_OUT"
}
trap cleanup EXIT

cargo build --release -q --bin unity-check -p unity-composition --bin unity-serve -p unity-serve

start_daemon() {
    target/release/unity-serve --data-dir "$DATA_DIR" --addr 127.0.0.1:0 > "$DAEMON_OUT" &
    DAEMON_PID=$!
    disown "$DAEMON_PID" # silence the shell's SIGKILL job report
    for _ in $(seq 1 50); do
        ADDR="$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$DAEMON_OUT")"
        [ -n "$ADDR" ] && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || { echo "error: daemon died at startup" >&2; exit 1; }
        sleep 0.1
    done
    echo "error: daemon never printed its address" >&2
    exit 1
}

echo "== cold submission"
start_daemon
first="$(target/release/unity-check "$SPEC" --serve "$ADDR")"
echo "$first"
grep -q 'ts\[reachable\]=Miss' <<<"$first" || { echo "error: cold run should miss the store" >&2; exit 1; }

echo "== warm submission (same daemon, same spec)"
second="$(target/release/unity-check "$SPEC" --serve "$ADDR")"
echo "$second"
grep -q 'ts\[reachable\]=Hit' <<<"$second" || { echo "error: warm run should hit the store" >&2; exit 1; }
grep -q 'pred\[reachable\]=Hit' <<<"$second" || { echo "error: warm run should hit the predecessor index" >&2; exit 1; }

# Verdict lines (PASS/FAIL) must be identical cold vs warm.
diff <(grep -E '^(PASS|FAIL)' <<<"$first") <(grep -E '^(PASS|FAIL)' <<<"$second") \
    || { echo "error: warm verdicts diverged from cold" >&2; exit 1; }

echo "== kill -9, restart over the same data dir"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
: > "$DAEMON_OUT"
start_daemon
grep -q '2 verdict(s) replayed' "$DAEMON_OUT" \
    || { echo "error: restart did not replay the journal: $(cat "$DAEMON_OUT")" >&2; exit 1; }

echo "== post-restart submission answers from disk"
third="$(target/release/unity-check "$SPEC" --serve "$ADDR")"
grep -q 'ts\[reachable\]=Hit' <<<"$third" || { echo "error: restarted daemon should hit the on-disk store" >&2; exit 1; }
grep -q 'verdict #3' <<<"$third" || { echo "error: sequence should resume at 3, got: $third" >&2; exit 1; }

echo "serve smoke: OK"
