#!/usr/bin/env bash
# Regression gate over the committed criterion baselines: re-runs one
# bench group through scripts/bench.sh (regenerating BENCH_<group>.json)
# and fails if any benchmark id shared with the previously committed
# baseline regressed its median by more than 30%. New/removed benchmark
# ids are ignored (they have no baseline to regress against), but the
# two runs must share at least one id.
#
#   scripts/bench_compare.sh e17_symbolic
#
# The fresh summary replaces BENCH_<group>.json in the working tree
# (CI uploads it as an artifact); use git to restore the baseline.
#
# Baselines carry absolute times from the machine that committed them,
# so cross-machine runs (CI runners vs a dev box) measure hardware
# difference as well as code difference. BENCH_COMPARE_TOLERANCE
# (default 1.30) widens the gate where that skew is known to be large.
set -euo pipefail

cd "$(dirname "$0")/.."

group="${1:?usage: scripts/bench_compare.sh <bench-group>}"
file="BENCH_${group}.json"
if [ ! -f "$file" ]; then
    echo "error: no committed baseline ${file} to compare against" >&2
    exit 1
fi

baseline="$(mktemp)"
trap 'rm -f "$baseline"' EXIT
cp "$file" "$baseline"

scripts/bench.sh "$group"

tol="${BENCH_COMPARE_TOLERANCE:-1.30}"

python3 - "$baseline" "$file" "$tol" <<'EOF'
import json, sys

tol = float(sys.argv[3])
base = {r["id"]: r["median_ns"] for r in json.load(open(sys.argv[1]))}
fresh = {r["id"]: r["median_ns"] for r in json.load(open(sys.argv[2]))}
shared = sorted(set(base) & set(fresh))
if not shared:
    sys.exit("error: baseline and fresh run share no benchmark ids")
bad = []
for k in shared:
    ratio = fresh[k] / base[k]
    flag = "  <-- REGRESSION" if ratio > tol else ""
    print(f"  {k}: {base[k]/1e3:.1f}us -> {fresh[k]/1e3:.1f}us (x{ratio:.2f}){flag}")
    if ratio > tol:
        bad.append(k)
if bad:
    sys.exit(
        f"error: {len(bad)} benchmark(s) regressed >{tol:.0%}-of-baseline "
        f"vs the committed medians: {', '.join(bad)}"
    )
print(f"OK: no >x{tol:.2f} median regression across {len(shared)} shared benchmark(s)")
EOF
