#!/usr/bin/env bash
# Chaos smoke: the resilience contract exercised through the real
# binaries, the way an operator would hit it:
#
#   1. build `unity-serve` with the `failpoints` feature and arm a
#      crash schedule drawn from a seeded random pick of the daemon's
#      persistence crashpoints (plus a probabilistic worker delay)
#   2. submit specs with `unity-check --serve` until the daemon dies
#      mid-request; count the *acked* verdicts (client exit 0)
#   3. restart the daemon clean over the same data dir and audit:
#      every acked verdict replayed (at most one extra — a record that
#      became durable after fsync but before the ack), sequence
#      numbers contiguous, next submission verifies fine
#   4. SIGTERM the healthy daemon: it must drain and exit 0
#
# CHAOS_SEED pins the schedule for reproduction; default is random.
set -euo pipefail

cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-$RANDOM}"
echo "== chaos seed: $SEED (rerun with CHAOS_SEED=$SEED)"

POINTS=(
    "journal.append.write=1*abort"
    "journal.append.write=1*truncate(25)"
    "journal.append.pre_fsync=1*abort"
    "journal.append.post_fsync=1*abort"
    "store.save.torn=1*truncate(64)"
    "store.save.segment=1*abort"
    "service.verify.pre_journal=1*abort"
)
POINT="${POINTS[$((SEED % ${#POINTS[@]}))]}"
SCHEDULE="$POINT;pool.job=25%delay(10)"
echo "== crash schedule: $SCHEDULE"

SPEC=examples/specs/toy.unity
DATA_DIR="$(mktemp -d)"
DAEMON_OUT="$(mktemp)"
DAEMON_ERR="$(mktemp)"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$DATA_DIR" "$DAEMON_OUT" "$DAEMON_ERR"
}
trap cleanup EXIT

cargo build -q -p unity-serve --features failpoints --bin unity-serve
cargo build -q -p unity-composition --bin unity-check

# start_daemon [env UNITY_FAILPOINTS already exported or not]
start_daemon() {
    target/debug/unity-serve --data-dir "$DATA_DIR" --addr 127.0.0.1:0 --workers 1 \
        > "$DAEMON_OUT" 2> "$DAEMON_ERR" &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        ADDR="$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$DAEMON_OUT")"
        [ -n "$ADDR" ] && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || { echo "error: daemon died at startup" >&2; cat "$DAEMON_ERR" >&2; exit 1; }
        sleep 0.1
    done
    echo "error: daemon never printed its address" >&2
    exit 1
}

echo "== armed daemon up; submitting until the crashpoint fires"
export UNITY_FAILPOINTS="$SCHEDULE" UNITY_FAILPOINTS_SEED="$SEED"
start_daemon
unset UNITY_FAILPOINTS UNITY_FAILPOINTS_SEED
grep -q 'failpoint(s) armed' "$DAEMON_ERR" \
    || { echo "error: daemon did not arm the failpoints (built without the feature?)" >&2; exit 1; }

ACKED=0
CRASHED=0
for i in $(seq 1 20); do
    if target/debug/unity-check "$SPEC" --serve "$ADDR" --quiet 2>/dev/null; then
        ACKED=$((ACKED + 1))
    else
        CRASHED=1
        break
    fi
done
[ "$CRASHED" = 1 ] || { echo "error: 20 submissions and the crashpoint never fired" >&2; exit 1; }

# The failed submission must be a *daemon* death, not a client quirk.
for _ in $(seq 1 50); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$DAEMON_PID" 2>/dev/null && { echo "error: client failed but the daemon survived" >&2; exit 1; }
DAEMON_PID=""
echo "== daemon crashed after $ACKED acked verdict(s)"

echo "== clean restart over the same data dir"
: > "$DAEMON_OUT"; : > "$DAEMON_ERR"
start_daemon
REPLAYED="$(sed -n 's|.* \([0-9]*\) verdict(s) replayed.*|\1|p' "$DAEMON_OUT")"
echo "   replayed $REPLAYED verdict(s)"
# No acked verdict lost; at most one durable-but-unacked extra record
# (the post-fsync crash window).
[ "$REPLAYED" -ge "$ACKED" ] || { echo "error: lost acked verdicts ($REPLAYED < $ACKED)" >&2; exit 1; }
[ "$REPLAYED" -le "$((ACKED + 1))" ] || { echo "error: phantom verdicts replayed ($REPLAYED > $ACKED + 1)" >&2; exit 1; }

next="$(target/debug/unity-check "$SPEC" --serve "$ADDR")"
grep -q "verdict #$((REPLAYED + 1))" <<<"$next" \
    || { echo "error: sequence not contiguous after recovery: $next" >&2; exit 1; }
grep -q 'PASS' <<<"$next" || { echo "error: recovered daemon returned a wrong answer: $next" >&2; exit 1; }

echo "== SIGTERM: graceful drain must exit 0"
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" 2>/dev/null || RC=$?
DAEMON_PID=""
[ "$RC" = 0 ] || { echo "error: drain exited $RC" >&2; cat "$DAEMON_ERR" >&2; exit 1; }
grep -q 'drained, exiting' "$DAEMON_ERR" \
    || { echo "error: no drain notice on stderr: $(cat "$DAEMON_ERR")" >&2; exit 1; }

echo "chaos smoke: OK (seed $SEED, $POINT)"
