#!/usr/bin/env bash
# Runs the headline criterion groups (e6 state-space build, e8 simulator
# throughput, e17 symbolic engine, e19 verifier-session reuse, plus any
# extra groups passed as arguments) and emits one machine-readable
# summary file per group:
# BENCH_<group>.json, a JSON array of {id, median_ns, mean_ns, min_ns,
# samples, iters_per_sample, elements} records (the vendored criterion
# shim appends one object per benchmark when CRITERION_SUMMARY_JSON is
# set). The script fails if any summary it writes contains no benchmark
# records — an empty artifact means the group silently did not run.
#
#   scripts/bench.sh                 # e6 + e8 + e17 + e19 + e20 + e21 + e22 + e23
#   scripts/bench.sh e2_safety e11_projection
set -euo pipefail

cd "$(dirname "$0")/.."

groups=("$@")
if [ ${#groups[@]} -eq 0 ]; then
    groups=(e6_statespace e8_throughput e17_symbolic e19_session e20_leadsto e21_parallel_build e22_serve e23_compose)
fi

for group in "${groups[@]}"; do
    raw="$(mktemp)"
    out="BENCH_${group}.json"
    echo "== ${group} -> ${out}"
    CRITERION_SUMMARY_JSON="$raw" cargo bench -q -p composition-bench --bench "$group"
    # jsonl -> json array
    {
        echo '['
        sed '$!s/$/,/' "$raw"
        echo ']'
    } > "$out"
    rm -f "$raw"
    count="$(grep -c '"id"' "$out" || true)"
    if [ "$count" -eq 0 ]; then
        echo "error: ${out} is empty (no benchmark records for ${group})" >&2
        exit 1
    fi
    echo "   ${count} benchmark(s) summarized"
done
