//! Cross-crate soundness tests for the guarantees calculus
//! (`unity_core::guarantee::calculus`).
//!
//! The calculus's entailment facts (`prop_entails`) claim: "any program
//! satisfying `a` satisfies `b`". Here those claims are validated
//! *semantically* against the model checker — for a pool of programs and
//! an exhaustive pool of property pairs, whenever the calculus says
//! `a ⊩ b` and the checker proves `a`, the checker must also prove `b`.
//! Then the end-to-end flow of the paper's §2 remark (existential
//! liveness via `guarantees`) is exercised on the toy system.

use std::sync::Arc;

use unity_core::prelude::*;
use unity_mc::prelude::*;

/// Small program pool: a bounded counter, a flip-flop pair, and a
/// saturating two-variable machine — diverse enough to kill unsound
/// entailment facts.
fn program_pool() -> Vec<Program> {
    let mut out = Vec::new();
    {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        out.push(
            Program::builder("count", Arc::new(v))
                .init(eq(var(x), int(0)))
                .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
                .build()
                .unwrap(),
        );
    }
    {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        out.push(
            Program::builder("flip", Arc::new(v))
                .init(le(var(x), int(1)))
                .fair_command("up", eq(var(x), int(0)), vec![(x, int(1))])
                .fair_command("down", eq(var(x), int(1)), vec![(x, int(0))])
                .build()
                .unwrap(),
        );
    }
    {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        out.push(
            Program::builder("sat", Arc::new(v))
                .init(eq(var(x), int(2)))
                .command("dec", gt(var(x), int(0)), vec![(x, sub(var(x), int(1)))])
                .fair_command("cap", gt(var(x), int(2)), vec![(x, int(2))])
                .build()
                .unwrap(),
        );
    }
    out
}

/// Exhaustive property pool over the (single) variable `x`.
fn property_pool(v: &Vocabulary) -> Vec<Property> {
    let x = v.lookup("x").unwrap();
    let preds = [
        eq(var(x), int(0)),
        eq(var(x), int(1)),
        le(var(x), int(1)),
        le(var(x), int(2)),
        ge(var(x), int(1)),
        tt(),
        ff(),
    ];
    let mut out = Vec::new();
    for p in &preds {
        out.push(Property::Init(p.clone()));
        out.push(Property::Transient(p.clone()));
        out.push(Property::Stable(p.clone()));
        out.push(Property::Invariant(p.clone()));
        for q in &preds {
            out.push(Property::Next(p.clone(), q.clone()));
            out.push(Property::LeadsTo(p.clone(), q.clone()));
        }
    }
    out
}

#[test]
fn prop_entails_is_semantically_sound() {
    let cfg = ScanConfig::default();
    let mut checked_pairs = 0usize;
    for program in program_pool() {
        let vocab = program.vocab.clone();
        let pool = property_pool(&vocab);
        let mut valid = |e: &unity_core::expr::Expr| check_valid(&vocab, e, &cfg).is_ok();
        // Which pool properties does this program satisfy?
        let holds: Vec<bool> = pool
            .iter()
            .map(|p| check_property(&program, p, Universe::Reachable, &cfg).is_ok())
            .collect();
        for (i, a) in pool.iter().enumerate() {
            if !holds[i] {
                continue;
            }
            for (j, b) in pool.iter().enumerate() {
                if prop_entails(a, b, &mut valid) {
                    checked_pairs += 1;
                    assert!(
                        holds[j],
                        "[{}] claims {} ⊩ {} but the checker refutes the conclusion",
                        program.name,
                        a.display(&vocab),
                        b.display(&vocab),
                    );
                }
            }
        }
    }
    assert!(
        checked_pairs > 200,
        "expected a substantial number of entailment pairs, got {checked_pairs}"
    );
}

#[test]
fn set_entails_soundness_on_random_subsets() {
    // Conjunction-set entailment: if xs ⊒ ys and a program satisfies all
    // of xs, it satisfies all of ys.
    let cfg = ScanConfig::default();
    for program in program_pool() {
        let vocab = program.vocab.clone();
        let pool = property_pool(&vocab);
        let mut valid = |e: &unity_core::expr::Expr| check_valid(&vocab, e, &cfg).is_ok();
        let holds: Vec<bool> = pool
            .iter()
            .map(|p| check_property(&program, p, Universe::Reachable, &cfg).is_ok())
            .collect();
        let held: Vec<Property> = pool
            .iter()
            .zip(&holds)
            .filter(|(_, h)| **h)
            .map(|(p, _)| p.clone())
            .take(12)
            .collect();
        for b in &pool {
            if set_entails(&held, std::slice::from_ref(b), &mut valid) {
                assert!(
                    check_property(&program, b, Universe::Reachable, &cfg).is_ok(),
                    "[{}] held set entails {} but the checker refutes it",
                    program.name,
                    b.display(&vocab),
                );
            }
        }
    }
}

/// End-to-end: the paper's remark that existential liveness properties
/// (leadsto on the right of guarantees) compose. Component 0 of the toy
/// system publishes `init (C == 0 && c0 == 0) guarantees (true ↦ C ≥ 1)`
/// — proved here by `transient`-style reasoning at the component level —
/// and elimination on the composed system yields a fact the fair checker
/// confirms on the composition.
#[test]
fn guarantees_elimination_on_toy_composition() {
    // Two toy components sharing C.
    let mut v = Vocabulary::new();
    let c0 = v.declare("c0", Domain::int_range(0, 1).unwrap()).unwrap();
    let c1 = v.declare("c1", Domain::int_range(0, 1).unwrap()).unwrap();
    let big = v.declare("C", Domain::int_range(0, 2).unwrap()).unwrap();
    let vocab = Arc::new(v);
    let mk = |name: &str, c: VarId, vocab: Arc<Vocabulary>| {
        Program::builder(name, vocab)
            .local(c)
            .init(and2(eq(var(c), int(0)), eq(var(big), int(0))))
            .fair_command(
                format!("a_{name}"),
                lt(var(c), int(1)),
                vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap()
    };
    let f = mk("F", c0, vocab.clone());
    let g = mk("G", c1, vocab.clone());
    let sys = System::compose(vec![f.clone(), g], InitSatCheck::Exhaustive).unwrap();
    let cfg = ScanConfig::default();

    // Component-level existential fact: transient (c0 == 0 && C == 0).
    // (Fair command a_F falsifies it from every such state.)
    let tr = Property::Transient(and2(eq(var(c0), int(0)), eq(var(big), int(0))));
    check_property(&f, &tr, Universe::Reachable, &cfg).unwrap();

    // Introduce ∅ guarantees {transient ...} via the calculus.
    let mut valid = |e: &unity_core::expr::Expr| check_valid(&vocab, e, &cfg).is_ok();
    let mut holds = |p: &Property| check_property(&f, p, Universe::Reachable, &cfg).is_ok();
    let mut ctx = CalcCtx {
        valid: &mut valid,
        component_holds: &mut holds,
    };
    let clause = check_gproof(&GProof::FromExistential { prop: tr.clone() }, &mut ctx).unwrap();
    assert!(clause.hypothesis.is_empty());

    // Eliminate on the composed system (empty hypothesis: trivially
    // discharged) and confirm the conclusion on the composition.
    let mut valid = |e: &unity_core::expr::Expr| check_valid(&vocab, e, &cfg).is_ok();
    let out = eliminate(&clause, &[], &mut valid).unwrap();
    assert_eq!(out, vec![tr.clone()]);
    check_property(&sys.composed, &tr, Universe::Reachable, &cfg).unwrap();

    // And the existential fact feeds the fair checker's liveness:
    // true ↦ C ≥ 1 holds on the composition.
    check_leadsto(
        &sys.composed,
        &tt(),
        &ge(var(big), int(1)),
        Universe::Reachable,
        &cfg,
    )
    .unwrap();
}

/// The elimination direction must not be reversible: conclusions do not
/// discharge hypotheses.
#[test]
fn eliminate_rejects_insufficient_facts() {
    let mut v = Vocabulary::new();
    let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    let vocab = Arc::new(v);
    let cfg = ScanConfig::default();
    let mut valid = |e: &unity_core::expr::Expr| check_valid(&vocab, e, &cfg).is_ok();
    let clause = GuaranteeClause::new(
        vec![Property::Stable(eq(var(x), int(0)))],
        vec![Property::Init(tt())],
    );
    assert!(eliminate(&clause, &[Property::Init(tt())], &mut valid).is_err());
}
