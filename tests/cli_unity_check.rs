//! End-to-end tests of the `unity-check` binary against the shipped
//! example specifications.

use std::process::Command;

fn unity_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_unity-check"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn toy_spec_passes() {
    let out = unity_check(&["examples/specs/toy.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("PASS conservation"), "{stdout}");
    assert!(stdout.contains("PASS weakened0"), "{stdout}");
    assert!(stdout.contains("PASS saturation"), "{stdout}");
    assert!(!stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn priority_ring_spec_passes() {
    let out = unity_check(&["examples/specs/priority_ring3.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for check in [
        "excl01", "excl12", "excl02", "live0", "live1", "live2", "acyclic",
    ] {
        assert!(
            stdout.contains(&format!("PASS {check}")),
            "{check}: {stdout}"
        );
    }
}

#[test]
fn broken_spec_fails_with_counterexample() {
    let out = unity_check(&["examples/specs/broken.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL conservation"), "{stdout}");
    // The counterexample names the offending command.
    assert!(stdout.contains("a1"), "{stdout}");
}

#[test]
fn list_mode_shows_checks_without_checking() {
    let out = unity_check(&["examples/specs/broken.unity", "--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "--list must not run checks: {stdout}");
    assert!(stdout.contains("conservation"), "{stdout}");
}

#[test]
fn sim_mode_writes_a_trace() {
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("toy_trace.json");
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--sim",
        "200",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SIM-PASS conservation"), "{stdout}");
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.starts_with("{\"program\":"));
    assert!(json.contains("\"vars\":[\"c0\",\"C\",\"c1\"]"), "{json}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn json_report_for_passing_spec() {
    use unity_composition::unity_mc::prelude::*;
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy_report.json");
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--json",
        path.to_str().unwrap(),
        "--sim",
        "50",
        "--quiet",
    ]);
    assert!(out.status.success(), "exit 0 unchanged by --json");
    let json = std::fs::read_to_string(&path).unwrap();
    let report = Report::from_json(&json).expect("schema parses");
    // Stable schema: engine/universe/vars and one verdict per check.
    assert_eq!(report.engine, Engine::Compiled);
    assert_eq!(report.universe, Universe::Reachable);
    assert_eq!(report.vars, vec!["c0", "C", "c1"]);
    let names: Vec<&str> = report.checks.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["conservation", "weakened0", "saturation"]);
    assert!(report.checks.iter().all(|c| c.verdict.passed()));
    // The leadsto check carries transition-system counters.
    assert!(matches!(
        report.checks[2].verdict.stats,
        VerdictStats::Explicit { states, .. } if states > 0
    ));
    // Simulation monitors landed in the same report.
    assert_eq!(report.sim.len(), 2, "two invariant checks monitored");
    assert!(report.sim.iter().all(|s| s.passed && s.steps == 50));
    assert!(report.all_passed());
    // Round-trip: serialized forms identical.
    assert_eq!(report.to_json(), json);
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_report_for_leadsto_heavy_spec_round_trips_with_traversal_counters() {
    use unity_composition::unity_mc::prelude::*;
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("priority_report.json");
    // Three of the seven checks are leadsto properties: the report must
    // carry the worklist engine's traversal counters and round-trip
    // exactly.
    let out = unity_check(&[
        "examples/specs/priority_ring3.unity",
        "--json",
        path.to_str().unwrap(),
        "--stats",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // --stats aggregates the liveness counters across leadsto checks.
    assert!(stdout.contains("STATS leadsto: 3 check(s)"), "{stdout}");
    assert!(stdout.contains("predecessor edge(s) walked"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"scanned_states\":"), "{json}");
    assert!(json.contains("\"pred_edges\":"), "{json}");
    assert!(json.contains("\"worklist_pushes\":"), "{json}");
    let report = Report::from_json(&json).expect("schema parses");
    let live: Vec<_> = report
        .checks
        .iter()
        .filter(|c| c.name.starts_with("live"))
        .collect();
    assert_eq!(live.len(), 3);
    for c in &live {
        assert!(c.verdict.passed());
        match c.verdict.stats {
            VerdictStats::Explicit {
                states,
                transitions,
                scanned_states,
                ..
            } => {
                assert!(states > 0 && transitions > 0);
                assert!(
                    scanned_states < states,
                    "the ¬q region is a strict subset: {:?}",
                    c.verdict.stats
                );
            }
            ref other => panic!("leadsto carries explicit stats, got {other:?}"),
        }
    }
    // Round-trip: serialized forms identical, counters included.
    assert_eq!(report.to_json(), json);
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_report_for_failing_spec_carries_the_witness() {
    use unity_composition::unity_mc::prelude::*;
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken_report.json");
    let out = unity_check(&[
        "examples/specs/broken.unity",
        "--json",
        path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(1), "exit 1 unchanged by --json");
    let json = std::fs::read_to_string(&path).unwrap();
    let report = Report::from_json(&json).unwrap();
    let failed = report
        .checks
        .iter()
        .find(|c| c.name == "conservation")
        .unwrap();
    assert!(failed.verdict.failed());
    // The decoded witness survives serialization: a next-step with the
    // offending command and both states.
    match failed.verdict.counterexample().unwrap() {
        Counterexample::Next {
            state,
            command,
            after,
        } => {
            assert_eq!(command.as_deref(), Some("a1"));
            assert_eq!(state.values().len(), report.vars.len());
            assert_eq!(after.values().len(), report.vars.len());
        }
        other => panic!("unexpected witness {other:?}"),
    }
    assert!(!report.all_passed());
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_report_on_infrastructure_error_exits_2_but_persists() {
    use unity_composition::unity_mc::prelude::*;
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    // A space far past the scan budget: the check errors (exit 2), and
    // the JSON report still records the error verdict.
    let spec = dir.join("huge.unity");
    std::fs::write(
        &spec,
        "program Huge\n  var x : int 0..99999999\n  init x == 0\n  \
         fair cmd up: x < 99999999 -> x := x + 1\nend\n\
         spec S\n  cap: invariant x <= 99999999\nend\n",
    )
    .unwrap();
    let path = dir.join("huge_report.json");
    let out = unity_check(&[
        spec.to_str().unwrap(),
        "--json",
        path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(2), "infrastructure error is exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cap"), "{stderr}");
    let report = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(report.checks[0].verdict.error().is_some());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn json_flag_requires_a_path() {
    let out = unity_check(&["examples/specs/toy.unity", "--json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_errors_exit_2() {
    let out = unity_check(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = unity_check(&["examples/specs/toy.unity", "--universe", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = unity_check(&["/nonexistent/file.unity"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stabilize_spec_passes_under_all_states_and_synthesizes() {
    // Dijkstra's ring has `initially = true`: convergence must hold from
    // *every* state, so the all-states universe is the honest one here.
    let out = unity_check(&[
        "examples/specs/stabilize_ring3.unity",
        "--universe",
        "all",
        "--synthesize",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for check in ["pigeonhole", "closure", "convergence"] {
        assert!(
            stdout.contains(&format!("PASS {check}")),
            "{check}: {stdout}"
        );
    }
    assert!(stdout.contains("SYNTH convergence:"), "{stdout}");
    assert!(!stdout.contains("SYNTH-FAIL"), "{stdout}");
}

#[test]
fn conserve_mode_discovers_the_law() {
    let out = unity_check(&["examples/specs/toy.unity", "--conserve", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("CONSERVE: basis dimension 1"), "{stdout}");
    assert!(stdout.contains("=> invariant"), "{stdout}");
}

#[test]
fn synthesize_mode_proves_the_leadsto_checks() {
    let out = unity_check(&["examples/specs/toy.unity", "--synthesize", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SYNTH saturation:"), "{stdout}");
    assert!(stdout.contains("premises"), "{stdout}");
    assert!(!stdout.contains("SYNTH-FAIL"), "{stdout}");
}

#[test]
fn synthesize_mode_reports_unprovable_goals() {
    // Under the all-states universe, saturation is a reachable-only truth:
    // the synthesizer must refuse (unreachable saturated traps), while the
    // safety checks still pass.
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--universe",
        "all",
        "--synthesize",
        "--quiet",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Exit code 1 comes from the FAIL of the leadsto *check* itself.
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // The synthesizer works over the reachable universe and still
    // succeeds — the report makes the semantic split visible.
    assert!(stdout.contains("SYNTH"), "{stdout}");
}

#[test]
fn mutate_mode_audits_the_file_specs() {
    let out = unity_check(&["examples/specs/toy.unity", "--mutate", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("MUTATE: mutants:"), "{stdout}");
    assert!(stdout.contains("kill ratio 1.00"), "{stdout}");
}

#[test]
fn mutate_mode_on_failing_spec_reports_error() {
    // The broken file's conservation check fails on the original program:
    // the audit must refuse rather than produce a meaningless ratio.
    let out = unity_check(&["examples/specs/broken.unity", "--mutate", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("MUTATE-ERROR"), "{stdout}");
}

#[test]
fn all_states_universe_distinguishes_liveness() {
    // Safety checks are insensitive to the universe, but `true ↦ C == 4`
    // is a *reachable* truth: the all-states universe contains unreachable
    // saturated states (e.g. c0=2, c1=2, C=3) where no command can fire,
    // and the checker correctly reports the trap. The CLI exposes exactly
    // this semantic distinction.
    let out = unity_check(&["examples/specs/toy.unity", "--universe", "all"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("PASS conservation"), "{stdout}");
    assert!(stdout.contains("PASS weakened0"), "{stdout}");
    assert!(stdout.contains("FAIL saturation"), "{stdout}");
    assert!(stdout.contains("fair trap"), "{stdout}");
}

#[test]
fn version_flag_prints_and_exits_0() {
    let out = unity_check(&["--version"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.starts_with("unity-check "),
        "version banner: {stdout}"
    );
    // -V shorthand, and --version wins even when other arguments follow.
    let out = unity_check(&["-V"]);
    assert!(out.status.success());
}

#[test]
fn unknown_flags_exit_2_even_with_file_set() {
    // A stray flag after FILE must be a usage error, not silently
    // ignored (or worse, treated as a second FILE).
    let out = unity_check(&["examples/specs/toy.unity", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    // Before FILE too.
    let out = unity_check(&["--bogus", "examples/specs/toy.unity"]);
    assert_eq!(out.status.code(), Some(2));
    // A second bare argument is rejected as well.
    let out = unity_check(&["examples/specs/toy.unity", "examples/specs/broken.unity"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FILE already given"), "{stderr}");
}

#[test]
fn help_flag_lists_every_accepted_flag() {
    // `--help` is asked-for output: stdout, exit 0 — and the usage text
    // must mention every flag the parser accepts, so a flag can never
    // ship undocumented.
    for help in [&["--help"][..], &["-h"][..]] {
        let out = unity_check(help);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{help:?}: {stdout}");
        for flag in [
            "--engine",
            "--order",
            "--stats",
            "--universe",
            "--compositional",
            "--threads",
            "--sim",
            "--seed",
            "--serve",
            "--trace",
            "--json",
            "--list",
            "--quiet",
            "--conserve",
            "--synthesize",
            "--mutate",
            "--help",
            "--version",
        ] {
            assert!(stdout.contains(flag), "usage text missing {flag}: {stdout}");
        }
    }
}

#[test]
fn compositional_matches_flat_verdicts_and_names_rules() {
    // The acceptance bar for assume-guarantee checking: verdicts are
    // identical to the flat product run on every shipped spec, and each
    // discharged obligation names the rule that closed it.
    for spec in [
        "examples/specs/toy.unity",
        "examples/specs/broken.unity",
        "examples/specs/priority_ring3.unity",
        "examples/specs/stabilize_ring3.unity",
    ] {
        let flat = unity_check(&[spec]);
        let comp = unity_check(&[spec, "--compositional"]);
        assert_eq!(comp.status.code(), flat.status.code(), "{spec}");
        let verdicts = |raw: &[u8]| -> Vec<String> {
            String::from_utf8_lossy(raw)
                .lines()
                .filter(|l| l.starts_with("PASS") || l.starts_with("FAIL"))
                .map(|l| l.split(':').next().unwrap().to_string())
                .collect()
        };
        assert_eq!(verdicts(&comp.stdout), verdicts(&flat.stdout), "{spec}");
        // Every compositional verdict line carries its `[rule]` tag.
        let text = String::from_utf8_lossy(&comp.stdout);
        for line in text
            .lines()
            .filter(|l| l.starts_with("PASS") || l.starts_with("FAIL"))
        {
            assert!(line.ends_with(']'), "{spec}: no rule tag on {line:?}");
        }
    }
}

#[test]
fn compositional_stats_and_json_carry_discharge_provenance() {
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("compositional_report.json");
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--compositional",
        "--stats",
        "--json",
        path.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("STATS compositional:"), "{stdout}");
    assert!(stdout.contains("obligation(s)"), "{stdout}");
    assert!(stdout.contains("cert miss(es)"), "{stdout}");
    // The JSON report records the same provenance machine-readably.
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"discharge\""), "{json}");
    assert!(json.contains("\"rule\":"), "{json}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn compositional_rejects_flat_only_analyses() {
    for flag in ["--synthesize", "--mutate"] {
        let out = unity_check(&["examples/specs/toy.unity", "--compositional", flag]);
        assert_eq!(out.status.code(), Some(2), "{flag}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("does not apply with --compositional"),
            "{flag}: {stderr}"
        );
    }
}

#[test]
fn engine_flag_selects_identical_verdicts() {
    // Every engine must agree check-for-check on the shipped specs —
    // passing and failing alike (the acceptance bar for the symbolic
    // backend).
    for spec in [
        "examples/specs/toy.unity",
        "examples/specs/broken.unity",
        "examples/specs/priority_ring3.unity",
        "examples/specs/stabilize_ring3.unity",
    ] {
        let baseline = unity_check(&[spec, "--engine", "explicit"]);
        let base_out = String::from_utf8_lossy(&baseline.stdout).to_string();
        for engine in ["symbolic", "reference"] {
            let out = unity_check(&[spec, "--engine", engine]);
            assert_eq!(
                out.status.code(),
                baseline.status.code(),
                "{spec} under {engine}"
            );
            let text = String::from_utf8_lossy(&out.stdout);
            // PASS/FAIL lines must match verdict-for-verdict.
            let verdicts = |s: &str| -> Vec<String> {
                s.lines()
                    .filter(|l| l.starts_with("PASS") || l.starts_with("FAIL"))
                    .map(|l| l.split(':').next().unwrap().to_string())
                    .collect()
            };
            assert_eq!(
                verdicts(&text),
                verdicts(&base_out),
                "{spec} under {engine}: {text}"
            );
        }
    }
    let out = unity_check(&["examples/specs/toy.unity", "--engine", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
