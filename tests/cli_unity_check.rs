//! End-to-end tests of the `unity-check` binary against the shipped
//! example specifications.

use std::process::Command;

fn unity_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_unity-check"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn toy_spec_passes() {
    let out = unity_check(&["examples/specs/toy.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("PASS conservation"), "{stdout}");
    assert!(stdout.contains("PASS weakened0"), "{stdout}");
    assert!(stdout.contains("PASS saturation"), "{stdout}");
    assert!(!stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn priority_ring_spec_passes() {
    let out = unity_check(&["examples/specs/priority_ring3.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for check in [
        "excl01", "excl12", "excl02", "live0", "live1", "live2", "acyclic",
    ] {
        assert!(
            stdout.contains(&format!("PASS {check}")),
            "{check}: {stdout}"
        );
    }
}

#[test]
fn broken_spec_fails_with_counterexample() {
    let out = unity_check(&["examples/specs/broken.unity"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL conservation"), "{stdout}");
    // The counterexample names the offending command.
    assert!(stdout.contains("a1"), "{stdout}");
}

#[test]
fn list_mode_shows_checks_without_checking() {
    let out = unity_check(&["examples/specs/broken.unity", "--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "--list must not run checks: {stdout}");
    assert!(stdout.contains("conservation"), "{stdout}");
}

#[test]
fn sim_mode_writes_a_trace() {
    let dir = std::env::temp_dir().join("unity_check_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("toy_trace.json");
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--sim",
        "200",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SIM-PASS conservation"), "{stdout}");
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.starts_with("{\"program\":"));
    assert!(json.contains("\"vars\":[\"c0\",\"C\",\"c1\"]"), "{json}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = unity_check(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = unity_check(&["examples/specs/toy.unity", "--universe", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = unity_check(&["/nonexistent/file.unity"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stabilize_spec_passes_under_all_states_and_synthesizes() {
    // Dijkstra's ring has `initially = true`: convergence must hold from
    // *every* state, so the all-states universe is the honest one here.
    let out = unity_check(&[
        "examples/specs/stabilize_ring3.unity",
        "--universe",
        "all",
        "--synthesize",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for check in ["pigeonhole", "closure", "convergence"] {
        assert!(
            stdout.contains(&format!("PASS {check}")),
            "{check}: {stdout}"
        );
    }
    assert!(stdout.contains("SYNTH convergence:"), "{stdout}");
    assert!(!stdout.contains("SYNTH-FAIL"), "{stdout}");
}

#[test]
fn conserve_mode_discovers_the_law() {
    let out = unity_check(&["examples/specs/toy.unity", "--conserve", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("CONSERVE: basis dimension 1"), "{stdout}");
    assert!(stdout.contains("=> invariant"), "{stdout}");
}

#[test]
fn synthesize_mode_proves_the_leadsto_checks() {
    let out = unity_check(&["examples/specs/toy.unity", "--synthesize", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SYNTH saturation:"), "{stdout}");
    assert!(stdout.contains("premises"), "{stdout}");
    assert!(!stdout.contains("SYNTH-FAIL"), "{stdout}");
}

#[test]
fn synthesize_mode_reports_unprovable_goals() {
    // Under the all-states universe, saturation is a reachable-only truth:
    // the synthesizer must refuse (unreachable saturated traps), while the
    // safety checks still pass.
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--universe",
        "all",
        "--synthesize",
        "--quiet",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Exit code 1 comes from the FAIL of the leadsto *check* itself.
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // The synthesizer works over the reachable universe and still
    // succeeds — the report makes the semantic split visible.
    assert!(stdout.contains("SYNTH"), "{stdout}");
}

#[test]
fn mutate_mode_audits_the_file_specs() {
    let out = unity_check(&["examples/specs/toy.unity", "--mutate", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("MUTATE: mutants:"), "{stdout}");
    assert!(stdout.contains("kill ratio 1.00"), "{stdout}");
}

#[test]
fn mutate_mode_on_failing_spec_reports_error() {
    // The broken file's conservation check fails on the original program:
    // the audit must refuse rather than produce a meaningless ratio.
    let out = unity_check(&["examples/specs/broken.unity", "--mutate", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("MUTATE-ERROR"), "{stdout}");
}

#[test]
fn all_states_universe_distinguishes_liveness() {
    // Safety checks are insensitive to the universe, but `true ↦ C == 4`
    // is a *reachable* truth: the all-states universe contains unreachable
    // saturated states (e.g. c0=2, c1=2, C=3) where no command can fire,
    // and the checker correctly reports the trap. The CLI exposes exactly
    // this semantic distinction.
    let out = unity_check(&["examples/specs/toy.unity", "--universe", "all"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("PASS conservation"), "{stdout}");
    assert!(stdout.contains("PASS weakened0"), "{stdout}");
    assert!(stdout.contains("FAIL saturation"), "{stdout}");
    assert!(stdout.contains("fair trap"), "{stdout}");
}

#[test]
fn version_flag_prints_and_exits_0() {
    let out = unity_check(&["--version"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.starts_with("unity-check "),
        "version banner: {stdout}"
    );
    // -V shorthand, and --version wins even when other arguments follow.
    let out = unity_check(&["-V"]);
    assert!(out.status.success());
}

#[test]
fn unknown_flags_exit_2_even_with_file_set() {
    // A stray flag after FILE must be a usage error, not silently
    // ignored (or worse, treated as a second FILE).
    let out = unity_check(&["examples/specs/toy.unity", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    // Before FILE too.
    let out = unity_check(&["--bogus", "examples/specs/toy.unity"]);
    assert_eq!(out.status.code(), Some(2));
    // A second bare argument is rejected as well.
    let out = unity_check(&["examples/specs/toy.unity", "examples/specs/broken.unity"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FILE already given"), "{stderr}");
}

#[test]
fn engine_flag_selects_identical_verdicts() {
    // Every engine must agree check-for-check on the shipped specs —
    // passing and failing alike (the acceptance bar for the symbolic
    // backend).
    for spec in [
        "examples/specs/toy.unity",
        "examples/specs/broken.unity",
        "examples/specs/priority_ring3.unity",
        "examples/specs/stabilize_ring3.unity",
    ] {
        let baseline = unity_check(&[spec, "--engine", "explicit"]);
        let base_out = String::from_utf8_lossy(&baseline.stdout).to_string();
        for engine in ["symbolic", "reference"] {
            let out = unity_check(&[spec, "--engine", engine]);
            assert_eq!(
                out.status.code(),
                baseline.status.code(),
                "{spec} under {engine}"
            );
            let text = String::from_utf8_lossy(&out.stdout);
            // PASS/FAIL lines must match verdict-for-verdict.
            let verdicts = |s: &str| -> Vec<String> {
                s.lines()
                    .filter(|l| l.starts_with("PASS") || l.starts_with("FAIL"))
                    .map(|l| l.split(':').next().unwrap().to_string())
                    .collect()
            };
            assert_eq!(
                verdicts(&text),
                verdicts(&base_out),
                "{spec} under {engine}: {text}"
            );
        }
    }
    let out = unity_check(&["examples/specs/toy.unity", "--engine", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
