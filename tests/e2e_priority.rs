//! End-to-end tests for the §4 priority mechanism across topologies:
//! safety (17), liveness (18), acyclicity (25), Properties 1/2, the
//! mechanized proofs, and the baselines' failure modes.

use std::sync::Arc;

use unity_composition::prio_graph::prelude::*;
use unity_composition::unity_core::proof::check::{check_concludes, CheckCtx};
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::baselines::{
    broken_yield_system, centralized_arbiter, static_priority_system,
};
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::priority_proofs::{
    check_steps_are_derivations, liveness_proof, safety_proof,
};

fn systems_under_test() -> Vec<(String, PrioritySystem)> {
    let mut out = Vec::new();
    for t in Topology::ALL {
        for n in [3usize, 4] {
            let g = Arc::new(t.build(n));
            let name = format!("{}({n})", t.name());
            out.push((name, PrioritySystem::new(g).unwrap()));
        }
    }
    out
}

#[test]
fn safety_and_acyclicity_on_all_topologies() {
    let cfg = ScanConfig::default();
    for (name, sys) in systems_under_test() {
        check_property(
            &sys.system.composed,
            &sys.safety_invariant(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("safety {name}: {e}"));
        check_property(
            &sys.system.composed,
            &sys.acyclicity_stable(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("acyclicity {name}: {e}"));
    }
}

#[test]
fn liveness_on_all_topologies() {
    let cfg = ScanConfig::default();
    for (name, sys) in systems_under_test() {
        for i in 0..sys.len() {
            check_property(
                &sys.system.composed,
                &sys.liveness(i),
                Universe::Reachable,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("liveness {name} node {i}: {e}"));
        }
    }
}

#[test]
fn all_steps_are_derivations_on_all_topologies() {
    for (name, sys) in systems_under_test() {
        check_steps_are_derivations(&sys).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn component_specs_hold_on_star_and_complete() {
    let cfg = ScanConfig::default();
    for g in [
        Arc::new(prio_graph::topology::star(4)),
        Arc::new(prio_graph::topology::complete(4)),
    ] {
        let sys = PrioritySystem::new(g).unwrap();
        for i in 0..sys.len() {
            let comp = &sys.system.components[i];
            for p in sys.spec_13(i) {
                check_property(comp, &p, Universe::Reachable, &cfg).unwrap();
            }
            check_property(comp, &sys.spec_14(i), Universe::Reachable, &cfg).unwrap();
            check_property(comp, &sys.spec_15(i), Universe::Reachable, &cfg).unwrap();
            for p in sys.spec_16(i) {
                check_property(comp, &p, Universe::Reachable, &cfg).unwrap();
            }
        }
    }
}

#[test]
fn mechanized_safety_proof_on_every_topology() {
    for (name, sys) in systems_under_test() {
        let (p, j) = safety_proof(&sys);
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
        check_concludes(&p, &j, &mut ctx).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn mechanized_liveness_proof_on_path_and_star() {
    for g in [
        Arc::new(prio_graph::topology::path(3)),
        Arc::new(prio_graph::topology::star(3)),
    ] {
        let sys = PrioritySystem::new(g).unwrap();
        for i in 0..sys.len() {
            let (p, j) = liveness_proof(&sys, i);
            let mut mc = McDischarger::new(&sys.system);
            let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
            check_concludes(&p, &j, &mut ctx)
                .unwrap_or_else(|e| panic!("liveness proof node {i}: {e}"));
        }
    }
}

#[test]
fn static_baseline_starves_everywhere_but_sources() {
    let cfg = ScanConfig::default();
    let sys = static_priority_system(Arc::new(prio_graph::topology::path(4))).unwrap();
    // Index-order orientation: node 0 is the unique source on a path.
    check_property(
        &sys.system.composed,
        &sys.liveness(0),
        Universe::Reachable,
        &cfg,
    )
    .unwrap();
    for i in 1..4 {
        assert!(
            check_property(
                &sys.system.composed,
                &sys.liveness(i),
                Universe::Reachable,
                &cfg
            )
            .is_err(),
            "node {i} must starve without yields"
        );
    }
}

#[test]
fn broken_yield_violates_spec15_and_acyclicity() {
    let cfg = ScanConfig::default();
    let sys = broken_yield_system(Arc::new(prio_graph::topology::ring(3))).unwrap();
    // Spec (15) fails for at least one component.
    let mut spec15_failures = 0;
    for i in 0..3 {
        if check_property(
            &sys.system.components[i],
            &sys.spec_15(i),
            Universe::Reachable,
            &cfg,
        )
        .is_err()
        {
            spec15_failures += 1;
        }
    }
    assert!(
        spec15_failures > 0,
        "half-yield must violate (15) somewhere"
    );
    // And Properties 1/2 fail: some step is not a derivation.
    assert!(check_steps_are_derivations(&sys).is_err());
}

#[test]
fn arbiter_baseline_is_fair_and_safe() {
    let arb = centralized_arbiter(5).unwrap();
    let cfg = ScanConfig::default();
    use unity_composition::unity_core::expr::build::tt;
    use unity_composition::unity_core::properties::Property;
    for i in 0..5 {
        check_property(
            &arb.system.composed,
            &Property::LeadsTo(tt(), arb.priority_expr(i)),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
    }
}

#[test]
fn orientation_roundtrip_through_states() {
    let g = Arc::new(prio_graph::topology::complete(4));
    let sys = PrioritySystem::new(g.clone()).unwrap();
    for o in Orientation::enumerate(&g) {
        let s = sys.state_of(&o);
        assert_eq!(sys.orientation_of(&s), o);
    }
}
