//! Kernel soundness cross-checks: everything the proof kernel derives must
//! be independently verifiable by the exact model checker, and broken
//! premises must make the whole derivation fail (no rule "launders" a
//! false base fact into a theorem).

use std::sync::Arc;

use unity_composition::unity_core::expr::build::*;
use unity_composition::unity_core::proof::check::{check, check_concludes, CheckCtx};
use unity_composition::unity_core::proof::rules::Proof;
use unity_composition::unity_core::proof::{Judgment, Scope};
use unity_composition::unity_core::properties::Property;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::priority_proofs::{
    acyclicity_invariant_proof, escape_judgment, escape_proof, liveness_proof, safety_proof,
};
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};
use unity_composition::unity_systems::toy_proof::toy_invariant_proof;

fn ring_sys(n: usize) -> PrioritySystem {
    PrioritySystem::new(Arc::new(prio_graph::topology::ring(n))).unwrap()
}

#[test]
fn every_kernel_theorem_is_mc_true() {
    // Collect kernel-derived judgments from both case studies and replay
    // them through the model checker.
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    let sys = ring_sys(3);
    let mut theorems: Vec<(
        String,
        unity_composition::unity_core::compose::System,
        Judgment,
    )> = Vec::new();

    let (p, j) = toy_invariant_proof(&toy);
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    check_concludes(&p, &j, &mut ctx).unwrap();
    theorems.push(("toy".into(), toy.system.clone(), j));

    for (name, (p, j)) in [
        ("safety", safety_proof(&sys)),
        ("acyclicity", acyclicity_invariant_proof(&sys)),
        ("liveness0", liveness_proof(&sys, 0)),
        ("liveness2", liveness_proof(&sys, 2)),
    ] {
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(3);
        check_concludes(&p, &j, &mut ctx).unwrap_or_else(|e| panic!("{name}: {e}"));
        theorems.push((name.into(), sys.system.clone(), j));
    }
    for (j_idx, i) in [(0usize, 1usize), (2, 0)] {
        let p = escape_proof(&sys, j_idx, i);
        let j = escape_judgment(&sys, j_idx, i);
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(3);
        check_concludes(&p, &j, &mut ctx).unwrap();
        theorems.push((format!("escape({j_idx},{i})"), sys.system.clone(), j));
    }

    let cfg = ScanConfig::default();
    for (name, system, judgment) in theorems {
        assert_eq!(judgment.scope, Scope::System);
        check_property(&system.composed, &judgment.prop, Universe::Reachable, &cfg)
            .unwrap_or_else(|e| panic!("MC rejects kernel theorem `{name}`: {e}"));
    }
}

#[test]
fn false_premises_cannot_be_laundered() {
    // Take the real toy proof and corrupt one premise; the kernel must
    // reject the derivation (because the discharger refutes the leaf).
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    // A false component fact: component 0 claims C itself never changes.
    let bad_leaf = Proof::premise(Judgment::component(0, Property::Unchanged(var(toy.shared))));
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    assert!(check(&bad_leaf, &mut ctx).is_err());

    // A structurally-valid lift of a false fact also fails.
    let bad_lift = Proof::LiftUniversal {
        prop: Property::Unchanged(var(toy.shared)),
        per_component: (0..2)
            .map(|i| Proof::premise(Judgment::component(i, Property::Unchanged(var(toy.shared)))))
            .collect(),
    };
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    assert!(check(&bad_lift, &mut ctx).is_err());
}

#[test]
fn lifting_rules_enforce_classification() {
    // Trying to lift a universal property existentially (or vice versa)
    // is a shape error even with a cooperative discharger.
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    let stable_prop = Property::Stable(tt());
    let bad_existential = Proof::LiftExistential {
        component: 0,
        sub: Box::new(Proof::premise(Judgment::component(0, stable_prop))),
    };
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    let err = check(&bad_existential, &mut ctx).unwrap_err();
    assert!(err.to_string().contains("not an existential"));

    let init_prop = Property::Init(tt());
    let bad_universal = Proof::LiftUniversal {
        prop: init_prop.clone(),
        per_component: (0..2)
            .map(|i| Proof::premise(Judgment::component(i, init_prop.clone())))
            .collect(),
    };
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    let err = check(&bad_universal, &mut ctx).unwrap_err();
    assert!(err.to_string().contains("not a universal"));
}

#[test]
fn universal_lift_requires_every_component() {
    let toy = toy_system(ToySpec::new(3, 1)).unwrap();
    let prop = toy.spec_unchanged(0); // unchanged (C - c0): true of c0 only
    let partial = Proof::LiftUniversal {
        prop: prop.clone(),
        per_component: vec![Proof::premise(Judgment::component(0, prop))],
    };
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    assert!(
        check(&partial, &mut ctx).is_err(),
        "1 of 3 proofs is not enough"
    );
}

#[test]
fn psp_side_shapes_are_enforced() {
    // PSP with a leadsto in the `next` slot is rejected.
    let bad = Proof::LtPsp {
        lt: Box::new(Proof::premise(Judgment::system(Property::LeadsTo(
            tt(),
            tt(),
        )))),
        next: Box::new(Proof::premise(Judgment::system(Property::LeadsTo(
            tt(),
            tt(),
        )))),
    };
    let toy = toy_system(ToySpec::new(1, 1)).unwrap();
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(1);
    let err = check(&bad, &mut ctx).unwrap_err();
    assert!(err.to_string().contains("next"));
}
