//! End-to-end tests for the §3 toy example across parameter sweeps:
//! component specs, compositional proof, monolithic check, fault
//! injection, and the footnote-1 variant.

use unity_composition::unity_core::proof::check::{check_concludes, CheckCtx};
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::toy_counter::{
    toy_system, toy_system_asymmetric, toy_system_broken, ToySpec,
};
use unity_composition::unity_systems::toy_proof::{
    toy_invariant_proof, toy_invariant_proof_asymmetric,
};

#[test]
fn sweep_proof_and_mc_agree() {
    for n in 1..=4usize {
        for k in 1..=2i64 {
            let toy = toy_system(ToySpec::new(n, k)).unwrap();
            // Compositional proof.
            let (proof, conclusion) = toy_invariant_proof(&toy);
            let mut mc = McDischarger::new(&toy.system);
            let mut ctx = CheckCtx::new(&mut mc)
                .with_components(n)
                .with_vocab(toy.system.vocab());
            check_concludes(&proof, &conclusion, &mut ctx)
                .unwrap_or_else(|e| panic!("proof n={n} k={k}: {e}"));
            // Monolithic model check of the same conclusion.
            check_property(
                &toy.system.composed,
                &conclusion.prop,
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .unwrap_or_else(|e| panic!("mc n={n} k={k}: {e}"));
        }
    }
}

#[test]
fn every_component_satisfies_its_local_spec() {
    let toy = toy_system(ToySpec::new(3, 2)).unwrap();
    let cfg = ScanConfig::default();
    for i in 0..3 {
        let comp = &toy.system.components[i];
        check_property(comp, &toy.spec_init(i), Universe::Reachable, &cfg).unwrap();
        check_property(comp, &toy.spec_unchanged(i), Universe::Reachable, &cfg).unwrap();
        for loc in toy.spec_locality(i) {
            check_property(comp, &loc, Universe::Reachable, &cfg).unwrap();
        }
        // Crucially, component i does NOT satisfy the *other* components'
        // (2) — the paper's point that the naive spec is unshareable.
        for j in 0..3 {
            if j != i {
                assert!(
                    check_property(comp, &toy.spec_unchanged(j), Universe::Reachable, &cfg)
                        .is_err(),
                    "component {i} must violate component {j}'s stable C - c_{j}"
                );
            }
        }
    }
}

#[test]
fn fault_injection_breaks_exactly_the_faulty_component() {
    for faulty in 0..3usize {
        let toy = toy_system_broken(ToySpec::new(3, 1), faulty).unwrap();
        let cfg = ScanConfig::default();
        for i in 0..3 {
            let ok = check_property(
                &toy.system.components[i],
                &toy.spec_unchanged(i),
                Universe::Reachable,
                &cfg,
            )
            .is_ok();
            assert_eq!(ok, i != faulty, "component {i}, faulty {faulty}");
        }
        // System invariant refuted with a concrete counterexample.
        let err = check_property(
            &toy.system.composed,
            &toy.system_invariant(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, McError::Refuted { .. }));
    }
}

#[test]
fn asymmetric_footnote_variant() {
    let toy = toy_system_asymmetric(ToySpec::new(2, 2)).unwrap();
    let (proof, conclusion) = toy_invariant_proof_asymmetric(&toy);
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    // The dissymmetry: component 0's init premise differs from the others,
    // and the *symmetric* proof does not discharge on this system.
    let (sym_proof, sym_conclusion) = toy_invariant_proof(&toy);
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(2);
    assert!(check_concludes(&sym_proof, &sym_conclusion, &mut ctx).is_err());
}

#[test]
fn unreachable_invariant_still_inductive() {
    // The paper's inductive reading: the invariant must be preserved from
    // *all* states, not just reachable ones. C - Σc is unchanged even from
    // wild states, so the inductive check passes; a reachably-true but
    // non-inductive predicate fails it.
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    let cfg = ScanConfig::default();
    check_property(
        &toy.system.composed,
        &toy.system_invariant(),
        Universe::Reachable,
        &cfg,
    )
    .unwrap();
    // "C <= 1" holds reachably for n=2,k=1? No — C reaches 2. Use C != 1 ∨
    // c0+c1 == 1: reachably true (C=Σ), not inductive.
    use unity_composition::unity_core::expr::build::*;
    use unity_composition::unity_core::properties::Property;
    let c = toy.shared;
    let tricky = or2(ne(var(c), int(1)), eq(toy.sum_expr(), int(1)));
    check_invariant_reachable(&toy.system.composed, &tricky, &cfg).unwrap();
    assert!(check_property(
        &toy.system.composed,
        &Property::Invariant(tricky),
        Universe::Reachable,
        &cfg
    )
    .is_err());
}
