//! End-to-end tests of `unity-check --serve`: the CLI as a thin client
//! against an in-process `unity-serve` instance.

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use unity_serve::{Service, ServiceConfig};

fn unity_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_unity-check"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// Starts a server on an ephemeral port over a fresh data dir.
fn start_server(name: &str) -> (unity_serve::Server, String) {
    let dir = std::env::temp_dir().join(format!("unity_cli_serve_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(
        Service::open(ServiceConfig {
            data_dir: dir,
            workers: 2,
            default_timeout: Some(Duration::from_secs(60)),
            queue_limit: 8,
        })
        .unwrap(),
    );
    let server = unity_serve::start(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn serve_mode_verifies_remotely_and_reports_cache_hits() {
    let (server, addr) = start_server("roundtrip");

    let out = unity_check(&["examples/specs/toy.unity", "--serve", &addr]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains(&format!("verified by {addr}")), "{stdout}");
    assert!(stdout.contains("PASS conservation"), "{stdout}");
    assert!(stdout.contains("CACHE"), "{stdout}");
    assert!(stdout.contains("ts[reachable]=Miss"), "cold run: {stdout}");

    // Same spec again: the daemon answers from its artifact store.
    let out = unity_check(&["examples/specs/toy.unity", "--serve", &addr]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("ts[reachable]=Hit"), "warm run: {stdout}");
    assert!(stdout.contains("(verdict #2)"), "{stdout}");

    server.shutdown();
}

#[test]
fn serve_mode_failing_spec_exits_one() {
    let (server, addr) = start_server("failing");
    let out = unity_check(&["examples/specs/broken.unity", "--serve", &addr]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL conservation"), "{stdout}");
    server.shutdown();
}

#[test]
fn serve_mode_json_report_round_trips() {
    use unity_composition::unity_mc::prelude::Report;
    let (server, addr) = start_server("json");
    let dir = std::env::temp_dir().join(format!("unity_cli_serve_json_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("remote_report.json");
    let out = unity_check(&[
        "examples/specs/toy.unity",
        "--serve",
        &addr,
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // The remote report uses the same stable schema local runs write.
    let report = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(report.all_passed());
    assert_eq!(report.vars, vec!["c0", "C", "c1"]);
    let names: Vec<&str> = report.checks.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["conservation", "weakened0", "saturation"]);
    std::fs::remove_file(&path).ok();
    server.shutdown();
}

#[test]
fn local_analysis_flags_are_rejected_with_serve() {
    // No server needed: the conflict is a usage error before any I/O.
    for flags in [
        &["--serve", "127.0.0.1:1", "--stats"][..],
        &["--serve", "127.0.0.1:1", "--sim", "10"][..],
        &["--serve", "127.0.0.1:1", "--threads", "2"][..],
        &["--serve", "127.0.0.1:1", "--list"][..],
    ] {
        let mut args = vec!["examples/specs/toy.unity"];
        args.extend_from_slice(flags);
        let out = unity_check(&args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{flags:?}: {stderr}");
        assert!(stderr.contains("does not apply with --serve"), "{stderr}");
    }
}

#[test]
fn unreachable_server_is_an_infrastructure_error() {
    // Port 1 on localhost: connection refused, exit 2 (not a verdict).
    let out = unity_check(&["examples/specs/toy.unity", "--serve", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn build_threads_env_is_validated_like_dash_dash_threads() {
    for bad in ["0", "abc", "-1"] {
        let out = Command::new(env!("CARGO_BIN_EXE_unity-check"))
            .args(["examples/specs/toy.unity"])
            .env("UNITY_BUILD_THREADS", bad)
            .output()
            .expect("binary runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "`{bad}`: {stderr}");
        assert!(stderr.contains("UNITY_BUILD_THREADS"), "{stderr}");
    }
}
