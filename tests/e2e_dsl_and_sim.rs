//! End-to-end tests for the DSL pipeline and the simulator, cross-checked
//! against the model checker.

use std::sync::Arc;

use unity_composition::unity_core::compose::{InitSatCheck, System};
use unity_composition::unity_core::dsl::{parse_program, parse_programs, parse_property};
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_sim::prelude::*;
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};

#[test]
fn built_systems_round_trip_through_the_dsl() {
    // Every programmatically-built component pretty-prints to a listing
    // the parser accepts, and the re-parsed program is equivalent.
    let toy = toy_system(ToySpec::new(2, 2)).unwrap();
    for comp in &toy.system.components {
        let listing = comp.listing();
        let reparsed = parse_program(&listing).unwrap_or_else(|e| panic!("{listing}\n{e}"));
        assert_eq!(reparsed.name, comp.name);
        assert_eq!(reparsed.commands.len(), comp.commands.len());
        assert_eq!(reparsed.fair.len(), comp.fair.len());
    }
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(3))).unwrap();
    for comp in &sys.system.components {
        let listing = comp.listing();
        parse_program(&listing).unwrap_or_else(|e| panic!("{listing}\n{e}"));
    }
}

#[test]
fn dsl_composition_equals_api_composition() {
    let src = r#"
        program A
          var a : int 0..2 local
          var C : int 0..4
          init a == 0 && C == 0
          fair cmd ia: a < 2 -> a := a + 1, C := C + 1
        end
        program B
          var b : int 0..2 local
          var C : int 0..4
          init b == 0 && C == 0
          fair cmd ib: b < 2 -> b := b + 1, C := C + 1
        end
    "#;
    let programs = parse_programs(src).unwrap();
    let sys = System::compose_merging(&programs, InitSatCheck::Exhaustive).unwrap();
    let vocab = Arc::clone(sys.vocab());
    let inv = parse_property("invariant C == sum(a, b)", &vocab).unwrap();
    check_property(
        &sys.composed,
        &inv,
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .unwrap();
    let live = parse_property("true leadsto C == 4", &vocab).unwrap();
    check_property(
        &sys.composed,
        &live,
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .unwrap();
}

#[test]
fn dsl_rejects_locality_violations_on_composition() {
    let src = r#"
        program Owner
          var secret : bool local
          init !secret
        end
        program Intruder
          var secret : bool
          cmd poke: true -> secret := true
        end
    "#;
    let programs = parse_programs(src).unwrap();
    let err = System::compose_merging(&programs, InitSatCheck::Skip).unwrap_err();
    assert!(err.to_string().contains("locality"));
}

#[test]
fn simulation_respects_model_checked_invariants() {
    // Run the toy system for many steps under every scheduler; the
    // model-checked invariant must hold at every step.
    let toy = toy_system(ToySpec::new(3, 2)).unwrap();
    let inv_pred = match toy.system_invariant() {
        unity_composition::unity_core::properties::Property::Invariant(p) => p,
        _ => unreachable!(),
    };
    let program = &toy.system.composed;
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RoundRobin::default()),
        Box::new(AgedLottery::new(3, 16)),
        Box::new(AdversarialDelay::new(5, 0, 16)),
    ];
    for mut sched in schedulers {
        let mut inv = InvariantMonitor::new(inv_pred.clone());
        let mut exec = Executor::from_first_initial(program);
        {
            let mut monitors: Vec<&mut dyn Monitor> = vec![&mut inv];
            exec.run(5_000, sched.as_mut(), &mut monitors);
        }
        assert!(inv.clean(), "invariant violated under {}", sched.name());
    }
}

#[test]
fn fairness_audit_matches_scheduler_bounds() {
    let toy = toy_system(ToySpec::new(2, 2)).unwrap();
    let program = &toy.system.composed;
    let fair: Vec<usize> = program.fair.iter().copied().collect();
    let steps = 2_000u64;

    let mut sched = AgedLottery::new(11, 10);
    let mut exec = Executor::from_first_initial(program);
    exec.set_log_limit(steps as usize);
    exec.run(steps, &mut sched, &mut []);
    // Aging bound 10 with 2 fair commands ⇒ max gap ≤ 10 + 2 − 1.
    assert!(is_weakly_fair_within(exec.log(), &fair, steps, 11));

    let mut sched = AdversarialDelay::new(13, 0, 25);
    let mut exec = Executor::from_first_initial(program);
    exec.set_log_limit(steps as usize);
    exec.run(steps, &mut sched, &mut []);
    let audits = audit(exec.log(), &fair, steps);
    let guarantee = 25 + fair.len() as u64 - 1;
    assert!(audits.iter().all(|a| a.max_gap <= guarantee));
    // The victim is starved right up to (but never beyond) the bound.
    let victim = &audits[0];
    assert!(victim.max_gap >= 20, "adversary should push near the bound");
}

#[test]
fn simulated_priority_recurrence_confirms_liveness() {
    // On a ring where MC proves true ↦ Priority(i), simulation under a
    // fair scheduler must observe Priority(i) recurring for every node.
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(6))).unwrap();
    let mut monitor = RecurrenceMonitor::new((0..6).map(|i| sys.priority_expr(i)).collect());
    let mut sched = AgedLottery::new(17, 24);
    let mut exec = Executor::from_first_initial(&sys.system.composed);
    {
        let mut monitors: Vec<&mut dyn Monitor> = vec![&mut monitor];
        exec.run(20_000, &mut sched, &mut monitors);
    }
    for i in 0..6 {
        assert!(
            monitor.gaps[i].len() > 10,
            "node {i} must receive priority repeatedly"
        );
    }
}

#[test]
fn replicas_are_deterministic_and_parallel_consistent() {
    let toy = toy_system(ToySpec::new(2, 2)).unwrap();
    let run =
        |program: &unity_composition::unity_core::program::Program, _r: usize, seed: u64| -> u64 {
            let mut sched = AgedLottery::new(seed, 8);
            let mut exec = Executor::from_first_initial(program);
            exec.run(500, &mut sched, &mut []);
            // Hash of final state values for comparison.
            exec.state()
                .values()
                .iter()
                .map(|v| match v {
                    unity_composition::unity_core::value::Value::Int(n) => *n as u64,
                    unity_composition::unity_core::value::Value::Bool(b) => u64::from(*b),
                })
                .fold(0u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
    let seq = run_replicas(&toy.system.composed, 8, 77, 1, run);
    let par = run_replicas(&toy.system.composed, 8, 77, 4, run);
    assert_eq!(seq, par);
}
