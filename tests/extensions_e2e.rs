//! End-to-end tests for the post-reproduction extensions, exercised on
//! the paper's own systems:
//!
//! * **proof synthesis** (`unity-mc::synth`) derives the §3 saturation
//!   liveness and the §4 liveness (18) automatically, and the derivations
//!   re-check in the kernel with every premise model-checked;
//! * **conserved-quantity discovery** (`unity-core::conserve`) finds the
//!   §3.3 law `C = Σ cᵢ` by linear algebra and the result survives the
//!   model checker;
//! * **rely-guarantee** (`unity-core::rg`) re-derives the toy invariant
//!   through the parallel composition rule on the *systems* builder;
//! * **mutation audit** (`unity-mc::mutate`) measures the §3 specs' kill
//!   power and flags no gap on the composed toy;
//! * **distributed refinement** (`unity-dist`) runs against the same
//!   conflict graphs the model checker verifies, and its abstract traces
//!   satisfy the checked safety property (17).

use std::sync::Arc;

use unity_composition::prelude::*;
use unity_core::conserve::{conserved_linear_combinations, invariant_from_combo};
use unity_core::rg::{self, ActionPred, ActionVocab, RelyGuarantee};
use unity_dist::prelude::*;
use unity_mc::prelude::*;
use unity_mc::synth::{synthesize_and_check, SynthConfig};
use unity_systems::priority::PrioritySystem;
use unity_systems::toy_counter::{toy_system, ToySpec};

#[test]
fn synthesis_derives_toy_saturation_liveness() {
    let toy = toy_system(ToySpec::new(2, 2)).unwrap();
    let program = &toy.system.composed;
    let target = eq(var(toy.shared), int(4)); // C reaches n·k = 4
    let (synth, stats) = synthesize_and_check(
        program,
        &tt(),
        &target,
        &SynthConfig::default(),
        &ScanConfig::default(),
    )
    .unwrap();
    assert!(!synth.layers.is_empty());
    assert!(stats.premises > 0 && stats.side_conditions > 0);
    // The chain must use both components' fair commands: neither can
    // saturate C alone.
    let used: std::collections::BTreeSet<usize> =
        synth.layers.iter().map(|l| l.fair_command).collect();
    assert_eq!(used.len(), 2, "both components appear in the chain");
    // Cross-check against the exact fair checker.
    check_leadsto(
        program,
        &tt(),
        &target,
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .unwrap();
}

#[test]
fn synthesis_derives_priority_liveness_18() {
    let graph = Arc::new(prio_graph::topology::ring(3));
    let ps = PrioritySystem::new(graph).unwrap();
    let program = &ps.system.composed;
    for i in 0..3 {
        let goal = ps.priority_expr(i);
        let (synth, _) = synthesize_and_check(
            program,
            &tt(),
            &goal,
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap_or_else(|e| panic!("node {i}: {e}"));
        assert!(
            !synth.layers.is_empty(),
            "node {i}: rotation needs at least one yield"
        );
    }
}

#[test]
fn synthesis_fails_on_the_static_baseline() {
    // Without spec (14) (yield), liveness (18) is false for non-top
    // nodes; the synthesizer must refuse rather than fabricate a proof.
    let graph = Arc::new(prio_graph::topology::ring(3));
    let baseline = unity_systems::baselines::static_priority_system(graph).unwrap();
    let program = &baseline.system.composed;
    // Node 2 never gains priority under the index-order orientation.
    let goal = baseline.priority_expr(2);
    let err = unity_mc::synth::synthesize_leadsto(
        program,
        &tt(),
        &goal,
        &SynthConfig::default(),
        &ScanConfig::default(),
    );
    assert!(
        matches!(err, Err(unity_mc::synth::SynthError::NotLive { .. })),
        "static baseline must not admit a liveness proof"
    );
}

#[test]
fn conservation_discovery_matches_section_3() {
    let toy = toy_system(ToySpec::new(3, 2)).unwrap();
    let program = &toy.system.composed;
    let basis = conserved_linear_combinations(program);
    assert!(basis.tainted.is_empty());
    let nontrivial = basis.nontrivial();
    assert_eq!(nontrivial.len(), 1, "exactly the paper's law");
    let combo = nontrivial[0];
    // Its Unchanged property holds (the shared universal property of
    // §3.3), checked by the model checker.
    check_unchanged(program, &combo.to_expr(), &ScanConfig::default()).unwrap();
    // And the derived invariant is the paper's `C = Σ cᵢ` (as `Σcᵢ − C = 0`).
    let inv = invariant_from_combo(program, combo).unwrap();
    check_invariant(program, &inv, &ScanConfig::default()).unwrap();
}

#[test]
fn rely_guarantee_rederives_the_toy_invariant() {
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    let av = ActionVocab::new(toy.system.composed.vocab.clone()).unwrap();
    // Component i guarantees: ΔC = Δcᵢ and it leaves every other local
    // counter alone.
    let guar = |i: usize| {
        let c = toy.counters[i];
        let delta = eq(
            sub(var(av.prime(toy.shared)), var(toy.shared)),
            sub(var(av.prime(c)), var(c)),
        );
        let others: Vec<Expr> = toy
            .counters
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, &o)| eq(var(av.prime(o)), var(o)))
            .collect();
        ActionPred::new(and2(delta, and(others)), &av).unwrap()
    };
    let rgs: Vec<RelyGuarantee> = (0..2)
        .map(|i| RelyGuarantee {
            rely: guar(1 - i),
            guar: guar(i),
        })
        .collect();
    let pairs: Vec<(&_, &_)> = toy.system.components.iter().zip(rgs.iter()).collect();
    rg::parallel_rule(&pairs, &toy.system.composed, &av).unwrap();
    // The invariant rule derives §3.3's conclusion.
    let p = eq(var(toy.shared), toy.sum_expr());
    rg::invariant_via_rg(&pairs, &toy.system.composed, &av, &p).unwrap();
}

#[test]
fn mutation_audit_on_the_composed_toy() {
    let toy = toy_system(ToySpec::new(2, 1)).unwrap();
    let program = toy.system.composed.clone();
    let conservation = toy.system_invariant();
    let inv_spec = move |p: &unity_core::program::Program| {
        check_property(
            p,
            &conservation,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .is_ok()
    };
    let sat = toy.saturation_liveness();
    let live_spec = move |p: &unity_core::program::Program| {
        check_property(p, &sat, Universe::Reachable, &ScanConfig::default()).is_ok()
    };
    let report = mutation_audit(
        &program,
        &[("conservation", &inv_spec), ("saturation", &live_spec)],
    )
    .unwrap();
    assert!(report.total() > 10, "a real mutant population");
    // Every drop of a C-update must be caught by conservation.
    for o in &report.outcomes {
        if o.description.contains("drop update of C") {
            assert_eq!(
                o.killed_by.as_deref(),
                Some("conservation"),
                "{}",
                o.description
            );
        }
        if o.description.contains("drop fairness") {
            assert_eq!(
                o.killed_by.as_deref(),
                Some("saturation"),
                "{}",
                o.description
            );
        }
    }
    // The two paper specs see most behaviour changes; any survivor must
    // be an honest spec gap, not an equivalent mutant misclassified.
    for s in report.survivors() {
        assert!(!s.equivalent);
    }
    assert!(report.kill_ratio() > 0.5, "{}", report.summary());
}

#[test]
fn distributed_runs_satisfy_the_checked_safety_17() {
    // The model checker proves (17) on the abstract system; the
    // distributed run's abstract trace must never violate it.
    let graph = Arc::new(prio_graph::topology::ring(4));
    let ps = PrioritySystem::new(graph.clone()).unwrap();
    check_property(
        &ps.system.composed,
        &ps.safety_invariant(),
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .unwrap();

    let o = prio_graph::orientation::Orientation::index_order(graph.clone());
    let mut run = DistRun::new(graph.clone(), &o, Box::new(SeededRandom::new(5)));
    run.run(RunLimits::until_actions(3));
    assert!(run.refinement_violations().is_empty());
    // Check (17) on the current abstraction and on every snapshot.
    let check_17 = |orientation: &prio_graph::orientation::Orientation| {
        let holders = orientation.priority_nodes();
        for (a, &i) in holders.iter().enumerate() {
            for &j in &holders[a + 1..] {
                assert!(
                    !graph.is_edge(i, j),
                    "neighbours {i},{j} both have priority"
                );
            }
        }
    };
    check_17(run.abstraction());
    run.initiate_snapshot(0);
    run.run(RunLimits::steps(run.stats().steps + 2_000));
    for snap in run.snapshots() {
        let o = snap.validate(&graph).unwrap();
        check_17(&o);
    }
}
