//! E9 scaling table: compositional vs. monolithic verification cost for
//! the §3 toy invariant as the number of components grows.
//!
//! ```text
//! cargo run --release -p composition-bench --bin e9_scaling
//! ```
//!
//! Three columns:
//! * `premises(1)` — re-verifying ONE component's local specification
//!   (the repository-reuse scenario: all components are isomorphic, so a
//!   library of verified parts pays this once);
//! * `proof(all)` — checking the full compositional derivation (all
//!   components' premises + lifting + side conditions);
//! * `monolithic` — inductive model check of the composed program over the
//!   full product space.

use std::time::Instant;

use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_mc::prelude::*;
use unity_mc::transition::Universe;
use unity_systems::toy_counter::{toy_system, ToySpec};
use unity_systems::toy_proof::toy_invariant_proof;

fn time<T>(iters: u32, mut f: impl FnMut() -> T) -> std::time::Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed() / iters
}

fn main() {
    let k = 2i64;
    println!("E9: toy invariant C = Σ cᵢ, K = {k} (times per verification)");
    println!(
        "{:>3} {:>12} {:>14} {:>14} {:>14}",
        "n", "states", "premises(1)", "proof(all)", "monolithic"
    );
    for n in [2usize, 3, 4, 5, 6, 7, 8] {
        let toy = toy_system(ToySpec::new(n, k)).unwrap();
        let cfg = ScanConfig::default();
        let states = toy.system.vocab().space_size().unwrap();
        let iters: u32 = if n <= 5 { 200 } else { 20 };

        let one = time(iters, || {
            let comp = &toy.system.components[0];
            check_property(comp, &toy.spec_init(0), Universe::Reachable, &cfg).unwrap();
            check_property(comp, &toy.spec_unchanged(0), Universe::Reachable, &cfg).unwrap();
            for loc in toy.spec_locality(0) {
                check_property(comp, &loc, Universe::Reachable, &cfg).unwrap();
            }
        });
        let proof = time(iters, || {
            let (proof, conclusion) = toy_invariant_proof(&toy);
            let mut mc = McDischarger::new(&toy.system);
            let mut ctx = CheckCtx::new(&mut mc).with_components(n);
            check_concludes(&proof, &conclusion, &mut ctx).unwrap();
        });
        let mono = time(iters, || {
            check_property(
                &toy.system.composed,
                &toy.system_invariant(),
                Universe::Reachable,
                &cfg,
            )
            .unwrap();
        });
        println!("{n:>3} {states:>12} {one:>14.2?} {proof:>14.2?} {mono:>14.2?}");
    }
}
