//! Quick engine comparison: times one full-domain validity scan of the
//! toy-counter conservation invariant under any of the three evaluation
//! engines on the same spec.
//!
//! ```text
//! cargo run --release -p composition-bench --bin scan_probe \
//!     [-- --engine reference|compiled|symbolic]
//! ```
//!
//! Without `--engine`, all three engines are probed and the speedups
//! over the reference evaluator are reported.

use std::time::{Duration, Instant};

use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn parse_engines(args: &[String]) -> Result<Vec<(&'static str, Engine)>, String> {
    let all = vec![
        ("reference", Engine::Reference),
        ("compiled", Engine::Compiled),
        ("symbolic", Engine::Symbolic),
    ];
    match args {
        [] => Ok(all),
        [flag, value] if flag == "--engine" => match value.as_str() {
            "reference" => Ok(vec![all[0]]),
            "compiled" | "explicit" => Ok(vec![all[1]]),
            "symbolic" => Ok(vec![all[2]]),
            other => Err(format!(
                "bad --engine `{other}` (want reference|compiled|symbolic)"
            )),
        },
        _ => Err("usage: scan_probe [--engine reference|compiled|symbolic]".to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engines = match parse_engines(&args) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!("full-domain validity scan of the toy conservation invariant");
    for n in [6usize, 8, 10] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let vocab = toy.system.vocab();
        let Property::Invariant(inv) = toy.system_invariant() else {
            unreachable!("system invariant is an invariant");
        };
        let query = unity_core::expr::build::implies(inv.clone(), inv.clone());
        let mut times: Vec<(&str, Duration)> = Vec::new();
        for &(name, engine) in &engines {
            let cfg = ScanConfig {
                engine,
                ..ScanConfig::without_projection()
            };
            let iters = if n <= 8 || engine != Engine::Reference {
                20
            } else {
                5
            };
            let t0 = Instant::now();
            for _ in 0..iters {
                check_valid(vocab, &query, &cfg).unwrap();
            }
            let el = t0.elapsed() / iters;
            println!(
                "  n={n:<2} {name:<10} {el:>12.2?}  ({} states)",
                vocab.space_size().unwrap()
            );
            times.push((name, el));
        }
        if let Some(&(_, base)) = times.iter().find(|&&(name, _)| name == "reference") {
            for &(name, el) in &times {
                if name != "reference" {
                    println!(
                        "  n={n:<2} {:<10} {:>11.1}x vs reference",
                        format!("{name}↑"),
                        base.as_secs_f64() / el.as_secs_f64()
                    );
                }
            }
        }
    }
}
