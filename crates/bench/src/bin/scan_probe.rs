//! Quick engine comparison: times one full-domain validity scan of the
//! toy-counter conservation invariant under the compiled and reference
//! evaluation engines.
//!
//! ```text
//! cargo run --release -p composition-bench --bin scan_probe
//! ```

use std::time::Instant;

use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn main() {
    println!("full-domain validity scan: compiled vs reference evaluation");
    for n in [6usize, 8, 10] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let vocab = toy.system.vocab();
        let Property::Invariant(inv) = toy.system_invariant() else {
            unreachable!("system invariant is an invariant");
        };
        let query = unity_core::expr::build::implies(inv.clone(), inv.clone());
        let mut times = Vec::new();
        for (name, cfg) in [
            ("compiled", ScanConfig::without_projection()),
            (
                "reference",
                ScanConfig {
                    engine: unity_mc::space::Engine::Reference,
                    ..ScanConfig::without_projection()
                },
            ),
        ] {
            let iters = if n <= 8 { 20 } else { 5 };
            let t0 = Instant::now();
            for _ in 0..iters {
                check_valid(vocab, &query, &cfg).unwrap();
            }
            let el = t0.elapsed() / iters;
            println!(
                "  n={n:<2} {name:<10} {el:>12.2?}  ({} states)",
                vocab.space_size().unwrap()
            );
            times.push(el);
        }
        println!(
            "  n={n:<2} speedup    {:>11.1}x",
            times[1].as_secs_f64() / times[0].as_secs_f64()
        );
    }
}
