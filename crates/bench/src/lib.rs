//! # composition-bench
//!
//! Criterion benchmark harness for the experiment suite E1–E10 (see
//! `EXPERIMENTS.md` at the workspace root). The library part hosts shared
//! workload builders; the actual benches live in `benches/`.

#![forbid(unsafe_code)]

pub mod harness;
