//! Shared workload builders for the benchmark suite.

/// Standard node counts for topology sweeps (kept small enough that the
/// exhaustive checkers stay fast in CI).
pub const SWEEP_NODES: [usize; 3] = [3, 4, 5];

/// Standard counter bounds for the toy-example sweeps.
pub const SWEEP_BOUNDS: [i64; 2] = [1, 2];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_nonempty() {
        assert!(!SWEEP_NODES.is_empty());
        assert!(!SWEEP_BOUNDS.is_empty());
    }
}
