//! E3 — §4 liveness (18): exact fair `leadsto` checking across topologies,
//! and the mechanized Property-8 induction proof on small instances.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_graph::topology::Topology;
use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_mc::prelude::*;
use unity_systems::priority::PrioritySystem;
use unity_systems::priority_proofs::liveness_proof;

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_liveness_fair_mc");
    group.sample_size(10);
    for t in [
        Topology::Path,
        Topology::Ring,
        Topology::Star,
        Topology::Complete,
    ] {
        for n in [3usize, 4, 5] {
            let sys = PrioritySystem::new(Arc::new(t.build(n))).unwrap();
            group.bench_with_input(BenchmarkId::new(t.name(), n), &sys, |b, sys| {
                b.iter(|| {
                    for i in 0..sys.len() {
                        check_property(
                            &sys.system.composed,
                            &sys.liveness(i),
                            Universe::Reachable,
                            &ScanConfig::default(),
                        )
                        .unwrap();
                    }
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e3_liveness_kernel_proof");
    group.sample_size(10);
    for t in [Topology::Path, Topology::Ring, Topology::Star] {
        let sys = PrioritySystem::new(Arc::new(t.build(3))).unwrap();
        group.bench_with_input(BenchmarkId::new(t.name(), 3), &sys, |b, sys| {
            b.iter(|| {
                let (p, j) = liveness_proof(sys, 1);
                let mut mc = McDischarger::new(&sys.system);
                let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
                check_concludes(&p, &j, &mut ctx).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
