//! E11 — ablation of support projection (DESIGN.md §3.7).
//!
//! A component's local property mentions only its own variables, and the
//! component's commands touch only `{c_i, C}` — but the *shared
//! vocabulary* of an N-component composition has N+1 variables. With
//! projection, the validity scan enumerates only the property's support
//! (constant in N); without it, the full domain product (exponential in
//! N). This is the executable content of the paper's "local
//! specifications" discipline: the bench shows component-local checking
//! cost staying flat as the system grows, and exploding when projection
//! is disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn bench_e11(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_projection");
    for n in [2usize, 4, 6, 8] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let component = &toy.system.components[0];
        let prop = toy.spec_unchanged(0);
        for (label, cfg) in [
            ("with_projection", ScanConfig::default()),
            ("without_projection", ScanConfig::without_projection()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(component, &prop, cfg),
                |b, (component, prop, cfg)| {
                    b.iter(|| {
                        check_property(component, prop, Universe::Reachable, cfg).unwrap();
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
