//! E17 — symbolic scale: reachable-set construction and safety checking
//! past the explicit engine's enumeration wall.
//!
//! E6 stops the explicit (compiled) transition-system build at priority
//! ring n = 12 — cost is Θ(states) and states are 2ⁿ. The symbolic
//! engine's cost tracks BDD *structure* instead: this group builds exact
//! reachable sets for rings at n = 16, 20 and 24 (up to 4096× past the
//! explicit wall) and for toy-counter instances whose full product
//! exceeds the `ScanConfig::max_states` scan budget, then checks the
//! ring safety invariant symbolically at a size where one explicit scan
//! would visit 2²⁰ states per command.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_mc::prelude::*;
use unity_symbolic::SymbolicProgram;
use unity_systems::priority::PrioritySystem;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn bench_e17(c: &mut Criterion) {
    // Reachable-set construction on priority rings far past the e6
    // explicit ceiling (n = 12 ⇒ 4096 states; n = 24 ⇒ 16.7M states).
    let mut group = c.benchmark_group("e17_symbolic_priority_ring");
    group.sample_size(10);
    for n in [12usize, 16, 20, 24] {
        let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(n))).unwrap();
        group.throughput(Throughput::Elements(1u64 << n));
        group.bench_with_input(BenchmarkId::new("reachable_set", n), &sys, |b, sys| {
            b.iter(|| {
                let mut sym = SymbolicProgram::build(&sys.system.composed).unwrap();
                sym.reachable().count
            })
        });
    }
    group.finish();

    // Toy counters: n counters 0..=k plus the shared total — the full
    // product for n = 16, k = 2 is 3¹⁶·33 ≈ 1.4 · 10⁹ states, far past
    // the 2²⁶ explicit scan budget; the reachable diagonal is 3¹⁶.
    let mut group = c.benchmark_group("e17_symbolic_toy");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        group.throughput(Throughput::Elements(3u64.pow(n as u32)));
        group.bench_with_input(BenchmarkId::new("reachable_set", n), &toy, |b, toy| {
            b.iter(|| {
                let mut sym = SymbolicProgram::build(&toy.system.composed).unwrap();
                sym.reachable().count
            })
        });
    }
    group.finish();

    // Inductive safety at scale: the ring-20 mutual-exclusion invariant
    // decided symbolically over all 2²⁰ type-consistent states.
    let mut group = c.benchmark_group("e17_symbolic_safety");
    group.sample_size(10);
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(20))).unwrap();
    let safety = sys.safety_invariant();
    group.throughput(Throughput::Elements(1u64 << 20));
    group.bench_with_input(
        BenchmarkId::new("ring_invariant_symbolic", 20),
        &(&sys, &safety),
        |b, (sys, safety)| {
            b.iter(|| {
                check_property(
                    &sys.system.composed,
                    safety,
                    Universe::AllStates,
                    &ScanConfig::symbolic(),
                )
                .unwrap()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_e17);
criterion_main!(benches);
