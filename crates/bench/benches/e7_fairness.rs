//! E7 — simulated fairness of the priority mechanism vs. the centralized
//! arbiter baseline: time-to-priority distributions over fixed-length fair
//! runs. (The static no-yield baseline starves and is covered by E2/E4
//! refutation benches; here we compare the *working* mechanisms.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_sim::prelude::*;
use unity_systems::baselines::centralized_arbiter;
use unity_systems::priority::PrioritySystem;

const STEPS: u64 = 10_000;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_fairness");
    group.sample_size(10);
    group.throughput(Throughput::Elements(STEPS));
    for n in [6usize, 10, 14] {
        let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(n))).unwrap();
        group.bench_with_input(BenchmarkId::new("priority_ring", n), &sys, |b, sys| {
            b.iter(|| {
                let mut monitor =
                    RecurrenceMonitor::new((0..sys.len()).map(|i| sys.priority_expr(i)).collect());
                let mut sched = AgedLottery::new(42, 4 * sys.len() as u64);
                let mut exec = Executor::from_first_initial(&sys.system.composed);
                {
                    let mut monitors: Vec<&mut dyn Monitor> = vec![&mut monitor];
                    exec.run(STEPS, &mut sched, &mut monitors);
                }
                // Return the fairness index so criterion can't optimize
                // the work away; assert sanity.
                let means: Vec<f64> = (0..sys.len())
                    .map(|i| Summary::of(&monitor.gaps[i]).map_or(f64::INFINITY, |s| s.mean))
                    .collect();
                let jain = jain_index(&means);
                assert!(jain > 0.5, "mechanism should be roughly fair");
                jain
            })
        });
        let arb = centralized_arbiter(n).unwrap();
        group.bench_with_input(BenchmarkId::new("arbiter", n), &arb, |b, arb| {
            b.iter(|| {
                let mut monitor =
                    RecurrenceMonitor::new((0..arb.n).map(|i| arb.priority_expr(i)).collect());
                let mut sched = AgedLottery::new(42, 8);
                let mut exec = Executor::from_first_initial(&arb.system.composed);
                {
                    let mut monitors: Vec<&mut dyn Monitor> = vec![&mut monitor];
                    exec.run(STEPS, &mut sched, &mut monitors);
                }
                let means: Vec<f64> = (0..arb.n)
                    .map(|i| Summary::of(&monitor.gaps[i]).map_or(f64::INFINITY, |s| s.mean))
                    .collect();
                jain_index(&means)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
