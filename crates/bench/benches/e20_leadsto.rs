//! E20 — the explicit `leadsto` hot path: predecessor-CSR worklist
//! (`check_leadsto_on`) vs the pre-PR quiescence formulation
//! (`check_leadsto_on_reference`), on the same prebuilt transition
//! system so only the liveness engine differs.
//!
//! Three workloads:
//!
//! * **ring battery** — token-ring circulation `token@i ↦ token@(i+1)`
//!   for every node, on a ring with free per-node work bits (so the
//!   space is `n · 2^m`, not a single cycle). Half the battery runs on
//!   a fully fair ring (passing: the cost is the `¬q`-localized SCC
//!   pass), half on a ring whose node-0 pass is *not* fair (failing:
//!   the trap's backward reach spans the whole ring — the quiescence
//!   loop rescans the table once per propagated layer, the worklist
//!   walks each predecessor row once).
//! * **dining progress** — `hungry(i) ↦ eating(i)` per philosopher on
//!   the paper's dining ring (session-checked, worklist engine only:
//!   an absolute number for the README).
//! * **synthesis** — `synthesize_leadsto` on a fair token ring: hundreds
//!   of candidate sweeps against one session-cached transition system
//!   and predecessor index.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::Vocabulary;
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_mc::synth::SynthConfig;
use unity_systems::dining::{dining_system, DiningSpec};

/// A token ring of `n` nodes with `m` free work bits: one fair `pass`
/// command circulates the token (`t := t + 1 mod n`), `work_j` toggles
/// bit `j` freely. With `stalled`, node 0 gains an *unfair* `brake`
/// command: once braked, `pass` is guard-blocked, so the braked node-0
/// states form a fair trap whose backward reach spans the whole ring —
/// the access pattern that makes the quiescence loop quadratic.
/// Reachable space: `n · 2^m` states (plus the braked node-0 layer).
fn token_ring(n: i64, m: usize, stalled: bool) -> Program {
    let mut v = Vocabulary::new();
    let t = v
        .declare("t", Domain::int_range(0, n - 1).unwrap())
        .unwrap();
    let brake = stalled.then(|| v.declare("brake", Domain::Bool).unwrap());
    let bits: Vec<_> = (0..m)
        .map(|j| v.declare(&format!("g{j}"), Domain::Bool).unwrap())
        .collect();
    let init = match brake {
        Some(brk) => and2(eq(var(t), int(0)), not(var(brk))),
        None => eq(var(t), int(0)),
    };
    let pass_guard = match brake {
        Some(brk) => not(var(brk)),
        None => tt(),
    };
    let mut b = Program::builder("token_ring", Arc::new(v))
        .init(init)
        .fair_command(
            "pass",
            pass_guard,
            vec![(t, rem(add(var(t), int(1)), int(n)))],
        );
    if let Some(brk) = brake {
        // Not in D: nothing forces the brake, but a fair run *may*
        // brake forever — the trap the checker must find.
        b = b.command("brake", eq(var(t), int(0)), vec![(brk, tt())]);
    }
    for (j, &g) in bits.iter().enumerate() {
        b = b.fair_command(format!("work{j}"), tt(), vec![(g, not(var(g)))]);
    }
    b.build().unwrap()
}

/// The circulation battery: `token@i ↦ token@(i+1)` for every node.
fn circulation(n: i64) -> Vec<(Expr, Expr)> {
    let t = unity_core::ident::VarId(0);
    (0..n)
        .map(|i| (eq(var(t), int(i)), eq(var(t), int((i + 1) % n))))
        .collect()
}

type Battery = Vec<(TransitionSystem, Program, Vec<(Expr, Expr)>)>;

fn ring_battery(n: i64, m: usize) -> Battery {
    let fair = token_ring(n, m, false);
    let stalled = token_ring(n, m, true);
    let checks = circulation(n);
    [fair, stalled]
        .into_iter()
        .map(|p| {
            let ts =
                TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
            (ts, p, checks.clone())
        })
        .collect()
}

/// Runs the whole battery with the worklist engine — one
/// [`LeadsToEngine`] per ring, so the predecessor index and pooled
/// scratch are built once per system, exactly as a `Verifier` session
/// shares them.
fn battery_worklist(battery: &Battery) -> usize {
    battery
        .iter()
        .map(|(ts, p, checks)| {
            let mut engine = LeadsToEngine::new(ts);
            checks
                .iter()
                .filter(|(pp, qq)| engine.check(p, pp, qq).is_ok())
                .count()
        })
        .sum()
}

/// The same battery with the pre-PR quiescence formulation.
fn battery_quiescent(battery: &Battery) -> usize {
    battery
        .iter()
        .map(|(ts, p, checks)| {
            checks
                .iter()
                .filter(|(pp, qq)| check_leadsto_on_reference(ts, p, pp, qq).is_ok())
                .count()
        })
        .sum()
}

fn bench_e20(c: &mut Criterion) {
    // Ring battery: 2n leadsto properties over n·2^m-state rings.
    let mut group = c.benchmark_group("e20_leadsto_ring");
    group.sample_size(10);
    let (n, m) = (384i64, 2usize);
    let battery = ring_battery(n, m);
    let states: usize = battery.iter().map(|(ts, ..)| ts.len()).sum();
    // Fair ring: n·2^m. Stalled ring: n·2^m plus the braked node-0
    // layer.
    assert_eq!(states as i64, 2 * n * (1 << m) + (1 << m));
    let passed = battery_worklist(&battery);
    assert_eq!(
        passed,
        battery_quiescent(&battery),
        "both formulations agree before we time them"
    );
    // Fair ring: all n circulation hops pass. Stalled ring: only the
    // hop out of the stalled node fails (its layer is the trap); every
    // other hop still completes before the token can reach the stall —
    // but deciding that forces the backward propagation across the
    // whole trap-reaching segment, which is exactly the hot path the
    // two formulations price differently.
    assert_eq!(passed as i64, 2 * n - 1);
    let id = format!("ring{n}x{}", 1 << m);
    group.bench_with_input(BenchmarkId::new("worklist", &id), &battery, |b, battery| {
        b.iter(|| battery_worklist(battery))
    });
    group.bench_with_input(
        BenchmarkId::new("quiescent", &id),
        &battery,
        |b, battery| b.iter(|| battery_quiescent(battery)),
    );
    group.finish();

    // Dining progress: hungry(i) ↦ eating(i) per philosopher, one
    // session (shared transition system + predecessor index + scratch).
    let mut group = c.benchmark_group("e20_leadsto_dining");
    group.sample_size(10);
    let dining = dining_system(&DiningSpec {
        graph: Arc::new(prio_graph::topology::ring(5)),
    })
    .unwrap();
    let checks: Vec<Property> = (0..dining.len()).map(|i| dining.progress(i)).collect();
    group.bench_with_input(
        BenchmarkId::new("session_progress", "dining5"),
        &(&dining, &checks),
        |b, (dining, checks)| {
            b.iter(|| {
                let mut session = Verifier::new(&dining.system.composed, ScanConfig::default());
                checks.iter().filter(|p| session.verify(p).passed()).count()
            })
        },
    );
    group.finish();

    // Synthesis: the ensures-chain extraction runs hundreds of
    // candidate sweeps; session-cached ts + pred index serve them all.
    let mut group = c.benchmark_group("e20_leadsto_synth");
    group.sample_size(10);
    let ring = token_ring(8, 2, false);
    let t = unity_core::ident::VarId(0);
    group.bench_with_input(
        BenchmarkId::new("synthesize", "ring8x4"),
        &ring,
        |b, ring| {
            b.iter(|| {
                let mut session = Verifier::new(ring, ScanConfig::default());
                let synth = unity_mc::synth::synthesize_leadsto_in(
                    &mut session,
                    &eq(var(t), int(0)),
                    &eq(var(t), int(4)),
                    &SynthConfig::default(),
                )
                .unwrap();
                synth.layers.len()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_e20);
criterion_main!(benches);
