//! E15 — proof synthesis cost: producing a *kernel-checked derivation* of
//! a liveness property vs just deciding it with the exact fair checker,
//! on the §3 toy family and the §4 ring. Also the conserved-combination
//! discovery (linear algebra) vs verifying one `Unchanged` premise.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::conserve::conserved_linear_combinations;
use unity_core::expr::build::{eq, int, tt, var};
use unity_mc::prelude::*;
use unity_mc::synth::{synthesize_and_check, synthesize_leadsto, SynthConfig};
use unity_systems::priority::PrioritySystem;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn bench_toy_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_toy_liveness");
    group.sample_size(10);
    for (n, k) in [(2usize, 1i64), (2, 2), (3, 1)] {
        let toy = toy_system(ToySpec::new(n, k)).unwrap();
        let program = toy.system.composed.clone();
        let goal = eq(var(toy.shared), int(n as i64 * k));
        let id = format!("n{n}_k{k}");
        group.bench_with_input(
            BenchmarkId::new("synthesize_only", &id),
            &program,
            |b, program| {
                b.iter(|| {
                    synthesize_leadsto(
                        program,
                        &tt(),
                        &goal,
                        &SynthConfig::default(),
                        &ScanConfig::default(),
                    )
                    .unwrap()
                    .layers
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("synthesize_and_kernel_check", &id),
            &program,
            |b, program| {
                b.iter(|| {
                    synthesize_and_check(
                        program,
                        &tt(),
                        &goal,
                        &SynthConfig::default(),
                        &ScanConfig::default(),
                    )
                    .unwrap()
                    .1
                    .premises
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fair_mc_verdict_only", &id),
            &program,
            |b, program| {
                b.iter(|| {
                    check_leadsto(
                        program,
                        &tt(),
                        &goal,
                        Universe::Reachable,
                        &ScanConfig::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_priority_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_priority_liveness");
    group.sample_size(10);
    let graph = Arc::new(prio_graph::topology::ring(3));
    let ps = PrioritySystem::new(graph).unwrap();
    let goal = ps.priority_expr(0);
    group.bench_function("synthesize_and_kernel_check_ring3", |b| {
        b.iter(|| {
            synthesize_and_check(
                &ps.system.composed,
                &tt(),
                &goal,
                &SynthConfig::default(),
                &ScanConfig::default(),
            )
            .unwrap()
            .0
            .layers
            .len()
        })
    });
    group.bench_function("fair_mc_verdict_only_ring3", |b| {
        b.iter(|| {
            check_leadsto(
                &ps.system.composed,
                &tt(),
                &goal,
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_conservation_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_conservation");
    group.sample_size(20);
    for n in [2usize, 4, 8, 12] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let program = toy.system.composed.clone();
        group.bench_with_input(
            BenchmarkId::new("discover_basis", n),
            &program,
            |b, program| b.iter(|| conserved_linear_combinations(program).dimension()),
        );
        // The discovered law, verified by the model checker (one premise).
        let combo = conserved_linear_combinations(&program)
            .nontrivial()
            .first()
            .map(|c| c.to_expr());
        if let Some(e) = combo {
            if n <= 4 {
                group.bench_with_input(
                    BenchmarkId::new("verify_unchanged", n),
                    &program,
                    |b, program| {
                        b.iter(|| check_unchanged(program, &e, &ScanConfig::default()).unwrap())
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_toy_synthesis,
    bench_priority_synthesis,
    bench_conservation_discovery
);
criterion_main!(benches);
