//! E22 — the verification service's artifact store: one spec submitted
//! to `unity-serve` cold (empty store: every artifact built from
//! source) vs warm (memory layer) vs warm-from-disk (segment files
//! decoded, the restart path).
//!
//! The battery is the shipped `priority_ring16.unity` — 64k reachable
//! states, ~1M transitions, 16 leadsto checks plus a safety invariant —
//! where `TransitionSystem::build` dominates a cold run. A warm
//! re-submission skips the build entirely, so the gap between `cold`
//! and the two warm variants is exactly what the store buys a client.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_serve::{CacheState, Service, ServiceConfig, VerifyRequest, VerifyResponse};

const RING16: &str = include_str!("../../../examples/specs/priority_ring16.unity");

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unity_bench_e22_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> Service {
    Service::open(ServiceConfig {
        data_dir: dir.to_path_buf(),
        workers: 1,
        default_timeout: None,
        queue_limit: 8,
    })
    .unwrap()
}

fn submit(service: &Service) -> VerifyResponse {
    let resp = service.verify(VerifyRequest::new(RING16)).unwrap();
    assert!(resp.report.all_passed(), "ring16 battery must pass");
    resp
}

fn bench_e22(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_serve");
    group.sample_size(10);

    // Cold: a brand-new store every submission; the transition system,
    // reachable set and predecessor index are all built from the spec.
    group.bench_with_input(BenchmarkId::new("cold", "ring16"), &(), |b, ()| {
        b.iter(|| {
            let dir = fresh_dir();
            let service = open(&dir);
            let resp = submit(&service);
            assert_eq!(resp.cache.ts_reachable, CacheState::Miss);
            // Teardown inside the measurement (a few ms against ~100):
            // leaking ~9 MB of segments per iteration would let disk
            // pressure, not the store, set later samples' timings.
            drop(service);
            let _ = std::fs::remove_dir_all(&dir);
            resp.seq
        })
    });

    // Warm, memory layer: the store already holds this spec's artifacts
    // in its in-process cache (the steady state of a long-lived daemon).
    let dir = fresh_dir();
    let service = open(&dir);
    let first = submit(&service);
    assert_eq!(first.cache.ts_reachable, CacheState::Miss);
    group.bench_with_input(BenchmarkId::new("warm_memory", "ring16"), &(), |b, ()| {
        b.iter(|| {
            let resp = submit(&service);
            assert_eq!(resp.cache.ts_reachable, CacheState::Hit);
            resp.seq
        })
    });

    // Warm, disk layer: the memory cache is dropped before every
    // submission, so artifacts are decoded from segment files — the
    // daemon-restart path.
    group.bench_with_input(BenchmarkId::new("warm_disk", "ring16"), &(), |b, ()| {
        b.iter(|| {
            service.drop_memory_cache();
            let resp = submit(&service);
            assert_eq!(resp.cache.ts_reachable, CacheState::Hit);
            resp.seq
        })
    });

    group.finish();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_e22);
criterion_main!(benches);
