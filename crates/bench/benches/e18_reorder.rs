//! E18 — variable-order optimisation: the symbolic engine on an
//! order-hostile composed workload.
//!
//! The workload is `unity_systems::mirror`: two `n`-cell rings declared
//! en bloc (all of ring A, then all of ring B) whose commands flip the
//! rings in lockstep. The reachable set is the full mirror diagonal —
//! `2ⁿ` states whose BDD is `Θ(2ⁿ)` nodes under the blocked declaration
//! order but `3n + 2` once each `aᵢ` sits next to its `bᵢ`. The
//! benchmarks pin the cost of that accident of declaration order and
//! the win from the dependency-derived static order (plus dynamic
//! sifting, the default): at `n = 12` the declaration order takes
//! ~300× longer and peaks at ~150× more live nodes.
//!
//! Peak-live-node and apply-cache counters for each mode are printed
//! once before the timed runs (criterion only times; `SymStats` carries
//! the structural metrics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_mc::prelude::*;
use unity_systems::mirror::{mirrored_rings, mirrored_rings_opaque};

fn modes() -> [(&'static str, SymbolicOptions); 3] {
    [
        ("declaration", SymbolicOptions::declaration()),
        ("static", SymbolicOptions::static_order()),
        ("sift", SymbolicOptions::sifting()),
    ]
}

fn bench_e18(c: &mut Criterion) {
    // Structural counters (not timings): peak live nodes and cache hit
    // rate per order mode on the largest instance.
    {
        let n = 14usize;
        let sys = mirrored_rings(n).unwrap();
        eprintln!("e18_reorder: mirrored_rings n={n} structural counters");
        for (name, opts) in modes() {
            let mut sym = SymbolicProgram::build_with(&sys.program, &opts).unwrap();
            let reach = sym.reachable();
            assert_eq!(reach.count, 1u128 << n);
            let s = sym.stats();
            eprintln!(
                "  {name:<12} peak {:>7} nodes, live {:>6}, apply-cache {:.1}%",
                s.bdd.peak_nodes,
                s.live_nodes,
                100.0 * s.cache_hit_rate()
            );
        }
    }

    // Reachable-set construction under each order mode. The declaration
    // order is the pre-optimisation engine behaviour; `static` and
    // `sift` share the dependency-derived initial order (sifting never
    // needs to fire here — the static order is already linear).
    let mut group = c.benchmark_group("e18_reorder_mirror");
    group.sample_size(10);
    for n in [10usize, 12, 14] {
        let sys = mirrored_rings(n).unwrap();
        group.throughput(Throughput::Elements(1u64 << n));
        for (name, opts) in modes() {
            group.bench_with_input(
                BenchmarkId::new(format!("reachable_{name}"), n),
                &sys,
                |b, sys| {
                    b.iter(|| {
                        let mut sym = SymbolicProgram::build_with(&sys.program, &opts).unwrap();
                        let reach = sym.reachable();
                        assert_eq!(reach.count, 1u128 << n);
                        reach.count
                    })
                },
            );
        }
    }
    group.finish();

    // The *opaque* variant guards every flip with the whole mirror
    // condition: the co-occurrence graph is complete, so the static
    // heuristic degenerates to the declaration order and only the
    // build-time watermark sift discovers the pairing — dynamic
    // sifting's own benchmark, separating `static` from `sift`.
    let mut group = c.benchmark_group("e18_reorder_opaque");
    group.sample_size(10);
    let n = 10usize;
    let sys = mirrored_rings_opaque(n).unwrap();
    group.throughput(Throughput::Elements(1u64 << n));
    for (name, opts) in modes() {
        group.bench_with_input(
            BenchmarkId::new(format!("reachable_{name}"), n),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let mut sym = SymbolicProgram::build_with(&sys.program, &opts).unwrap();
                    let reach = sym.reachable();
                    assert_eq!(reach.count, 1u128 << n);
                    reach.count
                })
            },
        );
    }
    group.finish();

    // The same win on an inductive safety check: `invariant mirrored`
    // decided over all 2²ⁿ type-consistent states.
    let mut group = c.benchmark_group("e18_reorder_safety");
    group.sample_size(10);
    let n = 12usize;
    let sys = mirrored_rings(n).unwrap();
    let inv = sys.mirror_invariant();
    group.throughput(Throughput::Elements(1u64 << (2 * n)));
    for (name, opts) in modes() {
        let cfg = ScanConfig {
            symbolic: opts.clone(),
            ..ScanConfig::symbolic()
        };
        group.bench_with_input(
            BenchmarkId::new(format!("mirror_invariant_{name}"), n),
            &(&sys, &inv),
            |b, (sys, inv)| {
                b.iter(|| check_property(&sys.program, inv, Universe::AllStates, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e18);
criterion_main!(benches);
