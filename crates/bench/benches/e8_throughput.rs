//! E8 — simulator throughput (steps/second) across schedulers and system
//! sizes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_sim::prelude::*;
use unity_systems::dining::{dining_system, DiningSpec};
use unity_systems::priority::PrioritySystem;

const STEPS: u64 = 20_000;

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(STEPS));

    type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let ring = PrioritySystem::new(Arc::new(prio_graph::topology::ring(10))).unwrap();
    let schedulers: Vec<(&str, SchedulerFactory)> = vec![
        ("round_robin", Box::new(|| Box::new(RoundRobin::default()))),
        (
            "aged_lottery",
            Box::new(|| Box::new(AgedLottery::new(7, 40))),
        ),
        (
            "adversarial",
            Box::new(|| Box::new(AdversarialDelay::new(9, 0, 40))),
        ),
    ];
    for (name, mk) in &schedulers {
        group.bench_with_input(
            BenchmarkId::new("priority_ring10", name),
            &ring,
            |b, sys| {
                b.iter(|| {
                    let mut sched = mk();
                    let mut exec = Executor::from_first_initial(&sys.system.composed);
                    exec.run(STEPS, sched.as_mut(), &mut []);
                    exec.step_count()
                })
            },
        );
    }

    let table = dining_system(&DiningSpec {
        graph: Arc::new(prio_graph::topology::ring(10)),
    })
    .unwrap();
    group.bench_with_input(
        BenchmarkId::new("dining_ring10", "aged_lottery"),
        &table,
        |b, d| {
            b.iter(|| {
                let mut sched = AgedLottery::new(3, 60);
                let mut exec = Executor::from_first_initial(&d.system.composed);
                exec.run(STEPS, &mut sched, &mut []);
                exec.step_count()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
