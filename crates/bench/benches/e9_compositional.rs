//! E9 — the paper's motivating claim, quantified: establishing the toy
//! invariant *compositionally* (per-component premises + lifting) scales
//! far better than *monolithic* inductive checking of the composed
//! program, because the monolithic full-state scan grows as the product of
//! all domains while each compositional premise touches the same space but
//! with only one component's commands — and, more importantly, the
//! compositional route re-verifies nothing when components are reused.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};
use unity_systems::toy_proof::toy_invariant_proof;

fn bench_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_compositional_vs_monolithic");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();

        // Monolithic: inductive invariant check over the full product with
        // all n commands.
        group.bench_with_input(BenchmarkId::new("monolithic", n), &toy, |b, toy| {
            b.iter(|| {
                check_property(
                    &toy.system.composed,
                    &toy.system_invariant(),
                    Universe::Reachable,
                    &ScanConfig::default(),
                )
                .unwrap()
            })
        });

        // Compositional: kernel proof, premises checked per component.
        group.bench_with_input(BenchmarkId::new("compositional", n), &toy, |b, toy| {
            b.iter(|| {
                let (proof, conclusion) = toy_invariant_proof(toy);
                let mut mc = McDischarger::new(&toy.system);
                let mut ctx = CheckCtx::new(&mut mc).with_components(toy.spec.n);
                check_concludes(&proof, &conclusion, &mut ctx).unwrap()
            })
        });

        // Component-reuse scenario: premises for one representative
        // component only (all components are isomorphic, which is exactly
        // how a repository of verified parts would amortize the cost).
        group.bench_with_input(
            BenchmarkId::new("one_component_premises", n),
            &toy,
            |b, toy| {
                b.iter(|| {
                    let comp = &toy.system.components[0];
                    let cfg = ScanConfig::default();
                    check_property(comp, &toy.spec_init(0), Universe::Reachable, &cfg).unwrap();
                    check_property(comp, &toy.spec_unchanged(0), Universe::Reachable, &cfg)
                        .unwrap();
                    for loc in toy.spec_locality(0) {
                        check_property(comp, &loc, Universe::Reachable, &cfg).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
