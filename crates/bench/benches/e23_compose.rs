//! E23 — assume-guarantee compositional verification through the serve
//! store: the product build vs per-component discharge, cold and warm,
//! and the headline scenario — **editing one component of a
//! 4-component system re-verifies only that component**, answering the
//! rest from the persistent certificate cache and never (re)building
//! the product transition system.
//!
//! The workload is the 4-quadrant grid (`unity_systems::quadrants`
//! rendered as a `.unity` spec): four disjoint `side × side` walkers,
//! so the flat product is the *product* of the quadrant spaces while
//! every compositional obligation lives in a single quadrant's few
//! dozen states. The spec battery is the
//! quadrants' default one — `init`/`invariant`/`stable`/`leadsto` per
//! quadrant — which the assume-guarantee rules discharge completely,
//! so `cache.ts_reachable == Unused` (the product was never opened) is
//! asserted on every compositional submission.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_serve::{CacheState, Service, ServiceConfig, VerifyRequest, VerifyResponse};

/// Renders the 4-quadrant grid as a `.unity` spec; `sides[i]` is
/// quadrant `i`'s side length. Changing one entry changes exactly one
/// component's program text (its domain bounds, guards and fuel), so
/// its certificates — and only its — are invalidated.
fn quadrant_spec(sides: [i64; 4]) -> String {
    let mut src = String::new();
    for (i, side) in sides.iter().enumerate() {
        let m = side - 1;
        let fuel = 2 * m;
        src.push_str(&format!(
            "program Quadrant{i}\n  \
             var x{i} : int 0..{m} local\n  \
             var y{i} : int 0..{m} local\n  \
             var f{i} : int 0..{fuel} local\n  \
             init x{i} == 0 && y{i} == 0 && f{i} == {fuel}\n  \
             fair cmd east{i}: x{i} < {m} -> x{i} := x{i} + 1, f{i} := f{i} - 1\n  \
             fair cmd north{i}: y{i} < {m} -> y{i} := y{i} + 1, f{i} := f{i} - 1\n\
             end\n"
        ));
    }
    src.push_str("spec Grid\n");
    for (i, side) in sides.iter().enumerate() {
        let m = side - 1;
        let fuel = 2 * m;
        src.push_str(&format!(
            "  origin{i}: init x{i} == 0 && y{i} == 0 && f{i} == {fuel}\n  \
             bounds{i}: invariant x{i} <= {m} && y{i} <= {m}\n  \
             settled{i}: stable f{i} == 0\n  \
             arrival{i}: true leadsto f{i} == 0\n"
        ));
    }
    src.push_str("end\n");
    src
}

// Mixed sides keep the flat product large enough to hurt (~292k
// states, ~0.5 s a submission) while staying inside the scan limit;
// each quadrant alone is at most 45 states, so the compositional path
// is ~100x cheaper per cold submission.
const BASE_SIDES: [i64; 4] = [3, 3, 2, 2];

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unity_bench_e23_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> Service {
    Service::open(ServiceConfig {
        data_dir: dir.to_path_buf(),
        workers: 1,
        default_timeout: None,
        queue_limit: 8,
    })
    .unwrap()
}

fn submit(service: &Service, spec: &str, compositional: bool) -> VerifyResponse {
    let mut req = VerifyRequest::new(spec);
    req.compositional = compositional;
    let resp = service.verify(req).unwrap();
    assert!(resp.report.all_passed(), "quadrant battery must pass");
    resp
}

fn bench_e23(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_compose");
    group.sample_size(10);
    let base = quadrant_spec(BASE_SIDES);

    // Flat cold: the product transition system (side⁸ states) is built
    // for the leadsto checks — the cost every flat submission pays.
    group.bench_with_input(BenchmarkId::new("flat_cold", "quad4"), &(), |b, ()| {
        b.iter(|| {
            let dir = fresh_dir();
            let service = open(&dir);
            let resp = submit(&service, &base, false);
            assert_eq!(resp.cache.ts_reachable, CacheState::Miss);
            drop(service);
            let _ = std::fs::remove_dir_all(&dir);
            resp.seq
        })
    });

    // Compositional cold: every obligation discharges in one quadrant's
    // side² space; the product is never opened even with an empty
    // certificate store.
    group.bench_with_input(
        BenchmarkId::new("compositional_cold", "quad4"),
        &(),
        |b, ()| {
            b.iter(|| {
                let dir = fresh_dir();
                let service = open(&dir);
                let resp = submit(&service, &base, true);
                assert_eq!(resp.cache.ts_reachable, CacheState::Unused);
                assert_eq!(resp.cache.cert_hits, 0);
                assert!(resp.cache.cert_misses > 0);
                drop(service);
                let _ = std::fs::remove_dir_all(&dir);
                resp.seq
            })
        },
    );

    // Compositional warm: the store answers every obligation from
    // per-component certificates; no checking at all.
    let dir = fresh_dir();
    let service = open(&dir);
    let first = submit(&service, &base, true);
    assert!(first.cache.cert_misses > 0, "cold run seeds the store");
    group.bench_with_input(
        BenchmarkId::new("compositional_warm", "quad4"),
        &(),
        |b, ()| {
            b.iter(|| {
                let resp = submit(&service, &base, true);
                assert_eq!(resp.cache.ts_reachable, CacheState::Unused);
                assert_eq!(resp.cache.cert_misses, 0);
                assert!(resp.cache.cert_hits > 0);
                resp.seq
            })
        },
    );

    // The headline: edit quadrant 0 (a fresh side length every
    // iteration, so its program text — and only its — changes) and
    // re-verify. Quadrants 1–3 answer from certificates; only the
    // edited quadrant is re-checked; the product is never rebuilt.
    let edit_counter = AtomicU64::new(0);
    group.bench_with_input(
        BenchmarkId::new("one_component_edit", "quad4"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut sides = BASE_SIDES;
                // 4..=19: a non-repeating run of distinct edits, none
                // equal to any base side (so the edited quadrant always
                // misses) and all small enough that re-checking the one
                // edited component stays cheap.
                sides[0] = 4 + (edit_counter.fetch_add(1, Ordering::SeqCst) % 16) as i64;
                let edited = quadrant_spec(sides);
                let resp = submit(&service, &edited, true);
                assert_eq!(resp.cache.ts_reachable, CacheState::Unused);
                assert!(resp.cache.cert_hits > 0, "unedited quadrants cached");
                assert!(resp.cache.cert_misses > 0, "edited quadrant re-checked");
                resp.seq
            })
        },
    );

    group.finish();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_e23);
criterion_main!(benches);
