//! E1 — §3 toy example: cost of establishing `invariant C = Σ cᵢ`
//! compositionally (kernel proof, premises on components) vs.
//! monolithically (inductive model check of the composed program), over a
//! parameter sweep. Also E1b: the footnote-1 asymmetric-init variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, toy_system_asymmetric, ToySpec};
use unity_systems::toy_proof::{toy_invariant_proof, toy_invariant_proof_asymmetric};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_toy_invariant");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        for k in [1i64, 2] {
            let toy = toy_system(ToySpec::new(n, k)).unwrap();
            group.bench_with_input(
                BenchmarkId::new("compositional_proof", format!("n{n}_k{k}")),
                &toy,
                |b, toy| {
                    b.iter(|| {
                        let (proof, conclusion) = toy_invariant_proof(toy);
                        let mut mc = McDischarger::new(&toy.system);
                        let mut ctx = CheckCtx::new(&mut mc).with_components(toy.spec.n);
                        check_concludes(&proof, &conclusion, &mut ctx).unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("monolithic_mc", format!("n{n}_k{k}")),
                &toy,
                |b, toy| {
                    b.iter(|| {
                        check_property(
                            &toy.system.composed,
                            &toy.system_invariant(),
                            Universe::Reachable,
                            &ScanConfig::default(),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e1b_asymmetric_variant");
    group.sample_size(10);
    let toy = toy_system_asymmetric(ToySpec::new(3, 1)).unwrap();
    group.bench_function("proof", |b| {
        b.iter(|| {
            let (proof, conclusion) = toy_invariant_proof_asymmetric(&toy);
            let mut mc = McDischarger::new(&toy.system);
            let mut ctx = CheckCtx::new(&mut mc).with_components(3);
            check_concludes(&proof, &conclusion, &mut ctx).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
