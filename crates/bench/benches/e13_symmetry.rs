//! E13 — symmetry reduction and bounded refutation at scale.
//!
//! The toy system's N components are interchangeable, so its reachable
//! space carries a full `S_N` action. This bench compares:
//!
//! * exact reachable invariant checking (`check_invariant_reachable`),
//! * quotient checking over canonical orbit representatives
//!   (`check_invariant_symmetric`) — `O(reachable / ≈N!)` states, and
//! * random-walk refutation (`random_walk_invariant`) on the *broken*
//!   variant — the incomplete mode whose cost is walk-length, not
//!   state-space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::prelude::*;
use unity_mc::prelude::*;
use unity_mc::symmetry::SymmetrySpec;
use unity_systems::toy_counter::{toy_system, toy_system_broken, ToySpec};

fn invariant_pred(toy: &unity_systems::toy_counter::ToySystem) -> Expr {
    match toy.system_invariant() {
        Property::Invariant(p) => p,
        _ => unreachable!(),
    }
}

fn blocks(toy: &unity_systems::toy_counter::ToySystem, n: usize) -> SymmetrySpec {
    let vocab = toy.system.vocab();
    let blocks: Vec<Vec<VarId>> = (0..n)
        .map(|i| vec![vocab.lookup(&format!("c{i}")).unwrap()])
        .collect();
    SymmetrySpec::new(blocks, vocab).unwrap()
}

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_symmetry");
    for n in [4usize, 6, 8, 10] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let pred = invariant_pred(&toy);
        let spec = blocks(&toy, n);
        let cfg = ScanConfig::default();
        // Soundness validation runs once, outside the timed loop — the
        // amortized usage the prevalidated entry point exists for.
        spec.validate_program(&toy.system.composed, 512, 7).unwrap();
        spec.validate_predicate(&pred, toy.system.vocab(), 512, 11)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("exact_reachable", n),
            &(&toy, &pred, &cfg),
            |b, (toy, pred, cfg)| {
                b.iter(|| check_invariant_reachable(&toy.system.composed, pred, cfg).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("symmetry_quotient", n),
            &(&toy, &pred, &spec),
            |b, (toy, pred, spec)| {
                b.iter(|| {
                    check_invariant_symmetric_prevalidated(
                        &toy.system.composed,
                        pred,
                        spec,
                        1 << 22,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();

    // Refutation: random walks find the broken component's conservation
    // violation without building any state space.
    let mut group = c.benchmark_group("e13_refutation");
    for n in [4usize, 6, 8] {
        let broken = toy_system_broken(ToySpec::new(n, 2), 0).unwrap();
        let pred = invariant_pred(&broken);
        let bmc = BmcConfig {
            walks: 64,
            walk_len: 256,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("random_walk_refute", n),
            &(&broken, &pred, &bmc),
            |b, (broken, pred, bmc)| {
                b.iter(|| random_walk_invariant(&broken.system.composed, pred, bmc).unwrap_err())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bounded_bfs_refute", n),
            &(&broken, &pred, &bmc),
            |b, (broken, pred, bmc)| {
                b.iter(|| bounded_invariant(&broken.system.composed, pred, bmc).unwrap_err())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
