//! E21 — sharded parallel state-space construction: the work-stealing
//! explorer (`--threads N`) vs the sequential reference builder
//! (`--threads 1`) on fair token rings of growing packed state spaces.
//!
//! Each benchmark id is `threadsT/ringNxW`: a full
//! [`TransitionSystem::build`] of the `n · 2^m`-state ring at `T`
//! workers. `threads1` is the exact pre-sharding sequential path (the
//! differential reference); `threads2/4/8` force the sharded path
//! (hash-partitioned frontier, per-shard mailboxes, quiescence-counter
//! termination, segment-parallel CSR stitch) via a zero sequential
//! cutoff.
//!
//! Wall-clock scaling tracks the *host's* available parallelism — on a
//! single-core container the sweep instead pins the sharding machinery's
//! overhead bound (threads > 1 must stay within a small constant factor
//! of sequential). Run on a multi-core host for the scaling table; the
//! committed baseline records the measuring machine's core count in its
//! absolute times.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::ident::Vocabulary;
use unity_core::program::Program;
use unity_mc::prelude::*;

/// A fair token ring of `n` nodes with `m` free work bits: `pass`
/// circulates the token, `work_j` toggles bit `j`. Reachable space
/// `n · 2^m`, with `m + 1` commands — enough fan-out that frontier
/// expansion, not interning, dominates the build.
fn token_ring(n: i64, m: usize) -> Program {
    let mut v = Vocabulary::new();
    let t = v
        .declare("t", Domain::int_range(0, n - 1).unwrap())
        .unwrap();
    let bits: Vec<_> = (0..m)
        .map(|j| v.declare(&format!("g{j}"), Domain::Bool).unwrap())
        .collect();
    let mut b = Program::builder("token_ring", Arc::new(v))
        .init(eq(var(t), int(0)))
        .fair_command("pass", tt(), vec![(t, rem(add(var(t), int(1)), int(n)))]);
    for (j, &g) in bits.iter().enumerate() {
        b = b.fair_command(format!("work{j}"), tt(), vec![(g, not(var(g)))]);
    }
    b.build().unwrap()
}

/// Build configuration for `threads` workers: one worker is the exact
/// sequential reference path; more force the sharded explorer even on
/// small spaces (zero cutoff).
fn cfg(threads: usize) -> ScanConfig {
    ScanConfig {
        par: if threads <= 1 {
            ParConfig::sequential()
        } else {
            ParConfig::with_threads(threads)
        },
        ..Default::default()
    }
}

fn bench_e21(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_parallel_build");
    group.sample_size(10);
    // Two ring sizes: a mid-size space and the headline large one.
    for (n, m) in [(48i64, 10usize), (64, 12)] {
        let ring = token_ring(n, m);
        let expect = (n as usize) << m;
        let id = format!("ring{n}x{}", 1u64 << m);
        // Every thread count must construct the same system before we
        // time any of them.
        for threads in [1usize, 2, 4, 8] {
            let ts = TransitionSystem::build(&ring, Universe::Reachable, &cfg(threads)).unwrap();
            assert_eq!(ts.len(), expect, "state count at {threads} thread(s)");
            assert_eq!(ts.transition_count(), expect * (m + 1));
        }
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), &id),
                &ring,
                |b, ring| {
                    b.iter(|| {
                        TransitionSystem::build(ring, Universe::Reachable, &cfg(threads))
                            .unwrap()
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e21);
criterion_main!(benches);
