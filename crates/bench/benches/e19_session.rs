//! E19 — verifier session reuse: an N-property specification decided by
//! per-check rebuild (the stateless free functions) vs one `Verifier`
//! session (shared compiled pipeline, transition system + reachable
//! set, symbolic engine).
//!
//! This is the access pattern the paper's method induces — *many*
//! universal properties posed against *one* composed program — and the
//! pattern `unity-check`, `--mutate`, `--synthesize` and the proof
//! dischargers all hit. The session must win by the number of times the
//! dominant artifact would otherwise be rebuilt (≈ the property count
//! for artifact-dominated checks).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::expr::build::tt;
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_systems::priority::PrioritySystem;

/// A 10-check liveness-heavy spec on a priority ring: the paper's (18)
/// `true ↦ Priority(i)` per node plus the (17) safety invariant and one
/// (15) next property. Every `leadsto` needs the reachable transition
/// system — the artifact the session shares.
fn live_spec(sys: &PrioritySystem) -> Vec<NamedCheck> {
    let mut checks: Vec<NamedCheck> = (0..sys.len())
        .map(|i| NamedCheck {
            name: format!("live{i}"),
            property: Property::LeadsTo(tt(), sys.priority_expr(i)),
            line: 0,
        })
        .collect();
    checks.push(NamedCheck {
        name: "safety".into(),
        property: sys.safety_invariant(),
        line: 0,
    });
    checks.push(NamedCheck {
        name: "yield0".into(),
        property: sys.spec_15(0),
        line: 0,
    });
    checks
}

/// A 10-check safety spec on a bigger ring for the symbolic engine: the
/// shared artifact is the lowered `SymbolicProgram` (partitioned
/// transition relations + tuned variable order).
fn safety_spec(sys: &PrioritySystem) -> Vec<NamedCheck> {
    let mut checks = vec![NamedCheck {
        name: "safety".into(),
        property: sys.safety_invariant(),
        line: 0,
    }];
    checks.extend((0..9).map(|i| NamedCheck {
        name: format!("yield{i}"),
        property: sys.spec_15(i),
        line: 0,
    }));
    checks
}

fn passes_rebuild(checks: &[NamedCheck], sys: &PrioritySystem, cfg: &ScanConfig) -> usize {
    checks
        .iter()
        .filter(|c| {
            check_property(&sys.system.composed, &c.property, Universe::Reachable, cfg).is_ok()
        })
        .count()
}

fn passes_session(checks: &[NamedCheck], sys: &PrioritySystem, cfg: &ScanConfig) -> usize {
    let mut session = Verifier::new(&sys.system.composed, cfg.clone());
    let report = session.verify_all(checks);
    report.checks.iter().filter(|c| c.verdict.passed()).count()
}

fn bench_e19(c: &mut Criterion) {
    // Explicit engine, leadsto-heavy: the transition system + reachable
    // set is rebuilt 8x by the free functions, once by the session.
    let mut group = c.benchmark_group("e19_session_explicit");
    group.sample_size(10);
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(12))).unwrap();
    let checks = live_spec(&sys);
    assert_eq!(checks.len(), 14);
    let cfg = ScanConfig::default();
    assert_eq!(passes_rebuild(&checks, &sys, &cfg), checks.len());
    assert_eq!(passes_session(&checks, &sys, &cfg), checks.len());
    group.bench_with_input(
        BenchmarkId::new("rebuild_per_check", "ring12_14props"),
        &(&checks, &sys),
        |b, (checks, sys)| b.iter(|| passes_rebuild(checks, sys, &cfg)),
    );
    group.bench_with_input(
        BenchmarkId::new("session", "ring12_14props"),
        &(&checks, &sys),
        |b, (checks, sys)| b.iter(|| passes_session(checks, sys, &cfg)),
    );
    group.finish();

    // Symbolic engine, inductive safety at scale: the lowered symbolic
    // program is rebuilt 10x by the free functions, once by the session.
    let mut group = c.benchmark_group("e19_session_symbolic");
    group.sample_size(10);
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(16))).unwrap();
    let checks = safety_spec(&sys);
    assert_eq!(checks.len(), 10);
    let cfg = ScanConfig::symbolic();
    assert_eq!(passes_rebuild(&checks, &sys, &cfg), checks.len());
    assert_eq!(passes_session(&checks, &sys, &cfg), checks.len());
    group.bench_with_input(
        BenchmarkId::new("rebuild_per_check", "ring16_10props"),
        &(&checks, &sys),
        |b, (checks, sys)| b.iter(|| passes_rebuild(checks, sys, &cfg)),
    );
    group.bench_with_input(
        BenchmarkId::new("session", "ring16_10props"),
        &(&checks, &sys),
        |b, (checks, sys)| b.iter(|| passes_session(checks, sys, &cfg)),
    );
    group.finish();

    // Mutation audit (the `--mutate` path): every mutant re-checks the
    // whole spec. The closure form rebuilds per property per mutant;
    // `mutation_audit_checks` opens one session per mutant.
    let mut group = c.benchmark_group("e19_session_mutate");
    group.sample_size(10);
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(5))).unwrap();
    let checks = live_spec(&sys);
    let cfg = ScanConfig::default();
    group.bench_with_input(
        BenchmarkId::new("audit_rebuild_per_check", "ring5"),
        &(&checks, &sys),
        |b, (checks, sys)| {
            b.iter(|| {
                let program = &sys.system.composed;
                type Boxed = (String, Box<dyn Fn(&unity_core::program::Program) -> bool>);
                let specs: Vec<Boxed> = checks
                    .iter()
                    .map(|c| {
                        let prop = c.property.clone();
                        let cfg = cfg.clone();
                        let f: Box<dyn Fn(&unity_core::program::Program) -> bool> =
                            Box::new(move |p| {
                                check_property(p, &prop, Universe::Reachable, &cfg).is_ok()
                            });
                        (c.name.clone(), f)
                    })
                    .collect();
                let named: Vec<Spec<'_>> = specs
                    .iter()
                    .map(|(n, f)| {
                        (
                            n.as_str(),
                            f.as_ref() as &dyn Fn(&unity_core::program::Program) -> bool,
                        )
                    })
                    .collect();
                mutation_audit(program, &named).unwrap().killed()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("audit_session", "ring5"),
        &(&checks, &sys),
        |b, (checks, sys)| {
            b.iter(|| {
                mutation_audit_checks(&sys.system.composed, checks, Universe::Reachable, &cfg)
                    .unwrap()
                    .killed()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_e19);
criterion_main!(benches);
