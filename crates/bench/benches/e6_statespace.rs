//! E6 — state-space growth: transition-system construction cost versus
//! component count for both case studies (the scaling wall that motivates
//! compositional reasoning).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_mc::prelude::*;
use unity_systems::priority::PrioritySystem;
use unity_systems::toy_counter::{toy_system, ToySpec};

/// The two evaluation engines, benched side by side: `compiled` is the
/// bytecode/packed-word pipeline, `reference` the tree-walking evaluator.
fn engines() -> [(&'static str, ScanConfig); 2] {
    [
        ("compiled", ScanConfig::default()),
        ("reference", ScanConfig::reference()),
    ]
}

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_statespace_toy");
    for n in [2usize, 3, 4, 5] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        let ts = TransitionSystem::build(
            &toy.system.composed,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        group.throughput(Throughput::Elements(ts.len() as u64));
        for (engine, cfg) in engines() {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("build_reachable_{engine}"),
                    format!("n{n}_{}states", ts.len()),
                ),
                &(&toy, cfg),
                |b, (toy, cfg)| {
                    b.iter(|| {
                        TransitionSystem::build(&toy.system.composed, Universe::Reachable, cfg)
                            .unwrap()
                            .len()
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e6_statespace_priority_ring");
    for n in [4usize, 6, 8, 10, 12] {
        let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(n))).unwrap();
        group.throughput(Throughput::Elements(1 << n));
        for (engine, cfg) in engines() {
            group.bench_with_input(
                BenchmarkId::new(format!("build_all_states_{engine}"), n),
                &(&sys, cfg),
                |b, (sys, cfg)| {
                    b.iter(|| {
                        TransitionSystem::build(&sys.system.composed, Universe::AllStates, cfg)
                            .unwrap()
                            .transition_count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
