//! E14 — distributed edge reversal: event throughput and message cost by
//! topology and scheduler; Chandy–Lamport snapshot overhead; threaded
//! executor throughput. (The distributed realization of §4 — no paper
//! counterpart; characterizes the `unity-dist` substrate.)

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_graph::orientation::Orientation;
use prio_graph::topology;
use unity_dist::prelude::*;

fn bench_event_driven(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_event_driven");
    group.sample_size(10);
    for (name, graph) in [
        ("ring8", topology::ring(8)),
        ("grid4x4", topology::grid(4, 4)),
        ("torus4x4", topology::torus(4, 4)),
        ("complete6", topology::complete(6)),
    ] {
        let graph = Arc::new(graph);
        let o = Orientation::index_order(graph.clone());
        group.bench_with_input(
            BenchmarkId::new("fair_until_5_actions", name),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let mut run = DistRun::new(graph.clone(), &o, Box::new(OldestFirst::new()));
                    let stats = run.run(RunLimits::until_actions(5));
                    assert!(stats.min_actions() >= 5);
                    stats.steps
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random_2000_events", name),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let mut run = DistRun::new(graph.clone(), &o, Box::new(SeededRandom::new(7)));
                    run.run(RunLimits::steps(2_000)).tokens_sent
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_snapshot_overhead");
    group.sample_size(10);
    let graph = Arc::new(topology::grid(4, 4));
    let o = Orientation::index_order(graph.clone());
    group.bench_function("no_snapshots", |b| {
        b.iter(|| {
            let mut run = DistRun::new(graph.clone(), &o, Box::new(SeededRandom::new(3)));
            run.run(RunLimits::steps(4_000)).steps
        })
    });
    group.bench_function("snapshot_every_500", |b| {
        b.iter(|| {
            let mut run = DistRun::new(graph.clone(), &o, Box::new(SeededRandom::new(3)));
            for i in 0..8 {
                run.run(RunLimits::steps(run.stats().steps + 500));
                run.initiate_snapshot(i % graph.node_count());
            }
            assert!(!run.snapshots().is_empty());
            run.stats().steps
        })
    });
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_threaded");
    group.sample_size(10);
    for (name, graph) in [
        ("ring8", topology::ring(8)),
        ("grid3x3", topology::grid(3, 3)),
    ] {
        let graph = Arc::new(graph);
        let o = Orientation::index_order(graph.clone());
        group.bench_with_input(
            BenchmarkId::new("500_actions_each", name),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let out = run_threaded(
                        graph,
                        &o,
                        ThreadedConfig {
                            target_actions_per_node: 500,
                            max_duration: Duration::from_secs(30),
                            ..ThreadedConfig::default()
                        },
                    );
                    assert!(out.reached_target);
                    out.tokens_sent
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_driven,
    bench_snapshot_overhead,
    bench_threaded
);
criterion_main!(benches);
