//! E2 — §4 safety (17) across conflict-graph topologies: inductive model
//! check of the mutual-exclusion invariant, plus the kernel safety proof.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_graph::topology::Topology;
use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_mc::prelude::*;
use unity_systems::priority::PrioritySystem;
use unity_systems::priority_proofs::safety_proof;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_safety");
    group.sample_size(10);
    for t in [
        Topology::Path,
        Topology::Ring,
        Topology::Star,
        Topology::Complete,
    ] {
        for n in [3usize, 4, 5] {
            let sys = PrioritySystem::new(Arc::new(t.build(n))).unwrap();
            for (engine, cfg) in [
                ("compiled", ScanConfig::default()),
                ("reference", ScanConfig::reference()),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("mc_{}_{engine}", t.name()), n),
                    &(&sys, cfg),
                    |b, (sys, cfg)| {
                        b.iter(|| {
                            check_property(
                                &sys.system.composed,
                                &sys.safety_invariant(),
                                Universe::Reachable,
                                cfg,
                            )
                            .unwrap()
                        })
                    },
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("proof_{}", t.name()), n),
                &sys,
                |b, sys| {
                    b.iter(|| {
                        let (p, j) = safety_proof(sys);
                        let mut mc = McDischarger::new(&sys.system);
                        let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
                        check_concludes(&p, &j, &mut ctx).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
