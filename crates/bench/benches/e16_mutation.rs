//! E16 — mutation-audit cost: mutant generation, exhaustive equivalence
//! detection, and the full audit against the §3 specifications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::program::Program;
use unity_mc::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_mutation");
    group.sample_size(10);
    for (n, k) in [(2usize, 1i64), (2, 2)] {
        let toy = toy_system(ToySpec::new(n, k)).unwrap();
        let program = toy.system.composed.clone();
        let id = format!("n{n}_k{k}");
        group.bench_with_input(BenchmarkId::new("generate", &id), &program, |b, program| {
            b.iter(|| mutants(program).len())
        });
        group.bench_with_input(
            BenchmarkId::new("equivalence_scan", &id),
            &program,
            |b, program| {
                b.iter(|| {
                    mutants(program)
                        .iter()
                        .filter(|m| same_behavior(program, &m.program))
                        .count()
                })
            },
        );
        let conservation = toy.system_invariant();
        let saturation = toy.saturation_liveness();
        let inv_spec = move |p: &Program| {
            check_property(
                p,
                &conservation,
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .is_ok()
        };
        let live_spec = move |p: &Program| {
            check_property(p, &saturation, Universe::Reachable, &ScanConfig::default()).is_ok()
        };
        group.bench_with_input(
            BenchmarkId::new("full_audit", &id),
            &program,
            |b, program| {
                b.iter(|| {
                    mutation_audit(program, &[("inv", &inv_spec), ("live", &live_spec)])
                        .unwrap()
                        .kill_ratio()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
