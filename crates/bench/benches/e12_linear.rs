//! E12 — ablation of the linear-normal-form fast path (DESIGN.md §3.8).
//!
//! The §3.3 derivation's "removing unused dummies" rewrites are linear
//! arithmetic identities. The equivalence discharger first compares
//! linear normal forms in `O(|expr|)` and only falls back to a
//! full-domain scan. This bench measures both deciders on the same
//! queries — `C − (c_0 + ⋯ + c_{n−1})` against its reassociated form —
//! as the vocabulary grows: the fast path stays flat, the scan grows with
//! the domain product.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unity_core::expr::linear::linear_equivalent;
use unity_core::prelude::*;
use unity_mc::prelude::*;

/// Builds the n-component vocabulary and the two equivalent expressions:
/// left-nested and right-nested subtraction chains of the counters.
fn workload(n: usize) -> (Arc<Vocabulary>, Expr, Expr) {
    let mut v = Vocabulary::new();
    let cs: Vec<VarId> = (0..n)
        .map(|i| {
            v.declare(&format!("c{i}"), Domain::int_range(0, 2).unwrap())
                .unwrap()
        })
        .collect();
    let big = v
        .declare("C", Domain::int_range(0, 2 * n as i64).unwrap())
        .unwrap();
    // a = ((C - c0) - c1) - ... ; b = C - (c0 + (c1 + ...)).
    let mut a = var(big);
    for &ci in &cs {
        a = sub(a, var(ci));
    }
    let mut sum = var(cs[n - 1]);
    for &ci in cs[..n - 1].iter().rev() {
        sum = add(var(ci), sum);
    }
    let b = sub(var(big), sum);
    (Arc::new(v), a, b)
}

fn bench_e12(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_linear_fastpath");
    for n in [2usize, 4, 6, 8] {
        let (vocab, a, b) = workload(n);
        // Sanity: the fast path decides these queries affirmatively.
        assert_eq!(linear_equivalent(&a, &b, &vocab), Some(true));
        group.bench_with_input(
            BenchmarkId::new("linear_normal_form", n),
            &(&vocab, &a, &b),
            |bch, (vocab, a, b)| bch.iter(|| linear_equivalent(a, b, vocab).unwrap()),
        );
        // The ablated decider: a full-domain validity scan of the
        // equality (what every equivalence would cost without the fast
        // path). Projection is disabled so the scan covers the whole
        // product, isolating the fast path's contribution.
        let query = eq(a.clone(), b.clone());
        let cfg = ScanConfig::without_projection();
        group.bench_with_input(
            BenchmarkId::new("full_scan", n),
            &(&vocab, &query, &cfg),
            |bch, (vocab, query, cfg)| bch.iter(|| check_valid(vocab, query, cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e12);
criterion_main!(benches);
