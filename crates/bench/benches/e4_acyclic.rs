//! E4 — Property 5 (25): acyclicity preservation, including fault
//! injection: the correct full-yield mechanism keeps acyclicity stable;
//! the broken half-yield variant is refuted (we measure
//! time-to-counterexample, which is the fault-detection latency).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_graph::topology::Topology;
use unity_mc::prelude::*;
use unity_systems::baselines::broken_yield_system;
use unity_systems::priority::PrioritySystem;

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_acyclicity");
    group.sample_size(10);
    for t in [Topology::Ring, Topology::Complete] {
        for n in [3usize, 4, 5] {
            let good = PrioritySystem::new(Arc::new(t.build(n))).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("stable_{}", t.name()), n),
                &good,
                |b, sys| {
                    b.iter(|| {
                        check_property(
                            &sys.system.composed,
                            &sys.acyclicity_stable(),
                            Universe::Reachable,
                            &ScanConfig::default(),
                        )
                        .unwrap()
                    })
                },
            );
            let broken = broken_yield_system(Arc::new(t.build(n))).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("fault_detect_{}", t.name()), n),
                &broken,
                |b, sys| {
                    b.iter(|| {
                        check_property(
                            &sys.system.composed,
                            &sys.acyclicity_stable(),
                            Universe::Reachable,
                            &ScanConfig::default(),
                        )
                        .unwrap_err()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
