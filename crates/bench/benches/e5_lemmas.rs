//! E5 — the graph-theory substrate: closure computation (BFS vs. the
//! naive saturation reference), and exhaustive Lemma 1 / Lemma 2
//! validation over all orientations of small graphs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prio_graph::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_closures");
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Arc::new(prio_graph::topology::connected_random(n, 0.15, &mut rng));
        let o = Orientation::index_order(g);
        group.bench_with_input(BenchmarkId::new("bfs", n), &o, |b, o| {
            b.iter(|| all_reach_sets(o))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &o, |b, o| {
            b.iter(|| prio_graph::closure::reach_sets_naive(o))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e5_exhaustive_lemmas");
    group.sample_size(10);
    for n in [4usize, 5] {
        group.bench_with_input(BenchmarkId::new("ring_orientations", n), &n, |b, &n| {
            let g = Arc::new(prio_graph::topology::ring(n));
            b.iter(|| {
                let mut ok = 0usize;
                for o in Orientation::enumerate(&g) {
                    assert!(duality_holds(&o));
                    if is_acyclic(&o) {
                        assert!(lemma2_holds(&o));
                    }
                    for i0 in 0..n {
                        if let Some(d) = derive(&o, i0) {
                            assert!(lemma1_holds(&o, &d, i0));
                            ok += 1;
                        }
                    }
                }
                ok
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
