//! E10 — parallel speedup of the full-domain validity scans and of
//! replica simulation (1 vs N worker threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unity_mc::prelude::*;
use unity_sim::prelude::*;
use unity_systems::toy_counter::{toy_system, ToySpec};

fn bench_e10(c: &mut Criterion) {
    // A deliberately large instance so the scan has real work.
    let toy = toy_system(ToySpec::new(6, 3)).unwrap();
    let space = toy.system.vocab().space_size().unwrap();

    let mut group = c.benchmark_group("e10_parallel_scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(space));
    for threads in [1usize, 2, 4, 8] {
        let cfg = ScanConfig {
            par: ParConfig::with_threads(threads),
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("unchanged_scan", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    check_unchanged(&toy.system.composed, &toy.difference_expr(), cfg).unwrap()
                })
            },
        );
    }
    group.finish();

    let sim_toy = toy_system(ToySpec::new(4, 3)).unwrap();
    let mut group = c.benchmark_group("e10_parallel_replicas");
    group.sample_size(10);
    const REPLICAS: usize = 16;
    const STEPS: u64 = 4_000;
    group.throughput(Throughput::Elements(REPLICAS as u64 * STEPS));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("simulation", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_replicas(
                        &sim_toy.system.composed,
                        REPLICAS,
                        99,
                        threads,
                        |program, _r, seed| {
                            let mut sched = AgedLottery::new(seed, 16);
                            let mut exec = Executor::from_first_initial(program);
                            exec.run(STEPS, &mut sched, &mut []);
                            exec.step_count()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
