//! Automatic synthesis of kernel-checkable `leadsto` derivations.
//!
//! The paper remarks (§6) that it "found no mechanical way of bridging
//! the gap" between local properties and global liveness — the creative
//! step. This module mechanizes the *finite-instance* version of that
//! bridge: given a program and a goal `p ↦ q`, it extracts from the
//! reachable state space an **ensures chain** — layers of states, each
//! absorbed into the goal by one weakly-fair command — and emits a
//! derivation tree using only the paper's rules (Transient, PSP,
//! Implication, Disjunction, Transitivity, plus invariant elimination on
//! the left of `↦`, the move the paper itself makes in Property 8).
//!
//! The output is *checked*, never trusted: every leaf is a `transient` /
//! `next` / `init` / `stable` premise that the model checker re-verifies
//! under the paper's inductive all-states semantics, and the tree is run
//! through the proof kernel. Layer predicates are exact state-set
//! descriptors (DNF over the program's variables), so inductive and
//! reachability-restricted readings of every premise coincide; the
//! reachable set itself enters the proof as an explicit invariant,
//! mirroring the paper's own use of (26) in Property 8.
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_mc::prelude::*;
//! use unity_mc::synth::{synthesize_leadsto, SynthConfig};
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
//! let p = Program::builder("count", Arc::new(v))
//!     .init(eq(var(x), int(0)))
//!     .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
//!     .build()
//!     .unwrap();
//! let synth = synthesize_leadsto(&p, &tt(), &eq(var(x), int(3)),
//!                                &SynthConfig::default(), &ScanConfig::default())
//!     .unwrap();
//! assert_eq!(synth.layers.len(), 3); // x=2, x=1, x=0 absorbed in turn
//! ```

use unity_core::expr::build::{and, and2, boolean, eq, int, not, or, or2, tt, var};
use unity_core::expr::Expr;
use unity_core::ident::Vocabulary;
use unity_core::program::Program;
use unity_core::proof::check::{check_concludes, CheckCtx, CheckStats};
use unity_core::proof::rules::Proof;
use unity_core::proof::{Discharger, Judgment, Scope};
use unity_core::properties::Property;
use unity_core::state::State;
use unity_core::value::Value;

use crate::parallel::ParConfig;
use crate::pred::PredIndex;
use crate::space::ScanConfig;
use crate::trace::McError;
use crate::transition::{TransitionSystem, Universe};
use crate::verifier::{EngineCache, Verifier};

/// Limits for the synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Refuse to synthesize if the reachable space exceeds this (the
    /// proof embeds DNFs over reachable states, so this bounds proof
    /// size).
    pub max_states: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { max_states: 4096 }
    }
}

/// Why synthesis failed.
#[derive(Debug)]
pub enum SynthError {
    /// Underlying model-checking failure (domain overflow etc.).
    Mc(McError),
    /// Reachable space exceeds [`SynthConfig::max_states`].
    TooLarge {
        /// Reachable state count.
        states: usize,
        /// Configured cap.
        max: usize,
    },
    /// The goal is not live: some reachable `p`-state is never absorbed
    /// by any ensures layer (the property is false or needs a
    /// non-ensures argument).
    NotLive {
        /// Reachable `p`-states left uncovered by the fixpoint.
        uncovered: Vec<State>,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Mc(e) => write!(f, "model checking failed: {e}"),
            SynthError::TooLarge { states, max } => {
                write!(f, "reachable space {states} exceeds synthesis cap {max}")
            }
            SynthError::NotLive { uncovered } => {
                write!(f, "{} p-state(s) are never absorbed", uncovered.len())
            }
        }
    }
}

impl std::error::Error for SynthError {}

impl From<McError> for SynthError {
    fn from(e: McError) -> Self {
        SynthError::Mc(e)
    }
}

/// One ensures layer of the synthesized chain.
#[derive(Debug, Clone)]
pub struct LayerInfo {
    /// Index (into `program.commands`) of the fair command that absorbs
    /// this layer.
    pub fair_command: usize,
    /// Number of states in the layer.
    pub states: usize,
}

/// A synthesized, kernel-checkable derivation of `p ↦ q`.
#[derive(Debug)]
pub struct SynthesizedLeadsto {
    /// The derivation tree (leaves: transient/next/init/stable premises).
    pub proof: Proof,
    /// The conclusion: `system ⊨ p ↦ q`.
    pub conclusion: Judgment,
    /// The ensures chain, outermost layer last.
    pub layers: Vec<LayerInfo>,
    /// Reachable states of the instance (size of the embedded invariant).
    pub reachable_states: usize,
}

/// The exact-state-set predicate of one state: `⋀ᵥ v = value`.
fn state_conj(vocab: &Vocabulary, s: &State) -> Expr {
    let conjuncts: Vec<Expr> = vocab
        .iter()
        .map(|(id, _)| match s.get(id) {
            Value::Int(n) => eq(var(id), int(n)),
            Value::Bool(b) => eq(var(id), boolean(b)),
        })
        .collect();
    and(conjuncts)
}

/// DNF of a set of state ids (sorted for determinism).
fn dnf(vocab: &Vocabulary, ts: &TransitionSystem, ids: &[u32]) -> Expr {
    let mut ids = ids.to_vec();
    ids.sort_unstable();
    or(ids
        .iter()
        .map(|&id| state_conj(vocab, &ts.state(id)))
        .collect())
}

/// Synthesizes an ensures chain and packages it as a derivation tree.
///
/// The synthesis itself explores the *reachable* universe; the resulting
/// proof discharges under the paper's all-states semantics because every
/// embedded predicate is an exact state-set descriptor and the reachable
/// set is introduced as an explicit invariant.
pub fn synthesize_leadsto(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &SynthConfig,
    scan: &ScanConfig,
) -> Result<SynthesizedLeadsto, SynthError> {
    let ts = TransitionSystem::build(program, Universe::Reachable, scan)?;
    let pred = PredIndex::build(&ts);
    synthesize_on(&ts, &pred, program, p, q, cfg, &scan.par)
}

/// [`synthesize_leadsto`] inside a [`Verifier`] session: the reachable
/// transition system comes from (and stays in) the session, so a spec
/// with several `leadsto` goals — or synthesis after checking — builds
/// it once.
pub fn synthesize_leadsto_in(
    session: &mut Verifier<'_>,
    p: &Expr,
    q: &Expr,
    cfg: &SynthConfig,
) -> Result<SynthesizedLeadsto, SynthError> {
    // Synthesis always explores the reachable universe, whatever the
    // session's `leadsto` universe is — the emitted proof re-introduces
    // reachability as an explicit invariant. The predecessor index is
    // the session's own (shared with the `leadsto` checker).
    let ts = session.transition_system(Universe::Reachable)?;
    let par = session.cfg().par.clone();
    let pred = session.cache.pred_index(&ts, Universe::Reachable, &par);
    synthesize_on(&ts, &pred, session.program(), p, q, cfg, &par)
}

/// The synthesis core over a prebuilt reachable transition system and
/// its predecessor index.
fn synthesize_on(
    ts: &TransitionSystem,
    pred: &PredIndex,
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &SynthConfig,
    par: &ParConfig,
) -> Result<SynthesizedLeadsto, SynthError> {
    if ts.len() > cfg.max_states {
        return Err(SynthError::TooLarge {
            states: ts.len(),
            max: cfg.max_states,
        });
    }
    let vocab = &program.vocab;
    let n = ts.len();

    let q_sat = ts.sat_vec_with(q, par);
    let p_sat = ts.sat_vec_with(p, par);
    let q_ids: Vec<u32> = (0..n as u32).filter(|&s| q_sat[s as usize]).collect();
    let p_ids: Vec<u32> = (0..n as u32).filter(|&s| p_sat[s as usize]).collect();
    let mut in_u = vec![false; n];
    for &id in &q_ids {
        in_u[id as usize] = true;
    }
    let covered = |in_u: &[bool]| p_ids.iter().all(|&s| in_u[s as usize]);

    // Backward ensures fixpoint, stopping as soon as every reachable
    // p-state is absorbed (keeps the emitted derivation minimal).
    let mut layers: Vec<(usize, Vec<u32>)> = Vec::new();
    while !covered(&in_u) {
        let mut progressed = false;
        for &d in &ts.fair {
            // Candidate: ¬U states whose d-successor is already in U.
            let mut in_x = vec![false; n];
            let mut any = false;
            for s in 0..n {
                if !in_u[s] && in_u[ts.succ_at(s, d) as usize] {
                    in_x[s] = true;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            // Refine: every command must keep X inside X ∪ U. Worklist
            // over the predecessor index: check each candidate once,
            // and when a state falls out of X re-examine only its
            // predecessors still in X — not the whole space again.
            let escapes = |s: usize, in_x: &[bool]| {
                (0..ts.n_commands).any(|c| {
                    let t = ts.succ_at(s, c) as usize;
                    !in_x[t] && !in_u[t]
                })
            };
            let mut queue: Vec<u32> = (0..n as u32).filter(|&s| in_x[s as usize]).collect();
            while let Some(s) = queue.pop() {
                if !in_x[s as usize] || !escapes(s as usize, &in_x) {
                    continue;
                }
                in_x[s as usize] = false;
                for &u in pred.row(s) {
                    if in_x[u as usize] {
                        queue.push(u);
                    }
                }
            }
            let xs: Vec<u32> = (0..n as u32).filter(|&s| in_x[s as usize]).collect();
            if xs.is_empty() {
                continue;
            }
            for &s in &xs {
                in_u[s as usize] = true;
            }
            layers.push((d, xs));
            progressed = true;
            if covered(&in_u) {
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Every reachable p-state must be covered.
    let uncovered: Vec<State> = (0..n)
        .filter(|&s| p_sat[s] && !in_u[s])
        .map(|s| ts.state(s as u32))
        .collect();
    if !uncovered.is_empty() {
        return Err(SynthError::NotLive { uncovered });
    }

    // ---- assemble the derivation ----
    // Canonical U-expressions: u_expr[0] = dnf(q ∩ reachable);
    // u_expr[k] = or([u_expr[k-1], x_k])  (NAry shape, matching the
    // Disjunction rule's computed conclusion).
    let u0 = dnf(vocab, ts, &q_ids);
    let mut u_exprs: Vec<Expr> = vec![u0.clone()];
    let mut x_exprs: Vec<Expr> = Vec::new();
    for (_, xs) in &layers {
        let x = dnf(vocab, ts, xs);
        let prev = u_exprs.last().expect("u_exprs starts non-empty").clone();
        u_exprs.push(or(vec![prev, x.clone()]));
        x_exprs.push(x);
    }

    // d_proof[j] concludes `u_expr[j] ↦ u0`.
    let mut d_proof: Proof = Proof::LtImplication {
        p: u0.clone(),
        q: u0.clone(),
    };
    for (k, (cmd, _)) in layers.iter().enumerate() {
        let x = &x_exprs[k];
        let u_prev = &u_exprs[k];
        // ensures(x, u_prev): transient(x ∧ ¬u_prev) + (x ∧ ¬u_prev) next (x ∨ u_prev).
        let guard = and2(x.clone(), not(u_prev.clone()));
        let trans = Proof::Premise(Judgment::system(Property::Transient(guard.clone())));
        let _ = cmd; // the witnessing command index is recorded in LayerInfo
        let lt_true = Proof::LtTransient {
            sub: Box::new(trans),
        };
        let next = Proof::Premise(Judgment::system(Property::Next(
            guard,
            or2(x.clone(), u_prev.clone()),
        )));
        let psp = Proof::LtPsp {
            lt: Box::new(lt_true),
            next: Box::new(next),
        };
        // Mono to the clean `x ↦ u_prev` shape.
        let e_k = Proof::LtMono {
            sub: Box::new(psp),
            p_new: x.clone(),
            q_new: u_prev.clone(),
        };
        // x_k ↦ u0 by transitivity through u_prev.
        let t_k = Proof::LtTransitivity {
            first: Box::new(e_k),
            second: Box::new(d_proof.clone()),
        };
        // u_expr[k+1] ↦ u0 by disjunction.
        d_proof = Proof::LtDisjunction {
            subs: vec![d_proof, t_k],
        };
    }

    // Invariant: the reachable set itself.
    let all_ids: Vec<u32> = (0..n as u32).collect();
    let inv_expr = dnf(vocab, ts, &all_ids);
    let inv_proof = Proof::InvariantIntro {
        init: Box::new(Proof::Premise(Judgment::system(Property::Init(
            inv_expr.clone(),
        )))),
        stable: Box::new(Proof::Premise(Judgment::system(Property::Stable(
            inv_expr.clone(),
        )))),
    };
    // (p ∧ I) ↦ q by monotonicity from u_expr[K] ↦ u0.
    let mono = Proof::LtMono {
        sub: Box::new(d_proof),
        p_new: and2(p.clone(), inv_expr),
        q_new: q.clone(),
    };
    let proof = Proof::LtInvariantLhs {
        lt: Box::new(mono),
        inv: Box::new(inv_proof),
    };
    let conclusion = Judgment::system(Property::LeadsTo(p.clone(), q.clone()));

    Ok(SynthesizedLeadsto {
        proof,
        conclusion,
        layers: layers
            .iter()
            .map(|(d, xs)| LayerInfo {
                fair_command: *d,
                states: xs.len(),
            })
            .collect(),
        reachable_states: n,
    })
}

/// A [`Discharger`] over a single program (system scope only), backed by
/// the model checker's inductive semantics. A verification session: the
/// per-engine artifacts are memoized across premises (a synthesized
/// derivation discharges dozens against one program).
pub struct ProgramDischarger<'a> {
    /// The program all judgments refer to.
    pub program: &'a Program,
    /// Universe for `leadsto` premises (safety premises are always
    /// checked inductively over all states).
    pub universe: Universe,
    /// Scan configuration. Set it **before** the first discharge:
    /// artifacts already memoized by earlier premises were built under
    /// the configuration in effect at that time and are not rebuilt on
    /// a change.
    pub cfg: ScanConfig,
    /// Obligations discharged so far.
    pub discharged: usize,
    /// Memoized engine artifacts shared by every premise.
    cache: EngineCache,
}

impl<'a> ProgramDischarger<'a> {
    /// Builds a discharger with default configuration.
    pub fn new(program: &'a Program) -> Self {
        ProgramDischarger {
            program,
            universe: Universe::Reachable,
            cfg: ScanConfig::default(),
            discharged: 0,
            cache: EngineCache::default(),
        }
    }
}

impl Discharger for ProgramDischarger<'_> {
    fn discharge(&mut self, j: &Judgment) -> Result<(), unity_core::error::CoreError> {
        if j.scope != Scope::System {
            return Err(unity_core::error::CoreError::Discharge {
                obligation: format!("{} judgment", j.scope),
                reason: "ProgramDischarger handles system-scope judgments only".into(),
            });
        }
        crate::check::check_property_in(
            self.program,
            &j.prop,
            self.universe,
            &self.cfg,
            &mut self.cache,
        )
        .map_err(|e| unity_core::error::CoreError::Discharge {
            obligation: format!("{} premise", j.prop.kind()),
            reason: e.to_string(),
        })?;
        self.discharged += 1;
        Ok(())
    }

    fn valid(&mut self, p: &Expr) -> Result<(), unity_core::error::CoreError> {
        crate::space::check_valid_in(self.program, p, &self.cfg, &mut self.cache).map_err(|e| {
            unity_core::error::CoreError::Discharge {
                obligation: "validity side condition".into(),
                reason: e.to_string(),
            }
        })?;
        self.discharged += 1;
        Ok(())
    }

    fn equivalent(&mut self, a: &Expr, b: &Expr) -> Result<(), unity_core::error::CoreError> {
        crate::space::check_equivalent_in(self.program, a, b, &self.cfg, &mut self.cache).map_err(
            |e| unity_core::error::CoreError::Discharge {
                obligation: "equivalence side condition".into(),
                reason: e.to_string(),
            },
        )?;
        self.discharged += 1;
        Ok(())
    }
}

/// Synthesizes `p ↦ q` *and* re-checks the derivation in the proof
/// kernel with every premise and side condition discharged by the model
/// checker. This is the end-to-end "mechanical bridge": nothing in the
/// returned stats was assumed.
pub fn synthesize_and_check(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &SynthConfig,
    scan: &ScanConfig,
) -> Result<(SynthesizedLeadsto, CheckStats), SynthError> {
    let synth = synthesize_leadsto(program, p, q, cfg, scan)?;
    kernel_check(program, scan, synth)
}

/// [`synthesize_and_check`] inside a [`Verifier`] session — the
/// synthesis reuses the session's reachable transition system (the
/// kernel re-check keeps its own premise session).
pub fn synthesize_and_check_in(
    session: &mut Verifier<'_>,
    p: &Expr,
    q: &Expr,
    cfg: &SynthConfig,
) -> Result<(SynthesizedLeadsto, CheckStats), SynthError> {
    let synth = synthesize_leadsto_in(session, p, q, cfg)?;
    let scan = session.cfg().clone();
    kernel_check(session.program(), &scan, synth)
}

fn kernel_check(
    program: &Program,
    scan: &ScanConfig,
    synth: SynthesizedLeadsto,
) -> Result<(SynthesizedLeadsto, CheckStats), SynthError> {
    let mut discharger = ProgramDischarger::new(program);
    discharger.cfg = scan.clone();
    let mut ctx = CheckCtx::new(&mut discharger).with_vocab(&program.vocab);
    let stats = check_concludes(&synth.proof, &synth.conclusion, &mut ctx)
        .map_err(|e| SynthError::Mc(McError::Core(e)))?;
    Ok((synth, stats))
}

/// Convenience: synthesize with `p = true` (the shape of the paper's
/// liveness specification (18)).
pub fn synthesize_always_leadsto(
    program: &Program,
    q: &Expr,
    cfg: &SynthConfig,
    scan: &ScanConfig,
) -> Result<(SynthesizedLeadsto, CheckStats), SynthError> {
    synthesize_and_check(program, &tt(), q, cfg, scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fair::check_leadsto;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::{add, lt as blt};
    use unity_core::ident::Vocabulary as V;

    fn counter(k: i64) -> Program {
        let mut v = V::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("count", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", blt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn synthesizes_counter_liveness() {
        let p = counter(3);
        let x = unity_core::ident::VarId(0);
        let goal = eq(var(x), int(3));
        let (synth, stats) =
            synthesize_always_leadsto(&p, &goal, &SynthConfig::default(), &ScanConfig::default())
                .unwrap();
        assert_eq!(synth.layers.len(), 3, "one layer per distance-to-goal");
        assert_eq!(synth.reachable_states, 4);
        assert!(stats.premises >= 2 * synth.layers.len() + 2);
        // Independent cross-check by the exact fair checker.
        check_leadsto(
            &p,
            &tt(),
            &goal,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn refuses_dead_goals() {
        let p = counter(2);
        let x = unity_core::ident::VarId(0);
        // x = 5 is outside the domain: unreachable forever.
        let goal = eq(var(x), int(5));
        let err = synthesize_leadsto(
            &p,
            &tt(),
            &goal,
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap_err();
        match err {
            SynthError::NotLive { uncovered } => assert!(!uncovered.is_empty()),
            other => panic!("expected NotLive, got {other}"),
        }
    }

    #[test]
    fn detects_unfair_stalls() {
        // The increment is *not* fair: nothing forces progress.
        let mut v = V::new();
        let x = v.declare("x", Domain::int_range(0, 2).unwrap()).unwrap();
        let p = Program::builder("lazy", Arc::new(v))
            .init(eq(var(x), int(0)))
            .command("inc", blt(var(x), int(2)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let err = synthesize_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(2)),
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::NotLive { .. }));
    }

    #[test]
    fn respects_state_cap() {
        let p = counter(3);
        let err = synthesize_leadsto(
            &p,
            &tt(),
            &eq(var(unity_core::ident::VarId(0)), int(3)),
            &SynthConfig { max_states: 2 },
            &ScanConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::TooLarge { states: 4, max: 2 }));
    }

    #[test]
    fn two_variable_race_synthesizes() {
        // Two independent fair counters; goal needs both at max: the
        // chain must interleave both fair commands.
        let mut v = V::new();
        let x = v.declare("x", Domain::int_range(0, 1).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 1).unwrap()).unwrap();
        let p = Program::builder("pair", Arc::new(v))
            .init(and2(eq(var(x), int(0)), eq(var(y), int(0))))
            .fair_command("ix", blt(var(x), int(1)), vec![(x, add(var(x), int(1)))])
            .fair_command("iy", blt(var(y), int(1)), vec![(y, add(var(y), int(1)))])
            .build()
            .unwrap();
        let goal = and2(eq(var(x), int(1)), eq(var(y), int(1)));
        let (synth, _) = synthesize_and_check(
            &p,
            &tt(),
            &goal,
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap();
        let used: std::collections::BTreeSet<usize> =
            synth.layers.iter().map(|l| l.fair_command).collect();
        assert_eq!(used.len(), 2, "both fair commands must appear");
    }

    #[test]
    fn zero_layer_chain_when_p_implies_q() {
        // p ⊆ q reachably: no ensures layer is needed; the derivation is
        // pure implication + invariant elimination.
        let p = counter(2);
        let x = unity_core::ident::VarId(0);
        let (synth, stats) = synthesize_and_check(
            &p,
            &eq(var(x), int(2)),
            &unity_core::expr::build::ge(var(x), int(2)),
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap();
        assert!(synth.layers.is_empty());
        assert!(stats.rules >= 4);
    }

    #[test]
    fn trivial_goal_true_synthesizes_without_layers() {
        let p = counter(1);
        let (synth, _) = synthesize_and_check(
            &p,
            &tt(),
            &tt(),
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap();
        assert!(synth.layers.is_empty());
    }

    #[test]
    fn conditional_goal_from_p_subset() {
        // p restricts the start: only x ≥ 1 states — still provable.
        let p = counter(2);
        let x = unity_core::ident::VarId(0);
        let (synth, _) = synthesize_and_check(
            &p,
            &unity_core::expr::build::ge(var(x), int(1)),
            &eq(var(x), int(2)),
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .unwrap();
        assert!(!synth.layers.is_empty());
    }
}
