//! # unity-mc
//!
//! Model checker for `unity-core` programs, with three interchangeable
//! engines (reference tree-walk, compiled bytecode over packed states,
//! and the symbolic BDD backend — see [`space::Engine`]).
//!
//! * Safety properties (`init`, `next`, `stable`, `invariant`,
//!   `unchanged`, `transient`) are decided with the paper's **inductive**
//!   semantics: quantification over *all* type-consistent states (no
//!   substitution axiom, no reachability strengthening). Both operational
//!   (execute the command) and symbolic (`wp` + validity scan) deciders are
//!   provided and must agree.
//! * `p ↦ q` is decided **exactly under weak fairness** by SCC analysis of
//!   the `¬q`-restricted transition graph (see [`fair`]), with lasso
//!   counterexamples. The default engine is a worklist over a CSR
//!   predecessor index ([`pred`]) with pooled Tarjan scratch — each
//!   check scales with the `¬q` region, not the whole table.
//! * Scans are chunk-parallel over the flat state index
//!   ([`parallel`]), using `crossbeam` scoped threads with atomic early
//!   exit. Reachable-set construction itself is parallel too: a sharded
//!   work-stealing explorer partitions packed words by hash, routes
//!   cross-shard successors through per-shard mailboxes, and stitches
//!   the shard-local results into the usual flat tables (see
//!   [`transition::TransitionSystem::build`] and `ParConfig::threads`;
//!   one thread keeps the exact sequential reference path).
//! * Under [`space::Engine::Symbolic`] the safety checks route through
//!   `unity-symbolic` ([`symbolic`]): state sets as BDDs over the packed
//!   bit layout, with identical verdicts and replayable counterexamples
//!   — the engine whose cost does not grow with the state count.
//! * [`check::McDischarger`] plugs the checker into the `unity-core` proof
//!   kernel as the semantic back-end for premises and side conditions.
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_mc::prelude::*;
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
//! let p = Program::builder("count", Arc::new(v))
//!     .init(eq(var(x), int(0)))
//!     .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
//!     .build()
//!     .unwrap();
//! // Safety: x never exceeds 3 (inductive).
//! check_invariant(&p, &le(var(x), int(3)), &ScanConfig::default()).unwrap();
//! // Liveness under weak fairness: x reaches 3.
//! check_leadsto(&p, &tt(), &eq(var(x), int(3)), Universe::Reachable,
//!               &ScanConfig::default()).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod bmc;
pub mod check;
pub mod compiled;
pub mod compositional;
pub mod fair;
pub mod hasher;
pub mod json;
pub mod mutate;
pub mod parallel;
pub mod pred;
pub mod report;
pub mod scc;
pub(crate) mod shard;
pub mod space;
pub mod spec;
pub mod stats;
pub mod symbolic;
pub mod symmetry;
pub mod synth;
pub mod trace;
pub mod transition;
pub mod verifier;
mod witness;

/// Commonly used items.
pub mod prelude {
    pub use crate::bmc::{
        bounded_invariant, bounded_invariant_from, random_walk_invariant,
        random_walk_invariant_from, BmcConfig, BoundedVerdict, WalkStats,
    };
    pub use crate::check::{
        check_init, check_invariant, check_invariant_reachable, check_next, check_next_wp,
        check_property, check_stable, check_transient, check_unchanged, McDischarger,
    };
    pub use crate::compiled::{scan_packed, try_layout, CompiledProgram};
    pub use crate::compositional::{CompositionalStats, CompositionalVerifier};
    pub use crate::fair::{
        check_leadsto, check_leadsto_on, check_leadsto_on_reference, LeadsToEngine, LeadsToReport,
    };
    pub use crate::mutate::{
        mutants, mutation_audit, mutation_audit_checks, mutation_audit_in, same_behavior,
        AuditError, Mutant, MutantOutcome, MutationKind, MutationReport, Spec,
    };
    pub use crate::parallel::{validate_build_threads_env, ParConfig};
    pub use crate::pred::PredIndex;
    pub use crate::report::{CheckReport, Report, SimCheck};
    pub use crate::space::{check_equivalent, check_valid, find_satisfying, Engine, ScanConfig};
    pub use crate::stats::{BuildStats, McStats};
    pub use crate::symbolic::{reachable_count, reachable_count_with};
    pub use crate::symmetry::{
        check_invariant_symmetric, check_invariant_symmetric_prevalidated, QuotientStats,
        SymmetrySpec, SymmetryViolation,
    };
    pub use crate::synth::{
        synthesize_always_leadsto, synthesize_and_check, synthesize_and_check_in,
        synthesize_leadsto, synthesize_leadsto_in, ProgramDischarger, SynthConfig, SynthError,
        SynthesizedLeadsto,
    };
    pub use crate::trace::{Counterexample, McError};
    pub use crate::transition::{TransitionSystem, Universe};
    pub use crate::verifier::{
        DischargeInfo, NamedCheck, Outcome, SessionArtifacts, SessionStatus, Verdict, VerdictStats,
        Verifier,
    };
    pub use unity_symbolic::{OrderMode, SymStats, SymbolicOptions, SymbolicProgram};
}
