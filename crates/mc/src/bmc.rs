//! Bounded and randomized refutation for instances beyond exact checking.
//!
//! Exact checking ([`crate::check`], [`crate::fair`]) is limited by the
//! state-space bound in [`crate::space::ScanConfig`]. For larger instances this module
//! provides two *incomplete but sound-for-refutation* modes:
//!
//! * [`bounded_invariant`] — breadth-first exploration from the initial
//!   states up to a depth/state budget. If the frontier empties before the
//!   budget is hit the result is a **complete** proof of the reachable
//!   invariant (equivalent to [`crate::check::check_invariant_reachable`]);
//!   otherwise it is a bounded guarantee up to the reported depth.
//! * [`random_walk_invariant`] — seeded random walks. Any violation found
//!   is real (a concrete path witnesses it); absence of violations is
//!   evidence, not proof.
//!
//! Both return a path counterexample ([`Counterexample::Reach`]) on
//! violation, so a refutation can be replayed step by step.
//!
//! These modes check *reachable* semantics by construction (they follow
//! transitions from initial states). The paper's inductive semantics is
//! stronger; a bounded run can therefore accept an invariant that the
//! inductive checker rejects — the same gap as
//! `check_invariant` vs `check_invariant_reachable`, which the test suite
//! demonstrates.
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_mc::prelude::*;
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 9).unwrap()).unwrap();
//! let p = Program::builder("count", Arc::new(v))
//!     .init(eq(var(x), int(0)))
//!     .fair_command("inc", lt(var(x), int(9)), vec![(x, add(var(x), int(1)))])
//!     .build()
//!     .unwrap();
//! // Exhaustive BFS: the frontier drains, so this is a complete proof.
//! let verdict = bounded_invariant(&p, &le(var(x), int(9)), &BmcConfig::default()).unwrap();
//! assert!(verdict.is_complete());
//! // A violated predicate comes back as the *shortest* violating path.
//! let err = bounded_invariant(&p, &lt(var(x), int(3)), &BmcConfig::default()).unwrap_err();
//! match err {
//!     McError::Refuted { cex: Counterexample::Reach { path }, .. } => {
//!         assert_eq!(path.len(), 4); // x = 0, 1, 2, 3
//!     }
//!     other => panic!("{other}"),
//! }
//! ```

use unity_core::expr::compile::Scratch;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::pretty::Render;
use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;

use crate::compiled::CompiledProgram;
use crate::hasher::FxHashMap;
use crate::space::ScanConfig;
use crate::trace::{Counterexample, McError};

/// Budget and seed configuration for bounded exploration.
#[derive(Debug, Clone)]
pub struct BmcConfig {
    /// Maximum BFS depth (number of command applications from an initial
    /// state). `u32::MAX` effectively means "until the state budget".
    pub max_depth: u32,
    /// Maximum number of distinct states to intern before giving up.
    pub max_states: usize,
    /// PRNG seed for random walks (deterministic given the seed).
    pub seed: u64,
    /// Number of independent random walks.
    pub walks: u32,
    /// Steps per walk.
    pub walk_len: u32,
    /// Use the compiled packed-state fast path when the vocabulary
    /// allows it (set false to pin the tree-walking reference engine;
    /// both explore in the same order and must agree — see the
    /// differential suite).
    pub compiled: bool,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            max_depth: u32::MAX,
            max_states: 1 << 20,
            seed: 0x5DEECE66D,
            walks: 64,
            walk_len: 4096,
            compiled: true,
        }
    }
}

/// Outcome of a bounded exploration that found no violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedVerdict {
    /// The frontier emptied: every reachable state was visited, so the
    /// invariant holds outright (over the reachable universe).
    Complete {
        /// Number of distinct reachable states.
        explored: usize,
        /// Depth of the deepest state.
        depth: u32,
    },
    /// The budget ran out first: no violation up to this depth/state count.
    BudgetExhausted {
        /// Number of distinct states interned before stopping.
        explored: usize,
        /// Last fully processed BFS depth.
        depth: u32,
    },
}

impl BoundedVerdict {
    /// Whether the exploration covered the entire reachable space.
    pub fn is_complete(&self) -> bool {
        matches!(self, BoundedVerdict::Complete { .. })
    }
}

/// Statistics from a clean random-walk campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStats {
    /// Total steps taken across all walks.
    pub steps: u64,
    /// Number of walks performed.
    pub walks: u32,
    /// Distinct states seen (exact, via interning).
    pub distinct_states: usize,
}

/// SplitMix64: tiny deterministic PRNG, adequate for walk scheduling.
/// (Kept local so the checker has no RNG dependency.)
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0) by rejection-free multiply-shift.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

fn refuted(p: &Expr, vocab: &unity_core::ident::Vocabulary, path: Vec<State>) -> McError {
    McError::Refuted {
        property: format!("invariant {} (bounded)", Render::new(p, vocab)),
        cex: Counterexample::Reach { path },
    }
}

/// Reconstructs the path from an initial state to `target` using BFS
/// parent pointers.
fn path_to(parents: &[(u32, u32)], states: &[State], target: u32) -> Vec<State> {
    let mut rev = vec![states[target as usize].clone()];
    let mut cur = target;
    while parents[cur as usize].0 != cur {
        cur = parents[cur as usize].0;
        rev.push(states[cur as usize].clone());
    }
    rev.reverse();
    rev
}

/// Bounded BFS invariant check from the program's own initial states.
///
/// Initial states are enumerated from the full domain product, so this
/// convenience wrapper is only usable when the vocabulary is enumerable;
/// for large systems use [`bounded_invariant_from`] with explicitly
/// constructed starting states.
pub fn bounded_invariant(
    program: &Program,
    p: &Expr,
    cfg: &BmcConfig,
) -> Result<BoundedVerdict, McError> {
    let starts = program.initial_states();
    bounded_invariant_from(program, &starts, p, cfg)
}

/// Bounded BFS invariant check from the given starting states.
///
/// Explores successors of `starts` under every explicit command, breadth
/// first, up to `cfg.max_depth` levels or `cfg.max_states` distinct
/// states. Returns a path counterexample on violation.
pub fn bounded_invariant_from(
    program: &Program,
    starts: &[State],
    p: &Expr,
    cfg: &BmcConfig,
) -> Result<BoundedVerdict, McError> {
    p.check_pred(&program.vocab)?;
    if cfg.compiled {
        if let Some(cp) = CompiledProgram::try_compile(program, &ScanConfig::default()) {
            if let Ok(cpred) = unity_core::expr::compile::CompiledExpr::compile(p, &cp.layout) {
                return bounded_invariant_packed(program, starts, p, &cp, &cpred, cfg);
            }
        }
    }
    let vocab = &program.vocab;
    let mut index: FxHashMap<State, u32> = FxHashMap::default();
    let mut states: Vec<State> = Vec::new();
    // parent pointers: (parent id, depth); roots point at themselves.
    let mut parents: Vec<(u32, u32)> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();

    for s in starts {
        if index.contains_key(s) {
            continue;
        }
        let id = states.len() as u32;
        index.insert(s.clone(), id);
        states.push(s.clone());
        parents.push((id, 0));
        if !eval_bool(p, s) {
            return Err(refuted(p, vocab, path_to(&parents, &states, id)));
        }
        frontier.push(id);
    }

    let mut depth = 0u32;
    while !frontier.is_empty() {
        if depth >= cfg.max_depth {
            return Ok(BoundedVerdict::BudgetExhausted {
                explored: states.len(),
                depth,
            });
        }
        let mut next = Vec::new();
        for &id in &frontier {
            let state = states[id as usize].clone();
            for c in &program.commands {
                let succ = c.step(&state, vocab);
                if index.contains_key(&succ) {
                    continue;
                }
                let nid = states.len() as u32;
                index.insert(succ.clone(), nid);
                states.push(succ.clone());
                parents.push((id, depth + 1));
                if !eval_bool(p, &succ) {
                    return Err(refuted(p, vocab, path_to(&parents, &states, nid)));
                }
                if states.len() >= cfg.max_states {
                    return Ok(BoundedVerdict::BudgetExhausted {
                        explored: states.len(),
                        depth,
                    });
                }
                next.push(nid);
            }
        }
        frontier = next;
        depth += 1;
    }
    Ok(BoundedVerdict::Complete {
        explored: states.len(),
        depth: depth.saturating_sub(1),
    })
}

/// The packed BFS: identical exploration order to the reference loop
/// (so verdicts, counts and shortest-path counterexamples agree
/// exactly), but states intern as `u64` words and successors come from
/// compiled command steps — the dominant cost of the reference path,
/// hashing `Box<[Value]>` keys and cloning states, disappears.
fn bounded_invariant_packed(
    program: &Program,
    starts: &[State],
    p: &Expr,
    cp: &CompiledProgram,
    cpred: &unity_core::expr::compile::CompiledExpr,
    cfg: &BmcConfig,
) -> Result<BoundedVerdict, McError> {
    let vocab = &program.vocab;
    let layout = &cp.layout;
    let mut scratch = Scratch::new();
    let mut index: FxHashMap<u64, u32> = FxHashMap::default();
    let mut words: Vec<u64> = Vec::new();
    // parent pointers: (parent id, depth); roots point at themselves.
    let mut parents: Vec<(u32, u32)> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();

    let decode_path = |parents: &[(u32, u32)], words: &[u64], target: u32| -> Vec<State> {
        let mut rev = vec![layout.unpack(words[target as usize], vocab)];
        let mut cur = target;
        while parents[cur as usize].0 != cur {
            cur = parents[cur as usize].0;
            rev.push(layout.unpack(words[cur as usize], vocab));
        }
        rev.reverse();
        rev
    };

    for s in starts {
        let w = layout.pack(s);
        if index.contains_key(&w) {
            continue;
        }
        let id = words.len() as u32;
        index.insert(w, id);
        words.push(w);
        parents.push((id, 0));
        if !cpred.eval_packed_bool(w, &mut scratch) {
            return Err(refuted(p, vocab, decode_path(&parents, &words, id)));
        }
        frontier.push(id);
    }

    let mut depth = 0u32;
    while !frontier.is_empty() {
        if depth >= cfg.max_depth {
            return Ok(BoundedVerdict::BudgetExhausted {
                explored: words.len(),
                depth,
            });
        }
        let mut next = Vec::new();
        for &id in &frontier {
            let w = words[id as usize];
            for c in &cp.commands {
                let succ = c.step_packed(w, layout, &mut scratch);
                if index.contains_key(&succ) {
                    continue;
                }
                let nid = words.len() as u32;
                index.insert(succ, nid);
                words.push(succ);
                parents.push((id, depth + 1));
                if !cpred.eval_packed_bool(succ, &mut scratch) {
                    return Err(refuted(p, vocab, decode_path(&parents, &words, nid)));
                }
                if words.len() >= cfg.max_states {
                    return Ok(BoundedVerdict::BudgetExhausted {
                        explored: words.len(),
                        depth,
                    });
                }
                next.push(nid);
            }
        }
        frontier = next;
        depth += 1;
    }
    Ok(BoundedVerdict::Complete {
        explored: words.len(),
        depth: depth.saturating_sub(1),
    })
}

/// Random-walk invariant refutation from the program's own initial states.
///
/// Runs `cfg.walks` independent walks of up to `cfg.walk_len` steps each,
/// picking a uniformly random explicit command at every step. Sound for
/// refutation: a returned counterexample is a genuine path. A clean run
/// returns coverage statistics only.
pub fn random_walk_invariant(
    program: &Program,
    p: &Expr,
    cfg: &BmcConfig,
) -> Result<WalkStats, McError> {
    let starts = program.initial_states();
    random_walk_invariant_from(program, &starts, p, cfg)
}

/// Random-walk invariant refutation from the given starting states.
pub fn random_walk_invariant_from(
    program: &Program,
    starts: &[State],
    p: &Expr,
    cfg: &BmcConfig,
) -> Result<WalkStats, McError> {
    p.check_pred(&program.vocab)?;
    let vocab = &program.vocab;
    if starts.is_empty() || program.commands.is_empty() {
        // Nothing to walk: check the starts themselves and stop.
        for s in starts {
            if !eval_bool(p, s) {
                return Err(refuted(p, vocab, vec![s.clone()]));
            }
        }
        return Ok(WalkStats {
            steps: 0,
            walks: 0,
            distinct_states: starts.len(),
        });
    }
    let mut rng = SplitMix64::new(cfg.seed);
    // Packed walks: states are `u64` words, the path decodes only on a
    // violation. The RNG stream is consumed identically to the reference
    // loop, so both paths walk the same trajectories.
    let compiled_program = if cfg.compiled {
        CompiledProgram::try_compile(program, &ScanConfig::default())
    } else {
        None
    };
    if let Some(cp) = &compiled_program {
        if let Ok(cpred) = unity_core::expr::compile::CompiledExpr::compile(p, &cp.layout) {
            let layout = &cp.layout;
            let mut scratch = Scratch::new();
            let start_words: Vec<u64> = starts.iter().map(|s| layout.pack(s)).collect();
            let mut seen: FxHashMap<u64, ()> = FxHashMap::default();
            let mut steps = 0u64;
            for _ in 0..cfg.walks {
                let mut w = start_words[rng.below(start_words.len())];
                let mut path = vec![w];
                if !cpred.eval_packed_bool(w, &mut scratch) {
                    let states = path.iter().map(|&x| layout.unpack(x, vocab)).collect();
                    return Err(refuted(p, vocab, states));
                }
                seen.entry(w).or_insert(());
                for _ in 0..cfg.walk_len {
                    let c = &cp.commands[rng.below(cp.commands.len())];
                    w = c.step_packed(w, layout, &mut scratch);
                    steps += 1;
                    seen.entry(w).or_insert(());
                    path.push(w);
                    if !cpred.eval_packed_bool(w, &mut scratch) {
                        let states = path.iter().map(|&x| layout.unpack(x, vocab)).collect();
                        return Err(refuted(p, vocab, states));
                    }
                }
            }
            return Ok(WalkStats {
                steps,
                walks: cfg.walks,
                distinct_states: seen.len(),
            });
        }
    }
    let mut seen: FxHashMap<State, ()> = FxHashMap::default();
    let mut steps = 0u64;
    for _ in 0..cfg.walks {
        let mut state = starts[rng.below(starts.len())].clone();
        let mut path = vec![state.clone()];
        if !eval_bool(p, &state) {
            return Err(refuted(p, vocab, path));
        }
        seen.entry(state.clone()).or_insert(());
        for _ in 0..cfg.walk_len {
            let c = &program.commands[rng.below(program.commands.len())];
            state = c.step(&state, vocab);
            steps += 1;
            seen.entry(state.clone()).or_insert(());
            path.push(state.clone());
            if !eval_bool(p, &state) {
                return Err(refuted(p, vocab, path));
            }
        }
    }
    Ok(WalkStats {
        steps,
        walks: cfg.walks,
        distinct_states: seen.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    /// `x` counts 0..=k; invariant `x <= k` holds, `x < k` is violated at
    /// depth k.
    fn counter(k: i64) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn bounded_complete_on_safe_counter() {
        let p = counter(8);
        let x = p.vocab.lookup("x").unwrap();
        let v = bounded_invariant(&p, &le(var(x), int(8)), &BmcConfig::default()).unwrap();
        assert_eq!(
            v,
            BoundedVerdict::Complete {
                explored: 9,
                depth: 8
            }
        );
        assert!(v.is_complete());
    }

    #[test]
    fn bounded_finds_violation_with_shortest_path() {
        let p = counter(8);
        let x = p.vocab.lookup("x").unwrap();
        let err = bounded_invariant(&p, &lt(var(x), int(5)), &BmcConfig::default()).unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::Reach { path },
                ..
            } => {
                // BFS ⇒ shortest path: 0,1,2,3,4,5.
                assert_eq!(path.len(), 6);
                assert_eq!(path[0].get(x), unity_core::value::Value::Int(0));
                assert_eq!(path[5].get(x), unity_core::value::Value::Int(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounded_respects_depth_budget() {
        let p = counter(50);
        let x = p.vocab.lookup("x").unwrap();
        let cfg = BmcConfig {
            max_depth: 3,
            ..Default::default()
        };
        // The violation at depth 10 is beyond the budget: verdict is
        // BudgetExhausted, not a refutation — bounded soundness only.
        let v = bounded_invariant(&p, &lt(var(x), int(10)), &cfg).unwrap();
        assert_eq!(
            v,
            BoundedVerdict::BudgetExhausted {
                explored: 4,
                depth: 3
            }
        );
    }

    #[test]
    fn bounded_respects_state_budget() {
        let p = counter(50);
        let x = p.vocab.lookup("x").unwrap();
        let cfg = BmcConfig {
            max_states: 5,
            ..Default::default()
        };
        let v = bounded_invariant(&p, &le(var(x), int(50)), &cfg).unwrap();
        assert!(matches!(v, BoundedVerdict::BudgetExhausted { explored, .. } if explored == 5));
    }

    #[test]
    fn bounded_checks_initial_states() {
        let p = counter(3);
        let x = p.vocab.lookup("x").unwrap();
        let err = bounded_invariant(&p, &gt(var(x), int(0)), &BmcConfig::default()).unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::Reach { path },
                ..
            } => assert_eq!(path.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_finds_violation() {
        let p = counter(8);
        let x = p.vocab.lookup("x").unwrap();
        let err =
            random_walk_invariant(&p, &lt(var(x), int(5)), &BmcConfig::default()).unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::Reach { path },
                ..
            } => {
                // The path is a real execution: every adjacent pair is one
                // command step, and only the final state violates.
                assert!(path.len() >= 6);
                assert_eq!(
                    path.last().unwrap().get(x),
                    unity_core::value::Value::Int(5)
                );
                for w in path.windows(2) {
                    let stepped: Vec<State> =
                        p.commands.iter().map(|c| c.step(&w[0], &p.vocab)).collect();
                    assert!(stepped.contains(&w[1]));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_clean_on_safe_property_reports_coverage() {
        let p = counter(8);
        let x = p.vocab.lookup("x").unwrap();
        let stats = random_walk_invariant(&p, &le(var(x), int(8)), &BmcConfig::default()).unwrap();
        assert_eq!(stats.distinct_states, 9, "walks saturate the chain");
        assert!(stats.steps > 0);
    }

    #[test]
    fn walk_is_deterministic_in_seed() {
        let p = counter(8);
        let x = p.vocab.lookup("x").unwrap();
        let cfg = BmcConfig {
            walks: 3,
            walk_len: 11,
            ..Default::default()
        };
        let a = random_walk_invariant(&p, &le(var(x), int(8)), &cfg).unwrap();
        let b = random_walk_invariant(&p, &le(var(x), int(8)), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut r = SplitMix64::new(42);
        for n in 1..20usize {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn bounded_agrees_with_exact_reachable_checker() {
        // Cross-validation against check_invariant_reachable on a
        // two-variable system with a non-trivial reachable set.
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 3).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("pair", Arc::new(v))
            .init(and2(eq(var(a), int(0)), eq(var(b), int(0))))
            .fair_command("ia", lt(var(a), int(3)), vec![(a, add(var(a), int(1)))])
            .fair_command("ib", lt(var(b), var(a)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap();
        // b <= a is invariant over reachable states.
        let prop = le(var(b), var(a));
        let bounded = bounded_invariant(&p, &prop, &BmcConfig::default()).unwrap();
        assert!(bounded.is_complete());
        crate::check::check_invariant_reachable(&p, &prop, &crate::space::ScanConfig::default())
            .unwrap();
        // And both reject a falsifiable one, bounded with a real path.
        let bad = lt(add(var(a), var(b)), int(4));
        assert!(bounded_invariant(&p, &bad, &BmcConfig::default()).is_err());
        assert!(crate::check::check_invariant_reachable(
            &p,
            &bad,
            &crate::space::ScanConfig::default()
        )
        .is_err());
    }
}
