//! Chunk-parallel search over flat index ranges.
//!
//! Validity scans, `next` checks and the like are embarrassingly parallel
//! over the state index; we split the range into chunks across scoped
//! `crossbeam` threads with an atomic early-exit flag, and keep the
//! sequential path allocation-light for small spaces (threads cost more
//! than they save below ~2¹⁴ states).

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// Parallelism settings.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Below this many items, run sequentially regardless of `threads`.
    pub sequential_cutoff: u64,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sequential_cutoff: 1 << 14,
        }
    }
}

impl ParConfig {
    /// A strictly sequential configuration.
    pub fn sequential() -> Self {
        ParConfig {
            threads: 1,
            sequential_cutoff: u64::MAX,
        }
    }

    /// A configuration with exactly `threads` workers and no cutoff.
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
            sequential_cutoff: 0,
        }
    }
}

/// Searches `0..n` for the first index where `f` returns `Some`, in
/// parallel. Returns *some* witness (not necessarily the smallest) when one
/// exists; `None` otherwise. `f` must be pure.
pub fn par_find<T, F>(n: u64, cfg: &ParConfig, f: F) -> Option<T>
where
    T: Send,
    F: Fn(u64) -> Option<T> + Sync,
{
    if cfg.threads <= 1 || n < cfg.sequential_cutoff {
        return (0..n).find_map(f);
    }
    let threads = cfg.threads.min(usize::try_from(n).unwrap_or(usize::MAX)).max(1);
    let found: Mutex<Option<T>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let chunk = n.div_ceil(threads as u64);
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let lo = t as u64 * chunk;
            let hi = (lo + chunk).min(n);
            let f = &f;
            let found = &found;
            let stop = &stop;
            scope.spawn(move |_| {
                for i in lo..hi {
                    // Check the stop flag periodically, not on every state.
                    if i % 1024 == 0 && stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(w) = f(i) {
                        *found.lock() = Some(w);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    })
    .expect("scan worker panicked");
    found.into_inner()
}

/// Fold `0..n` in parallel: `map` each index, `reduce` associatively.
/// Used by statistics passes (counting satisfying states etc.).
pub fn par_fold<A, M, R>(n: u64, cfg: &ParConfig, zero: A, map: M, reduce: R) -> A
where
    A: Send + Clone,
    M: Fn(u64) -> A + Sync,
    R: Fn(A, A) -> A + Sync + Send + Copy,
{
    if cfg.threads <= 1 || n < cfg.sequential_cutoff {
        return (0..n).fold(zero, |acc, i| reduce(acc, map(i)));
    }
    let threads = cfg.threads.min(usize::try_from(n).unwrap_or(usize::MAX)).max(1);
    let chunk = n.div_ceil(threads as u64);
    let partials: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let lo = t as u64 * chunk;
            let hi = (lo + chunk).min(n);
            let map = &map;
            let partials = &partials;
            let zero = zero.clone();
            scope.spawn(move |_| {
                let local = (lo..hi).fold(zero, |acc, i| reduce(acc, map(i)));
                partials.lock().push(local);
            });
        }
    })
    .expect("fold worker panicked");
    partials
        .into_inner()
        .into_iter()
        .fold(zero, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_witness_sequential_and_parallel() {
        for cfg in [ParConfig::sequential(), ParConfig::with_threads(4)] {
            let w = par_find(1_000_000, &cfg, |i| (i == 777_777).then_some(i));
            assert_eq!(w, Some(777_777));
            let none = par_find(10_000, &cfg, |_| None::<u64>);
            assert_eq!(none, None);
        }
    }

    #[test]
    fn empty_range() {
        assert_eq!(par_find(0, &ParConfig::default(), Some::<u64>), None);
    }

    #[test]
    fn fold_counts() {
        for cfg in [ParConfig::sequential(), ParConfig::with_threads(3)] {
            let count = par_fold(
                100_000,
                &cfg,
                0u64,
                |i| u64::from(i % 7 == 0),
                |a, b| a + b,
            );
            assert_eq!(count, 14_286);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_randomish_predicate() {
        let pred = |i: u64| (i * i % 104_729 == 1).then_some(());
        let seq = par_find(50_000, &ParConfig::sequential(), pred).is_some();
        let par = par_find(50_000, &ParConfig::with_threads(8), pred).is_some();
        assert_eq!(seq, par);
    }
}
