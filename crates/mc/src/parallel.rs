//! Chunk-parallel search over flat index ranges.
//!
//! Validity scans, `next` checks and the like are embarrassingly parallel
//! over the state index; we split the range into chunks across scoped
//! `crossbeam` threads with an atomic early-exit flag, and keep the
//! sequential path allocation-light for small spaces (threads cost more
//! than they save below ~2¹⁴ states).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Parallelism settings.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Below this many items, run sequentially regardless of `threads`.
    pub sequential_cutoff: u64,
}

/// The `UNITY_BUILD_THREADS` environment override, read once per
/// process: CI pins the default thread count with it so the tier-1
/// suite runs once over the parallel build paths and once (`=1`) over
/// the exact sequential reference paths. An explicit `--threads` /
/// [`ParConfig::with_threads`] still wins — the override only affects
/// [`ParConfig::default`].
fn env_threads() -> Option<usize> {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("UNITY_BUILD_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: env_threads()
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
            sequential_cutoff: 1 << 14,
        }
    }
}

/// Validates a `UNITY_BUILD_THREADS` value: a positive integer, like
/// `--threads`. [`ParConfig::default`] silently ignores garbage (a
/// library must not abort on environment noise); binaries call
/// [`validate_build_threads_env`] up front and exit 2 instead.
fn validate_threads_value(s: &str) -> Result<(), String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(()),
        Ok(_) => Err("UNITY_BUILD_THREADS must be at least 1".into()),
        Err(_) => Err(format!(
            "UNITY_BUILD_THREADS must be a positive integer, got `{s}`"
        )),
    }
}

/// Entry-point validation of the `UNITY_BUILD_THREADS` override:
/// `Ok(())` when the variable is unset or a positive integer, `Err`
/// with a usage message otherwise. The binaries (`unity-check`,
/// `unity-serve`) reject a bad override with exit code 2 — the same
/// contract as `--threads 0` — instead of silently falling back to the
/// machine default as [`ParConfig::default`] would.
pub fn validate_build_threads_env() -> Result<(), String> {
    match std::env::var("UNITY_BUILD_THREADS") {
        Err(std::env::VarError::NotPresent) => Ok(()),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("UNITY_BUILD_THREADS is not valid UTF-8".into())
        }
        Ok(s) => validate_threads_value(&s),
    }
}

impl ParConfig {
    /// A strictly sequential configuration.
    pub fn sequential() -> Self {
        ParConfig {
            threads: 1,
            sequential_cutoff: u64::MAX,
        }
    }

    /// A configuration with exactly `threads` workers and no cutoff.
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
            sequential_cutoff: 0,
        }
    }
}

/// Chunk size for [`par_find_ranges`]: big enough to amortize the atomic
/// claim and per-chunk setup (cursor decode, scratch registers), small
/// enough for prompt early exit and load balance.
pub const RANGE_CHUNK: u64 = 8 * 1024;

/// Searches `0..n` by handing contiguous **ranges** to workers: `f(lo,
/// hi)` scans `[lo, hi)` and returns a witness if it finds one (*some*
/// witness when several exist — not necessarily the smallest). Workers
/// claim chunks from a shared atomic counter (work stealing), so skewed
/// chunk costs balance out. The range interface lets both engines pay
/// their per-chunk setup once: the compiled scans decode a packed
/// cursor, the reference scans clone a scratch state.
pub fn par_find_ranges<T, F>(n: u64, cfg: &ParConfig, f: F) -> Option<T>
where
    T: Send,
    F: Fn(u64, u64) -> Option<T> + Sync,
{
    if cfg.threads <= 1 || n < cfg.sequential_cutoff {
        return f(0, n);
    }
    let threads = cfg
        .threads
        .min(usize::try_from(n.div_ceil(RANGE_CHUNK)).unwrap_or(usize::MAX))
        .max(1);
    let found: Mutex<Option<T>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let next = AtomicU64::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let found = &found;
            let stop = &stop;
            let next = &next;
            scope.spawn(move |_| loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let lo = next.fetch_add(RANGE_CHUNK, Ordering::Relaxed);
                if lo >= n {
                    return;
                }
                let hi = (lo + RANGE_CHUNK).min(n);
                if let Some(w) = f(lo, hi) {
                    *found.lock() = Some(w);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    })
    .expect("scan worker panicked");
    found.into_inner()
}

/// Fills `out` chunk-parallel: `f(lo, chunk)` computes the elements of
/// `out[lo..lo + chunk.len()]` in place. Unlike [`par_find_ranges`]
/// this is a *total* sweep — no early exit — so it suits dense
/// per-state maps like [`TransitionSystem::sat_vec`]: the output is
/// pre-split into [`RANGE_CHUNK`]-sized windows that workers claim from
/// a shared queue (work stealing), each paying its per-chunk setup
/// (scratch registers, cursor decode) once.
///
/// [`TransitionSystem::sat_vec`]: crate::transition::TransitionSystem::sat_vec
pub fn par_fill<T, F>(out: &mut [T], cfg: &ParConfig, f: F)
where
    T: Send,
    F: Fn(u64, &mut [T]) + Sync,
{
    par_chunks(out, RANGE_CHUNK as usize, cfg, f)
}

/// [`par_fill`] with an explicit chunk size, for fills whose windows
/// must stay aligned to a record stride (the parallel full-product
/// builder hands out whole successor **rows**, so its chunk is a
/// multiple of the command count). `f(lo, chunk)` computes
/// `out[lo..lo + chunk.len()]`; every chunk except possibly the last
/// has exactly `chunk` elements.
pub fn par_chunks<T, F>(out: &mut [T], chunk: usize, cfg: &ParConfig, f: F)
where
    T: Send,
    F: Fn(u64, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let n = out.len() as u64;
    if cfg.threads <= 1 || n < cfg.sequential_cutoff {
        f(0, out);
        return;
    }
    let threads = cfg
        .threads
        .min(usize::try_from(n.div_ceil(chunk as u64)).unwrap_or(usize::MAX))
        .max(1);
    // Chunks are handed out newest-first (a plain `Vec` pop); the lock
    // is held only to claim a window, never while filling it.
    let jobs: Mutex<Vec<(u64, &mut [T])>> = Mutex::new(
        out.chunks_mut(chunk)
            .enumerate()
            .map(|(i, c)| (i as u64 * chunk as u64, c))
            .collect(),
    );
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let jobs = &jobs;
            scope.spawn(move |_| loop {
                let job = jobs.lock().pop();
                match job {
                    Some((lo, chunk)) => f(lo, chunk),
                    None => return,
                }
            });
        }
    })
    .expect("fill worker panicked");
}

/// An unbounded multi-producer mailbox of message **batches**.
///
/// The sharded explorer routes cross-shard successor words through one
/// mailbox per destination shard; producers post whole per-sender
/// batches (one lock acquisition each), and the owning worker drains
/// everything in one swap. The lock is never held across user work.
#[derive(Debug, Default)]
pub struct Mailbox<T> {
    batches: Mutex<Vec<Vec<T>>>,
}

impl<T> Mailbox<T> {
    /// Posts one batch (no-op for an empty one).
    pub fn post(&self, batch: Vec<T>) {
        if !batch.is_empty() {
            self.batches.lock().push(batch);
        }
    }

    /// Takes every pending batch, leaving the mailbox empty.
    pub fn drain(&self) -> Vec<Vec<T>> {
        std::mem::take(&mut *self.batches.lock())
    }
}

/// Chandy–Misra-style quiescence counter for the work-stealing loop.
///
/// The counter tracks outstanding work items (frontier entries plus
/// undelivered mailbox batches). The invariant producers must keep:
/// **every increment for derived work happens before the decrement of
/// the work that produced it** — then `quiescent()` returning `true`
/// means no worker holds work and no mailbox has mail, so termination
/// is safe to declare without a second confirmation wave.
#[derive(Debug, Default)]
pub struct Quiescence {
    in_flight: AtomicI64,
}

impl Quiescence {
    /// Registers `n` new work items.
    pub fn add(&self, n: i64) {
        self.in_flight.fetch_add(n, Ordering::SeqCst);
    }

    /// Retires `n` completed work items.
    pub fn sub(&self, n: i64) {
        self.in_flight.fetch_sub(n, Ordering::SeqCst);
    }

    /// True when no work is outstanding anywhere.
    pub fn quiescent(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-index search on top of the range interface, as the scan
    /// drivers use it.
    fn find<T: Send>(n: u64, cfg: &ParConfig, f: impl Fn(u64) -> Option<T> + Sync) -> Option<T> {
        par_find_ranges(n, cfg, |lo, hi| (lo..hi).find_map(&f))
    }

    #[test]
    fn finds_witness_sequential_and_parallel() {
        for cfg in [ParConfig::sequential(), ParConfig::with_threads(4)] {
            let w = find(1_000_000, &cfg, |i| (i == 777_777).then_some(i));
            assert_eq!(w, Some(777_777));
            let none = find(10_000, &cfg, |_| None::<u64>);
            assert_eq!(none, None);
        }
    }

    #[test]
    fn empty_range() {
        assert_eq!(find(0, &ParConfig::default(), Some::<u64>), None);
    }

    #[test]
    fn every_index_is_visited_exactly_once_without_witness() {
        use std::sync::atomic::AtomicU64;
        for cfg in [ParConfig::sequential(), ParConfig::with_threads(3)] {
            let visited = AtomicU64::new(0);
            let n = 100_000u64;
            let r = par_find_ranges(n, &cfg, |lo, hi| {
                visited.fetch_add(hi - lo, Ordering::Relaxed);
                None::<()>
            });
            assert!(r.is_none());
            assert_eq!(visited.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_randomish_predicate() {
        let pred = |i: u64| (i * i % 104_729 == 1).then_some(());
        let seq = find(50_000, &ParConfig::sequential(), pred).is_some();
        let par = find(50_000, &ParConfig::with_threads(8), pred).is_some();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_fill_matches_sequential() {
        let n = 100_000usize;
        let mut seq = vec![0u64; n];
        par_fill(&mut seq, &ParConfig::sequential(), |lo, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (lo + k as u64) * 3 + 1;
            }
        });
        let mut par = vec![0u64; n];
        par_fill(&mut par, &ParConfig::with_threads(7), |lo, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (lo + k as u64) * 3 + 1;
            }
        });
        assert_eq!(seq, par);
        assert_eq!(par[0], 1);
        assert_eq!(par[n - 1], (n as u64 - 1) * 3 + 1);
    }

    #[test]
    fn par_fill_empty_and_tiny() {
        let mut empty: Vec<u8> = Vec::new();
        par_fill(&mut empty, &ParConfig::with_threads(4), |_, _| {
            panic!("no chunks for an empty slice")
        });
        let mut one = vec![0u8; 1];
        par_fill(&mut one, &ParConfig::with_threads(4), |lo, chunk| {
            assert_eq!(lo, 0);
            chunk[0] = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn par_chunks_respects_stride() {
        let nc = 3usize;
        let mut out = vec![0u32; 999 * nc];
        par_chunks(
            &mut out,
            64 * nc,
            &ParConfig::with_threads(4),
            |lo, chunk| {
                assert_eq!(lo as usize % nc, 0, "chunk start off stride");
                assert_eq!(chunk.len() % nc, 0, "chunk length off stride");
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (lo as usize + k) as u32;
                }
            },
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn mailbox_posts_and_drains_batches() {
        let mb: Mailbox<u64> = Mailbox::default();
        mb.post(vec![1, 2]);
        mb.post(Vec::new()); // dropped, not stored
        mb.post(vec![3]);
        let got: Vec<u64> = mb.drain().into_iter().flatten().collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(mb.drain().is_empty());
    }

    #[test]
    fn mailbox_is_safe_under_concurrent_posts() {
        let mb: Mailbox<u64> = Mailbox::default();
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let mb = &mb;
                scope.spawn(move |_| {
                    for i in 0..100 {
                        mb.post(vec![t * 1000 + i]);
                    }
                });
            }
        })
        .expect("poster panicked");
        let mut got: Vec<u64> = mb.drain().into_iter().flatten().collect();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..4u64)
            .flat_map(|t| (0..100).map(move |i| t * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn quiescence_balances_to_zero() {
        let q = Quiescence::default();
        assert!(q.quiescent());
        q.add(3);
        assert!(!q.quiescent());
        q.sub(2);
        assert!(!q.quiescent());
        q.sub(1);
        assert!(q.quiescent());
    }

    #[test]
    fn workers_receive_aligned_chunks() {
        let cfg = ParConfig::with_threads(4);
        let bad = par_find_ranges(100_000, &cfg, |lo, hi| {
            (lo % RANGE_CHUNK != 0 || hi > 100_000 || lo >= hi).then_some((lo, hi))
        });
        assert_eq!(bad, None);
    }

    #[test]
    fn build_threads_values_are_validated_like_dash_dash_threads() {
        assert!(validate_threads_value("1").is_ok());
        assert!(validate_threads_value("64").is_ok());
        let zero = validate_threads_value("0").unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        for bad in ["", "abc", "-3", "1.5", " 2"] {
            let err = validate_threads_value(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
    }
}
