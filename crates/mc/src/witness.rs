//! Counterexample construction from raw witnesses.
//!
//! Every engine reports a failing check as a *pre-state* witness (an
//! explicit [`State`] or a packed word plus a command index); the
//! post-state half of the counterexample is **replayed** here with the
//! reference `Command::step` and the tree-walking evaluator — the
//! semantics of record. This is the single construction point shared by
//! the compiled scans ([`crate::check`]) and the symbolic bridge
//! ([`crate::symbolic`]): a counterexample is by construction a fact the
//! reference semantics accepts, never an artifact of one engine's
//! encoding.

use unity_core::expr::eval::eval;
use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;
use unity_core::value::Value;

use crate::trace::Counterexample;

/// Renders a value as the `i64` used by `unchanged` counterexamples
/// (booleans as 0/1).
pub(crate) fn as_i64(v: Value) -> i64 {
    match v {
        Value::Int(n) => n,
        Value::Bool(b) => i64::from(b),
    }
}

/// A `p next q` violation from pre-state `state` under command index
/// `command` (`None` = the implicit skip). The post-state is replayed
/// with the reference step.
pub(crate) fn next_cex(program: &Program, state: State, command: Option<usize>) -> Counterexample {
    let (command, after) = match command {
        None => (None, state.clone()),
        Some(k) => (
            Some(program.commands[k].name.clone()),
            program.commands[k].step(&state, &program.vocab),
        ),
    };
    Counterexample::Next {
        state,
        command,
        after,
    }
}

/// An `unchanged e` violation: command `k` changes the value of `e`
/// from pre-state `state`. Before/after values are recomputed with the
/// reference evaluator.
pub(crate) fn unchanged_cex(program: &Program, e: &Expr, state: State, k: usize) -> Counterexample {
    let cmd = &program.commands[k];
    let after_state = cmd.step(&state, &program.vocab);
    Counterexample::Unchanged {
        before: as_i64(eval(e, &state)),
        after: as_i64(eval(e, &after_state)),
        state,
        command: cmd.name.clone(),
    }
}

/// A `transient p` refutation: for each fair command (by index), a
/// `p`-state it fails to leave `p` from.
pub(crate) fn transient_cex(program: &Program, stuck: Vec<(usize, State)>) -> Counterexample {
    Counterexample::Transient {
        witnesses: stuck
            .into_iter()
            .map(|(k, s)| (program.commands[k].name.clone(), s))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn counter() -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        Program::builder("c", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn next_replays_the_command() {
        let p = counter();
        let s = State::new(vec![Value::Int(1)]);
        match next_cex(&p, s, Some(0)) {
            Counterexample::Next {
                state,
                command,
                after,
            } => {
                assert_eq!(state, State::new(vec![Value::Int(1)]));
                assert_eq!(command.as_deref(), Some("inc"));
                assert_eq!(after, State::new(vec![Value::Int(2)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn skip_keeps_the_state() {
        let p = counter();
        let s = State::new(vec![Value::Int(2)]);
        match next_cex(&p, s.clone(), None) {
            Counterexample::Next {
                state,
                command,
                after,
            } => {
                assert_eq!(state, s);
                assert!(command.is_none());
                assert_eq!(after, s);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unchanged_recomputes_values() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let s = State::new(vec![Value::Int(0)]);
        match unchanged_cex(&p, &var(x), s, 0) {
            Counterexample::Unchanged { before, after, .. } => {
                assert_eq!((before, after), (0, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
