//! Assume-guarantee compositional verification: discharge properties of
//! a composed system **without building the product state space**.
//!
//! [`CompositionalVerifier`] executes the discharge plans of
//! [`unity_ag`] with this crate's three-engine checkers:
//!
//! * **Existential** properties (`init`, `transient`) pass as soon as
//!   *one* component passes — the witness survives composition. The
//!   lift is validated through the proof kernel's `lift-existential`
//!   rule before it is trusted.
//! * **Universal** properties (`next`, `stable`, `invariant`,
//!   `unchanged`) pass when *every* component passes, validated through
//!   the kernel's `lift-universal` rule. Each component check runs in
//!   the component's own (exponentially smaller) projected space.
//! * **`leadsto`** is decided on the cone-of-influence slice — the
//!   sub-composition of the components that can influence the property,
//!   rebuilt over a restricted vocabulary ([`unity_ag::slice`]) — when
//!   the cone is a proper subset of the system.
//!
//! Everything the rules cannot close falls back to the product space,
//! and **every refutation is re-derived on the product**, so the
//! compositional verdict *and witness* are identical to a flat
//! [`Verifier`] run by construction (pinned end to end by the
//! differential suite in `tests/prop_compositional.rs`).
//!
//! Component facts are cached as content-hashed certificates
//! ([`unity_ag::cert`]): keyed by the component's own canonical text,
//! not the spec file, so re-verifying an N-component system after a
//! one-component edit re-checks exactly that component. The
//! [`CertChain`] records, machine-readably, *which rule closed each
//! obligation*.

use std::collections::BTreeSet;
use std::time::Instant;

use unity_ag::cert::{
    obligation_text, program_hash, CertChain, CertKey, CertStore, Discharge, DischargeRule,
    UNIVERSE_ALL, UNIVERSE_INDUCTIVE, UNIVERSE_REACHABLE,
};
use unity_ag::plan::{plan, Strategy};
use unity_ag::slice::{cone_block, Slice};
use unity_core::compose::System;
use unity_core::expr::vars::free_vars;
use unity_core::ident::VarId;
use unity_core::proof::check::{check_concludes, CheckCtx};
use unity_core::proof::rules::Proof;
use unity_core::proof::{FactBase, Judgment};
use unity_core::properties::Property;

use crate::report::{CheckReport, Report};
use crate::space::ScanConfig;
use crate::trace::McError;
use crate::transition::Universe;
use crate::verifier::{
    DischargeInfo, EngineCache, NamedCheck, Outcome, SessionArtifacts, SessionStatus, Verdict,
    VerdictStats, Verifier,
};

/// Aggregate counters for one compositional session, exposed through
/// `unity-check --compositional --stats` and the serve `/status`
/// accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompositionalStats {
    /// Obligations verified.
    pub obligations: u64,
    /// Obligations closed by the kernel's `lift-universal` rule.
    pub lift_universal: u64,
    /// Obligations closed by the kernel's `lift-existential` rule.
    pub lift_existential: u64,
    /// Obligations closed on the cone-of-influence slice.
    pub cone: u64,
    /// Obligations that fell back to the product space.
    pub product_fallbacks: u64,
    /// Component / slice checks actually run (certificate misses).
    pub component_checks: u64,
    /// Certificate cache hits.
    pub cert_hits: u64,
    /// Certificate cache misses.
    pub cert_misses: u64,
}

/// A cached cone slice: the restricted-vocabulary sub-composition, its
/// content hash, and its own engine session.
struct SliceEntry {
    slice: Slice,
    hash: String,
    cache: EngineCache,
    extra: BTreeSet<VarId>,
}

/// A compositional verification session over a composed [`System`].
///
/// Mirrors [`Verifier`]'s session shape — per-scope engine artifacts are
/// built lazily and memoized across checks — but the scopes are the
/// *components* (plus cone slices), and the product session only comes
/// into existence if some obligation actually needs it
/// ([`CompositionalVerifier::product_status`] tells).
pub struct CompositionalVerifier<'s> {
    system: &'s System,
    cfg: ScanConfig,
    universe: Universe,
    /// Per-component content hashes ([`program_hash`]), certificate keys.
    hashes: Vec<String>,
    /// Per-component engine sessions, indexed like `system.components`.
    caches: Vec<EngineCache>,
    product: Option<Verifier<'s>>,
    slices: Vec<SliceEntry>,
    certs: CertStore,
    chain: CertChain,
    stats: CompositionalStats,
}

impl<'s> CompositionalVerifier<'s> {
    /// Opens a session on `system`. Nothing is built until the first
    /// check needs it.
    pub fn new(system: &'s System, cfg: ScanConfig) -> Self {
        CompositionalVerifier {
            hashes: system.components.iter().map(program_hash).collect(),
            caches: system
                .components
                .iter()
                .map(|_| EngineCache::default())
                .collect(),
            system,
            cfg,
            universe: Universe::Reachable,
            product: None,
            slices: Vec::new(),
            certs: CertStore::new(),
            chain: CertChain::new(),
            stats: CompositionalStats::default(),
        }
    }

    /// Sets the universe `leadsto` checks quantify over. Default:
    /// [`Universe::Reachable`].
    pub fn with_universe(mut self, universe: Universe) -> Self {
        self.universe = universe;
        self
    }

    /// Seeds the session with previously established certificates (e.g.
    /// loaded from the serve store). Facts the session adds on top are
    /// tracked as dirty in [`CompositionalVerifier::certs`].
    pub fn with_certs(mut self, certs: CertStore) -> Self {
        self.certs = certs;
        self
    }

    /// The per-component content hashes, indexed like
    /// `system.components` — the keys a persistence layer should file
    /// certificates under.
    pub fn component_hashes(&self) -> &[String] {
        &self.hashes
    }

    /// The certificate store (seeded facts plus everything this session
    /// established; dirty tracking identifies the latter).
    pub fn certs(&self) -> &CertStore {
        &self.certs
    }

    /// Mutable access to the certificate store (persistence layers call
    /// `clear_dirty` after writing).
    pub fn certs_mut(&mut self) -> &mut CertStore {
        &mut self.certs
    }

    /// The machine-readable discharge record, one entry per obligation
    /// verified so far.
    pub fn cert_chain(&self) -> &CertChain {
        &self.chain
    }

    /// Session counters.
    pub fn stats(&self) -> &CompositionalStats {
        &self.stats
    }

    /// The product session's artifact status, or `None` while no
    /// obligation has needed the product space at all. A run that
    /// discharged everything compositionally reports `None`; a run
    /// whose fallbacks were all safety scans reports `Some` with
    /// `ts_reachable == false` (scans build no transition system).
    pub fn product_status(&self) -> Option<SessionStatus> {
        self.product.as_ref().map(Verifier::status)
    }

    /// Exports whatever product-space artifacts the fallback path built
    /// (`None` if no obligation touched the product). A persistence
    /// layer can file these under the *composed* program's hash so a
    /// later flat session of the same program starts warm.
    pub fn product_artifacts(&self) -> Option<SessionArtifacts> {
        self.product.as_ref().map(Verifier::artifacts)
    }

    /// Every program hash this battery's certificates can key under:
    /// the component hashes plus the hash of each cone slice the rules
    /// will decide `leadsto` checks on. Slices are built here (cheap —
    /// program construction only, no state space) and memoized for the
    /// checks that follow. A persistence layer loads certificates for
    /// exactly these hashes before seeding
    /// [`CompositionalVerifier::with_certs`].
    pub fn plan_hashes(&mut self, checks: &[NamedCheck]) -> Vec<String> {
        let n = self.system.len();
        let mut out = self.hashes.clone();
        for c in checks {
            if !matches!(plan(&c.property), Strategy::Cone) {
                continue;
            }
            let Property::LeadsTo(p, q) = &c.property else {
                continue;
            };
            let mut seed = free_vars(p);
            seed.extend(free_vars(q));
            let block = cone_block(&self.system.components, &seed);
            if block.len() >= n {
                continue; // verify() will fall back, no slice cert
            }
            if let Ok(pos) = self.slice_pos(&block, &seed) {
                let h = self.slices[pos].hash.clone();
                if !out.contains(&h) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Checks one property of the composition, discharging it
    /// compositionally when the rules allow and on the product space
    /// otherwise. The verdict (and any witness) is identical to a flat
    /// [`Verifier::verify`] on `system.composed`.
    pub fn verify(&mut self, prop: &Property) -> Verdict {
        let rendered = prop.display(self.system.vocab()).to_string();
        let t0 = Instant::now();
        self.stats.obligations += 1;
        let n = self.system.len();
        if n == 0 {
            return self.product_fallback(rendered, prop, t0);
        }
        match plan(prop) {
            Strategy::Existential => {
                // One passing component suffices; erroring components
                // (e.g. over the space bound) are skipped — another may
                // still witness.
                let mut witness = None;
                let mut cached = true;
                for i in 0..n {
                    match self.component_outcome(i, prop) {
                        Ok((true, hit)) => {
                            cached &= hit;
                            witness = Some(i);
                            break;
                        }
                        Ok((false, hit)) => cached &= hit,
                        Err(_) => cached = false,
                    }
                }
                if let Some(i) = witness {
                    if self.kernel_validates(prop, Some(i)) {
                        let rule = DischargeRule::LiftExistential { component: i };
                        return self.lifted(rendered, rule, cached, t0);
                    }
                }
                self.product_fallback(rendered, prop, t0)
            }
            Strategy::Universal => {
                let mut all_pass = true;
                let mut cached = true;
                for i in 0..n {
                    match self.component_outcome(i, prop) {
                        Ok((true, hit)) => cached &= hit,
                        Ok((false, hit)) => {
                            cached &= hit;
                            all_pass = false;
                            break;
                        }
                        Err(_) => {
                            all_pass = false;
                            break;
                        }
                    }
                }
                if all_pass && self.kernel_validates(prop, None) {
                    return self.lifted(rendered, DischargeRule::LiftUniversal, cached, t0);
                }
                self.product_fallback(rendered, prop, t0)
            }
            Strategy::Cone => {
                let Property::LeadsTo(p, q) = prop else {
                    unreachable!("plan() routes only leadsto through the cone");
                };
                let mut seed = free_vars(p);
                seed.extend(free_vars(q));
                let block = cone_block(&self.system.components, &seed);
                if block.len() >= n {
                    // The cone is the whole system: slicing buys nothing.
                    return self.product_fallback(rendered, prop, t0);
                }
                match self.slice_outcome(&block, &seed, prop) {
                    Ok((true, hit)) => {
                        let rule = DischargeRule::Cone { components: block };
                        self.lifted(rendered, rule, hit, t0)
                    }
                    // A slice refutation (or error) proves nothing about
                    // the product — its initial states over-approximate.
                    _ => self.product_fallback(rendered, prop, t0),
                }
            }
        }
    }

    /// Checks every named property and assembles the same
    /// machine-readable [`Report`] a flat session would.
    pub fn verify_all(&mut self, checks: &[NamedCheck]) -> Report {
        let t0 = Instant::now();
        let results: Vec<CheckReport> = checks
            .iter()
            .map(|c| CheckReport {
                name: c.name.clone(),
                line: c.line,
                verdict: self.verify(&c.property),
            })
            .collect();
        Report {
            program: self.system.composed.name.clone(),
            vars: self
                .system
                .vocab()
                .iter()
                .map(|(_, decl)| decl.name.clone())
                .collect(),
            engine: self.cfg.engine,
            universe: self.universe,
            checks: results,
            sim: Vec::new(),
            elapsed: t0.elapsed(),
        }
    }

    /// The pass/fail outcome of `prop` on component `i`
    /// (`Ok((passed, from_cache))`), consulting and feeding the
    /// certificate store. Only definite verdicts are cached; errors
    /// propagate uncached. Safety only — `leadsto` goes through
    /// [`CompositionalVerifier::slice_outcome`].
    fn component_outcome(&mut self, i: usize, prop: &Property) -> Result<(bool, bool), McError> {
        debug_assert!(!matches!(prop, Property::LeadsTo(..)));
        let key = CertKey {
            program: self.hashes[i].clone(),
            property: obligation_text(prop, self.system.vocab()),
            universe: UNIVERSE_INDUCTIVE,
        };
        if let Some(pass) = self.certs.get(&key) {
            self.stats.cert_hits += 1;
            return Ok((pass, true));
        }
        self.stats.cert_misses += 1;
        self.stats.component_checks += 1;
        let r = crate::check::check_property_in(
            &self.system.components[i],
            prop,
            self.universe,
            &self.cfg,
            &mut self.caches[i],
        );
        match r {
            Ok(()) => {
                self.certs.insert(key, true);
                Ok((true, false))
            }
            Err(McError::Refuted { .. }) => {
                self.certs.insert(key, false);
                Ok((false, false))
            }
            Err(e) => Err(e),
        }
    }

    /// Decides a `leadsto` on the cone slice (`Ok((passed,
    /// from_cache))`). Slice verdicts are certificates of the slice's
    /// *own* composed program — keyed by its content hash, so any edit
    /// to a block component invalidates them and edits outside the
    /// block do not.
    /// Finds or builds the memoized slice session for `(block, seed)`,
    /// returning its index in `self.slices`.
    fn slice_pos(&mut self, block: &[usize], seed: &BTreeSet<VarId>) -> Result<usize, McError> {
        if let Some(pos) = self
            .slices
            .iter()
            .position(|e| e.slice.block == block && e.extra == *seed)
        {
            return Ok(pos);
        }
        let slice = Slice::build(&self.system.components, block, seed).map_err(McError::Core)?;
        self.slices.push(SliceEntry {
            hash: program_hash(&slice.composed),
            slice,
            cache: EngineCache::default(),
            extra: seed.clone(),
        });
        Ok(self.slices.len() - 1)
    }

    fn slice_outcome(
        &mut self,
        block: &[usize],
        seed: &BTreeSet<VarId>,
        prop: &Property,
    ) -> Result<(bool, bool), McError> {
        let pos = self.slice_pos(block, seed)?;
        let sprop = self.slices[pos].slice.remap_property(prop);
        let key = CertKey {
            program: self.slices[pos].hash.clone(),
            property: obligation_text(&sprop, self.slices[pos].slice.vocab()),
            universe: match self.universe {
                Universe::Reachable => UNIVERSE_REACHABLE,
                Universe::AllStates => UNIVERSE_ALL,
            },
        };
        if let Some(pass) = self.certs.get(&key) {
            self.stats.cert_hits += 1;
            return Ok((pass, true));
        }
        self.stats.cert_misses += 1;
        self.stats.component_checks += 1;
        let Property::LeadsTo(p, q) = &sprop else {
            unreachable!("slice_outcome is only called for leadsto");
        };
        let SliceEntry { slice, cache, .. } = &mut self.slices[pos];
        let r = crate::fair::check_leadsto_outcome_in(
            &slice.composed,
            p,
            q,
            self.universe,
            &self.cfg,
            cache,
        );
        match r {
            Ok((_, None)) => {
                self.certs.insert(key, true);
                Ok((true, false))
            }
            Ok((_, Some(_))) => {
                self.certs.insert(key, false);
                Ok((false, false))
            }
            Err(e) => Err(e),
        }
    }

    /// Kernel-validates the lift before trusting it: records the
    /// component facts in a [`FactBase`] and checks the corresponding
    /// `LiftUniversal` / `LiftExistential` proof concludes
    /// `System ⊨ prop`. This is cheap (syntactic premise lookup) and
    /// keeps the trusted core the proof kernel, not this module's
    /// routing.
    fn kernel_validates(&self, prop: &Property, witness: Option<usize>) -> bool {
        let n = self.system.len();
        let mut facts = FactBase::new();
        let proof = match witness {
            Some(i) => {
                facts.record(Judgment::component(i, prop.clone()));
                Proof::LiftExistential {
                    component: i,
                    sub: Box::new(Proof::premise(Judgment::component(i, prop.clone()))),
                }
            }
            None => {
                for i in 0..n {
                    facts.record(Judgment::component(i, prop.clone()));
                }
                Proof::LiftUniversal {
                    prop: prop.clone(),
                    per_component: (0..n)
                        .map(|i| Proof::premise(Judgment::component(i, prop.clone())))
                        .collect(),
                }
            }
        };
        let mut ctx = CheckCtx::new(&mut facts)
            .with_components(n)
            .with_vocab(self.system.vocab().as_ref());
        check_concludes(&proof, &Judgment::system(prop.clone()), &mut ctx).is_ok()
    }

    /// Assembles the passing verdict of a successful lift and records
    /// the discharge.
    fn lifted(
        &mut self,
        property: String,
        rule: DischargeRule,
        cached: bool,
        t0: Instant,
    ) -> Verdict {
        match &rule {
            DischargeRule::LiftUniversal => self.stats.lift_universal += 1,
            DischargeRule::LiftExistential { .. } => self.stats.lift_existential += 1,
            DischargeRule::Cone { .. } => self.stats.cone += 1,
            DischargeRule::ProductFallback => unreachable!("fallbacks go through product_fallback"),
        }
        let discharge = DischargeInfo {
            rule: rule.rule_name().to_string(),
            components: rule.components().to_vec(),
            cached,
        };
        self.chain.push(Discharge {
            property: property.clone(),
            rule,
            cached,
        });
        Verdict {
            property,
            outcome: Outcome::Pass,
            engine: self.cfg.engine,
            stats: VerdictStats::Unmeasured,
            elapsed: t0.elapsed(),
            discharge: Some(discharge),
        }
    }

    /// Re-derives the verdict (and canonical witness) on the product
    /// space through a lazily opened flat [`Verifier`] session.
    fn product_fallback(&mut self, property: String, prop: &Property, t0: Instant) -> Verdict {
        self.stats.product_fallbacks += 1;
        self.chain.push(Discharge {
            property: property.clone(),
            rule: DischargeRule::ProductFallback,
            cached: false,
        });
        let universe = self.universe;
        let session = self.product.get_or_insert_with(|| {
            Verifier::new(&self.system.composed, self.cfg.clone()).with_universe(universe)
        });
        let mut v = session.verify(prop);
        v.elapsed = t0.elapsed();
        v.discharge = Some(DischargeInfo {
            rule: DischargeRule::ProductFallback.rule_name().to_string(),
            components: Vec::new(),
            cached: false,
        });
        v
    }
}

impl Verifier<'_> {
    /// One-shot compositional run: discharges `checks` against `system`
    /// per the assume-guarantee rules (product space only for the
    /// residue) and returns the same [`Report`] a flat session on
    /// `system.composed` would, plus the discharge counters.
    pub fn verify_compositional(
        system: &System,
        checks: &[NamedCheck],
        cfg: ScanConfig,
        universe: Universe,
    ) -> (Report, CompositionalStats) {
        let mut cv = CompositionalVerifier::new(system, cfg).with_universe(universe);
        let report = cv.verify_all(checks);
        (report, cv.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::compose::InitSatCheck;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    /// Two independent counters plus an observer chasing the first —
    /// the usual three-component rig.
    fn rig() -> (System, [unity_core::ident::VarId; 3]) {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 3).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 3).unwrap()).unwrap();
        let c = v.declare("c", Domain::int_range(0, 3).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let p0 = Program::builder("P0", vocab.clone())
            .local(a)
            .init(eq(var(a), int(0)))
            .fair_command("inca", lt(var(a), int(3)), vec![(a, add(var(a), int(1)))])
            .build()
            .unwrap();
        let p1 = Program::builder("P1", vocab.clone())
            .local(b)
            .init(eq(var(b), int(0)))
            .fair_command("incb", lt(var(b), int(3)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap();
        let p2 = Program::builder("P2", vocab)
            .local(c)
            .init(eq(var(c), int(0)))
            .fair_command("copy", lt(var(c), var(a)), vec![(c, add(var(c), int(1)))])
            .build()
            .unwrap();
        let system = System::compose(vec![p0, p1, p2], InitSatCheck::Exhaustive).unwrap();
        (system, [a, b, c])
    }

    #[test]
    fn universal_properties_lift_without_touching_the_product() {
        let (system, [a, ..]) = rig();
        let mut cv = CompositionalVerifier::new(&system, ScanConfig::default());
        let verdict = cv.verify(&Property::Invariant(le(var(a), int(3))));
        assert!(verdict.passed());
        let d = verdict.discharge.as_ref().unwrap();
        assert_eq!(d.rule, "lift-universal");
        assert!(!d.cached);
        assert!(cv.product_status().is_none(), "product never opened");
        assert_eq!(cv.stats().lift_universal, 1);
        assert_eq!(cv.stats().component_checks, 3);
    }

    #[test]
    fn existential_properties_lift_from_one_witness() {
        let (system, [a, ..]) = rig();
        let mut cv = CompositionalVerifier::new(&system, ScanConfig::default());
        // P0's own init entails a == 0; the other components say nothing
        // about `a`, so the witness is component 0.
        let verdict = cv.verify(&Property::Init(eq(var(a), int(0))));
        assert!(verdict.passed());
        let d = verdict.discharge.as_ref().unwrap();
        assert_eq!(d.rule, "lift-existential");
        assert_eq!(d.components, vec![0]);
        assert!(cv.product_status().is_none());
        assert_eq!(cv.stats().lift_existential, 1);
    }

    #[test]
    fn leadsto_decides_on_the_cone_slice() {
        let (system, [a, ..]) = rig();
        let mut cv = CompositionalVerifier::new(&system, ScanConfig::default());
        let verdict = cv.verify(&Property::LeadsTo(tt(), eq(var(a), int(3))));
        assert!(verdict.passed());
        let d = verdict.discharge.as_ref().unwrap();
        assert_eq!(d.rule, "cone-of-influence");
        assert_eq!(d.components, vec![0], "only P0 writes a");
        assert!(cv.product_status().is_none(), "slice, not product");
        assert_eq!(cv.stats().cone, 1);
    }

    #[test]
    fn refutations_fall_back_with_the_flat_witness() {
        let (system, [a, ..]) = rig();
        let cfg = ScanConfig::default();
        let prop = Property::Invariant(le(var(a), int(2)));
        let mut cv = CompositionalVerifier::new(&system, cfg.clone());
        let compositional = cv.verify(&prop);
        let flat = Verifier::new(&system.composed, cfg).verify(&prop);
        assert!(compositional.failed());
        assert_eq!(compositional.outcome, flat.outcome, "witness identical");
        assert_eq!(
            compositional.discharge.as_ref().unwrap().rule,
            "product-fallback"
        );
        assert_eq!(cv.stats().product_fallbacks, 1);
        assert!(cv.product_status().is_some());
    }

    #[test]
    fn certificates_answer_repeat_obligations() {
        let (system, [a, ..]) = rig();
        let prop = Property::Invariant(le(var(a), int(3)));
        let mut cv = CompositionalVerifier::new(&system, ScanConfig::default());
        let first = cv.verify(&prop);
        assert!(!first.discharge.as_ref().unwrap().cached);
        let second = cv.verify(&prop);
        assert!(second.passed());
        assert!(second.discharge.as_ref().unwrap().cached);
        assert_eq!(cv.stats().cert_hits, 3, "three component facts reused");
        assert_eq!(cv.stats().component_checks, 3, "no re-check");
        assert_eq!(cv.certs().dirty_len(), 3);
    }

    #[test]
    fn seeded_certificates_skip_component_checks_entirely() {
        let (system, [a, ..]) = rig();
        let prop = Property::Invariant(le(var(a), int(3)));
        let mut first = CompositionalVerifier::new(&system, ScanConfig::default());
        let _ = first.verify(&prop);
        let mut store = CertStore::new();
        for (k, pass) in first.certs().iter() {
            store.seed(k.clone(), pass);
        }
        let mut second =
            CompositionalVerifier::new(&system, ScanConfig::default()).with_certs(store);
        let verdict = second.verify(&prop);
        assert!(verdict.passed());
        assert!(verdict.discharge.as_ref().unwrap().cached);
        assert_eq!(second.stats().component_checks, 0);
        assert_eq!(second.certs().dirty_len(), 0, "nothing new to persist");
    }

    #[test]
    fn chain_names_the_closing_rule_per_obligation() {
        let (system, [a, b, ..]) = rig();
        let checks = vec![
            NamedCheck {
                name: "bound".into(),
                property: Property::Invariant(le(var(a), int(3))),
                line: 1,
            },
            NamedCheck {
                name: "start".into(),
                property: Property::Init(eq(var(b), int(0))),
                line: 2,
            },
            NamedCheck {
                name: "live".into(),
                property: Property::LeadsTo(tt(), eq(var(b), int(3))),
                line: 3,
            },
            NamedCheck {
                name: "broken".into(),
                property: Property::Invariant(le(var(a), int(2))),
                line: 4,
            },
        ];
        let mut cv = CompositionalVerifier::new(&system, ScanConfig::default());
        let report = cv.verify_all(&checks);
        assert_eq!(report.checks.len(), 4);
        let chain = cv.cert_chain();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.count_rule("lift-universal"), 1);
        assert_eq!(chain.count_rule("lift-existential"), 1);
        assert_eq!(chain.count_rule("cone-of-influence"), 1);
        assert_eq!(chain.count_rule("product-fallback"), 1);
        // Every verdict carries its provenance.
        for c in &report.checks {
            assert!(c.verdict.discharge.is_some(), "{} lacks provenance", c.name);
        }
    }

    #[test]
    fn one_shot_matches_the_session() {
        let (system, [a, ..]) = rig();
        let checks = vec![NamedCheck {
            name: "bound".into(),
            property: Property::Invariant(le(var(a), int(3))),
            line: 0,
        }];
        let (report, stats) = Verifier::verify_compositional(
            &system,
            &checks,
            ScanConfig::default(),
            Universe::Reachable,
        );
        assert!(report.all_passed());
        assert_eq!(stats.lift_universal, 1);
        assert_eq!(stats.obligations, 1);
    }
}
