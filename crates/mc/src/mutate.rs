//! Mutation testing for specifications ("test the tests").
//!
//! The paper's methodology stands on specifications pinning down exactly
//! the behaviours that matter. This module measures that: it generates
//! single-point **mutants** of a program — guard replacements, operator
//! and comparison swaps, constant shifts, dropped updates, dropped
//! fairness — and reports which specification kills each one.
//!
//! Mutants that are *behaviourally equivalent* to the original (identical
//! transition relation, initial states and fairness — decidable here by
//! exhaustive comparison) are detected and excluded from the kill ratio;
//! saturation-by-guard programs produce several (e.g. weakening `x < 2`
//! to `true` changes nothing when the update clips at the domain bound),
//! and counting those as survivors would slander the specs.
//!
//! Survivors — non-equivalent mutants no spec kills — are the actionable
//! output: each one is a behaviour change the specification suite cannot
//! see.

use unity_core::expr::build::{ff, int, tt};
use unity_core::expr::{BinOp, Expr};
use unity_core::program::Program;
use unity_core::state::StateSpaceIter;
use unity_core::value::Value;

/// What a mutant changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// A command guard replaced by `true`.
    GuardTrue,
    /// A command guard replaced by `false`.
    GuardFalse,
    /// `+` ↔ `−` swap inside an update or guard.
    OpSwap,
    /// An integer literal shifted by one.
    ConstShift,
    /// A strict/non-strict comparison swap (`<`↔`≤`, `>`↔`≥`).
    CompareSwap,
    /// One update of a multi-assignment removed.
    DropUpdate,
    /// A fair command demoted to an unfair one.
    DropFairness,
}

impl MutationKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::GuardTrue => "guard-true",
            MutationKind::GuardFalse => "guard-false",
            MutationKind::OpSwap => "op-swap",
            MutationKind::ConstShift => "const-shift",
            MutationKind::CompareSwap => "compare-swap",
            MutationKind::DropUpdate => "drop-update",
            MutationKind::DropFairness => "drop-fairness",
        }
    }
}

/// A generated mutant.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated program.
    pub program: Program,
    /// Human-readable description (kind + location).
    pub description: String,
    /// The mutation applied.
    pub kind: MutationKind,
}

/// All single-point expression mutations of `e` (op swaps, comparison
/// swaps, constant shifts), with a location string.
fn expr_mutations(e: &Expr) -> Vec<(Expr, MutationKind)> {
    let mut out = Vec::new();
    match e {
        Expr::Lit(Value::Int(n)) => {
            out.push((int(n + 1), MutationKind::ConstShift));
        }
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::Not(a) | Expr::Neg(a) => {
            let rebuild: fn(Expr) -> Expr = if matches!(e, Expr::Not(_)) {
                |x| Expr::Not(Box::new(x))
            } else {
                |x| Expr::Neg(Box::new(x))
            };
            for (m, k) in expr_mutations(a) {
                out.push((rebuild(m), k));
            }
        }
        Expr::Bin(op, a, b) => {
            let swapped = match op {
                BinOp::Add => Some(BinOp::Sub),
                BinOp::Sub => Some(BinOp::Add),
                BinOp::Lt => Some(BinOp::Le),
                BinOp::Le => Some(BinOp::Lt),
                BinOp::Gt => Some(BinOp::Ge),
                BinOp::Ge => Some(BinOp::Gt),
                _ => None,
            };
            if let Some(op2) = swapped {
                let kind = if matches!(op, BinOp::Add | BinOp::Sub) {
                    MutationKind::OpSwap
                } else {
                    MutationKind::CompareSwap
                };
                out.push((Expr::Bin(op2, a.clone(), b.clone()), kind));
            }
            for (m, k) in expr_mutations(a) {
                out.push((Expr::Bin(*op, Box::new(m), b.clone()), k));
            }
            for (m, k) in expr_mutations(b) {
                out.push((Expr::Bin(*op, a.clone(), Box::new(m)), k));
            }
        }
        Expr::Ite(c, t, f) => {
            for (m, k) in expr_mutations(c) {
                out.push((Expr::Ite(Box::new(m), t.clone(), f.clone()), k));
            }
            for (m, k) in expr_mutations(t) {
                out.push((Expr::Ite(c.clone(), Box::new(m), f.clone()), k));
            }
            for (m, k) in expr_mutations(f) {
                out.push((Expr::Ite(c.clone(), t.clone(), Box::new(m)), k));
            }
        }
        Expr::NAry(op, args) => {
            for (i, a) in args.iter().enumerate() {
                for (m, k) in expr_mutations(a) {
                    let mut args2 = args.clone();
                    args2[i] = m;
                    out.push((Expr::NAry(*op, args2), k));
                }
            }
        }
    }
    out
}

/// Generates every single-point mutant of `program`. Mutants that fail to
/// rebuild (they should not) are silently skipped; syntactically identical
/// mutants are not deduplicated here (equivalence is semantic — see
/// [`same_behavior`]).
pub fn mutants(program: &Program) -> Vec<Mutant> {
    let mut out = Vec::new();
    let mut push = |prog: Result<Program, _>, description: String, kind: MutationKind| {
        if let Ok(program) = prog {
            out.push(Mutant {
                program,
                description,
                kind,
            });
        }
    };

    for (ci, cmd) in program.commands.iter().enumerate() {
        // Guard replacements.
        if !cmd.guard.is_true() {
            let mut p = program.clone();
            p.commands[ci].guard = tt();
            push(
                p.validate().map(|()| p.clone()),
                format!("{}: guard -> true", cmd.name),
                MutationKind::GuardTrue,
            );
        }
        if !cmd.guard.is_false() {
            let mut p = program.clone();
            p.commands[ci].guard = ff();
            push(
                p.validate().map(|()| p.clone()),
                format!("{}: guard -> false", cmd.name),
                MutationKind::GuardFalse,
            );
        }
        // Guard expression mutations.
        for (idx, (g2, kind)) in expr_mutations(&cmd.guard).into_iter().enumerate() {
            let mut p = program.clone();
            p.commands[ci].guard = g2;
            push(
                p.validate().map(|()| p.clone()),
                format!("{}: guard {} #{idx}", cmd.name, kind.label()),
                kind,
            );
        }
        // Update expression mutations + dropped updates.
        for (ui, (x, rhs)) in cmd.updates.iter().enumerate() {
            for (idx, (r2, kind)) in expr_mutations(rhs).into_iter().enumerate() {
                let mut p = program.clone();
                p.commands[ci].updates[ui].1 = r2;
                push(
                    p.validate().map(|()| p.clone()),
                    format!(
                        "{}: update {} {} #{idx}",
                        cmd.name,
                        program.vocab.name(*x),
                        kind.label()
                    ),
                    kind,
                );
            }
            let mut p = program.clone();
            p.commands[ci].updates.remove(ui);
            push(
                p.validate().map(|()| p.clone()),
                format!("{}: drop update of {}", cmd.name, program.vocab.name(*x)),
                MutationKind::DropUpdate,
            );
        }
        // Fairness demotion.
        if program.fair.contains(&ci) {
            let mut p = program.clone();
            p.fair.remove(&ci);
            push(
                p.validate().map(|()| p.clone()),
                format!("{}: drop fairness", cmd.name),
                MutationKind::DropFairness,
            );
        }
    }
    out
}

/// Exhaustive behavioural equivalence: identical initial-state sets,
/// identical per-command successors from every type-consistent state, and
/// identical fairness. Sound and complete on finite instances (given
/// equal command counts, which mutation preserves).
pub fn same_behavior(a: &Program, b: &Program) -> bool {
    if a.commands.len() != b.commands.len() || a.fair != b.fair {
        return false;
    }
    for s in StateSpaceIter::new(&a.vocab) {
        if a.satisfies_init(&s) != b.satisfies_init(&s) {
            return false;
        }
        for ci in 0..a.commands.len() {
            if a.step(ci, &s) != b.step(ci, &s) {
                return false;
            }
        }
    }
    true
}

/// Outcome for one mutant.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// What was mutated.
    pub description: String,
    /// The mutation kind.
    pub kind: MutationKind,
    /// Behaviourally identical to the original.
    pub equivalent: bool,
    /// Name of the first spec that killed it (None = survivor, if not
    /// equivalent).
    pub killed_by: Option<String>,
}

/// Aggregate result of a mutation audit.
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// Per-mutant outcomes.
    pub outcomes: Vec<MutantOutcome>,
}

impl MutationReport {
    /// Total mutants generated.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Behaviourally equivalent mutants (excluded from the ratio).
    pub fn equivalent(&self) -> usize {
        self.outcomes.iter().filter(|o| o.equivalent).count()
    }

    /// Killed mutants.
    pub fn killed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.killed_by.is_some())
            .count()
    }

    /// Non-equivalent mutants no spec killed.
    pub fn survivors(&self) -> Vec<&MutantOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.equivalent && o.killed_by.is_none())
            .collect()
    }

    /// `killed / (total − equivalent)`; 1.0 when there is nothing to kill.
    pub fn kill_ratio(&self) -> f64 {
        let denom = self.total() - self.equivalent();
        if denom == 0 {
            1.0
        } else {
            self.killed() as f64 / denom as f64
        }
    }

    /// A compact multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "mutants: {} ({} equivalent), killed {} / {} -> kill ratio {:.2}",
            self.total(),
            self.equivalent(),
            self.killed(),
            self.total() - self.equivalent(),
            self.kill_ratio()
        );
        for surv in self.survivors() {
            let _ = writeln!(s, "  SURVIVOR: {}", surv.description);
        }
        s
    }
}

/// A named specification predicate: returns `true` when the spec *holds*
/// of the program.
pub type Spec<'a> = (&'a str, &'a dyn Fn(&Program) -> bool);

/// Errors from [`mutation_audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A spec fails on the *original* program — the audit would be
    /// meaningless.
    SpecFailsOnOriginal {
        /// The failing spec's name.
        spec: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::SpecFailsOnOriginal { spec } => {
                write!(f, "spec `{spec}` fails on the original program")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// [`mutation_audit`] over named property checks, session-style: the
/// original program and every mutant get **one**
/// [`Verifier`](crate::verifier::Verifier) session each, so the N
/// specification properties share that mutant's compiled pipeline,
/// transition system and symbolic engine instead of rebuilding them per
/// property. This is the backend of `unity-check --mutate`.
pub fn mutation_audit_checks(
    program: &Program,
    checks: &[crate::verifier::NamedCheck],
    universe: crate::transition::Universe,
    cfg: &crate::space::ScanConfig,
) -> Result<MutationReport, AuditError> {
    let mut session = crate::verifier::Verifier::new(program, cfg.clone()).with_universe(universe);
    mutation_audit_in(&mut session, checks)
}

/// [`mutation_audit_checks`] over an existing session: the
/// original-program pass reuses whatever `session` already memoized
/// (callers that just verified the spec pay nothing again). Mutant
/// programs still get one fresh session each.
pub fn mutation_audit_in(
    session: &mut crate::verifier::Verifier<'_>,
    checks: &[crate::verifier::NamedCheck],
) -> Result<MutationReport, AuditError> {
    let program = session.program();
    let (universe, cfg) = (session.universe(), session.cfg().clone());
    for c in checks {
        if !session.verify(&c.property).passed() {
            return Err(AuditError::SpecFailsOnOriginal {
                spec: c.name.clone(),
            });
        }
    }
    let outcomes = mutants(program)
        .into_iter()
        .map(|m| {
            let equivalent = same_behavior(program, &m.program);
            let killed_by = if equivalent {
                None
            } else {
                let mut session =
                    crate::verifier::Verifier::new(&m.program, cfg.clone()).with_universe(universe);
                checks
                    .iter()
                    .find(|c| !session.verify(&c.property).passed())
                    .map(|c| c.name.clone())
            };
            MutantOutcome {
                description: m.description,
                kind: m.kind,
                equivalent,
                killed_by,
            }
        })
        .collect();
    Ok(MutationReport { outcomes })
}

/// Runs the full audit: generate mutants, detect equivalents, and record
/// the first spec killing each remaining mutant.
pub fn mutation_audit(program: &Program, specs: &[Spec<'_>]) -> Result<MutationReport, AuditError> {
    for (name, spec) in specs {
        if !spec(program) {
            return Err(AuditError::SpecFailsOnOriginal {
                spec: (*name).to_string(),
            });
        }
    }
    let outcomes = mutants(program)
        .into_iter()
        .map(|m| {
            let equivalent = same_behavior(program, &m.program);
            let killed_by = if equivalent {
                None
            } else {
                specs
                    .iter()
                    .find(|(_, spec)| !spec(&m.program))
                    .map(|(name, _)| (*name).to_string())
            };
            MutantOutcome {
                description: m.description,
                kind: m.kind,
                equivalent,
                killed_by,
            }
        })
        .collect();
    Ok(MutationReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_invariant;
    use crate::fair::check_leadsto;
    use crate::space::ScanConfig;
    use crate::transition::Universe;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::{VarId, Vocabulary};

    const X: VarId = VarId(0);

    fn counter() -> Program {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 2).unwrap()).unwrap();
        Program::builder("count", Arc::new(v))
            .init(eq(var(X), int(0)))
            .fair_command("inc", lt(var(X), int(2)), vec![(X, add(var(X), int(1)))])
            .build()
            .unwrap()
    }

    fn spec_inv(p: &Program) -> bool {
        check_invariant(p, &le(var(X), int(2)), &ScanConfig::default()).is_ok()
    }

    fn spec_live(p: &Program) -> bool {
        check_leadsto(
            p,
            &tt(),
            &eq(var(X), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .is_ok()
    }

    fn spec_no_jumps(p: &Program) -> bool {
        crate::check::check_next(
            p,
            &eq(var(X), int(0)),
            &le(var(X), int(1)),
            &ScanConfig::default(),
        )
        .is_ok()
    }

    #[test]
    fn generates_a_mutant_per_point() {
        let ms = mutants(&counter());
        // guard true/false, guard {compare-swap, const-shift x<2 -> x<3},
        // update {op-swap, const-shift}, drop update, drop fairness.
        let kinds: Vec<MutationKind> = ms.iter().map(|m| m.kind).collect();
        for want in [
            MutationKind::GuardTrue,
            MutationKind::GuardFalse,
            MutationKind::CompareSwap,
            MutationKind::ConstShift,
            MutationKind::OpSwap,
            MutationKind::DropUpdate,
            MutationKind::DropFairness,
        ] {
            assert!(kinds.contains(&want), "missing {want:?} in {kinds:?}");
        }
    }

    #[test]
    fn saturation_makes_guard_weakenings_equivalent() {
        // x < 2 -> true: at x = 2 the update clips out of domain -> skip.
        let p = counter();
        let m = mutants(&p)
            .into_iter()
            .find(|m| m.kind == MutationKind::GuardTrue)
            .unwrap();
        assert!(same_behavior(&p, &m.program));
    }

    #[test]
    fn op_swap_changes_behavior_and_is_killed_by_liveness() {
        let p = counter();
        let report = mutation_audit(&p, &[("inv", &spec_inv), ("live", &spec_live)]).unwrap();
        let swap = report
            .outcomes
            .iter()
            .find(|o| o.kind == MutationKind::OpSwap)
            .unwrap();
        assert!(!swap.equivalent);
        assert_eq!(swap.killed_by.as_deref(), Some("live"));
    }

    #[test]
    fn drop_fairness_is_killed_only_by_liveness() {
        let p = counter();
        let report = mutation_audit(&p, &[("inv", &spec_inv), ("live", &spec_live)]).unwrap();
        let dropped = report
            .outcomes
            .iter()
            .find(|o| o.kind == MutationKind::DropFairness)
            .unwrap();
        assert_eq!(dropped.killed_by.as_deref(), Some("live"));
    }

    #[test]
    fn survivor_reveals_a_spec_gap_and_a_new_spec_closes_it() {
        let p = counter();
        // With only inv+live, the x+1 -> x+2 const shift survives (it
        // still reaches x = 2 and never exceeds it).
        let weak = mutation_audit(&p, &[("inv", &spec_inv), ("live", &spec_live)]).unwrap();
        let survivor_descs: Vec<&str> = weak
            .survivors()
            .iter()
            .map(|o| o.description.as_str())
            .collect();
        assert!(
            survivor_descs.iter().any(|d| d.contains("const-shift")),
            "expected the update const-shift to survive: {survivor_descs:?}"
        );
        assert!(weak.kill_ratio() < 1.0);
        // Adding the no-jumps spec kills it.
        let strong = mutation_audit(
            &p,
            &[
                ("inv", &spec_inv),
                ("live", &spec_live),
                ("no-jumps", &spec_no_jumps),
            ],
        )
        .unwrap();
        assert!(
            strong
                .survivors()
                .iter()
                .all(|o| !o.description.contains("update x const-shift")),
            "no-jumps must kill the update const shift: {}",
            strong.summary()
        );
        assert!(strong.kill_ratio() > weak.kill_ratio());
    }

    #[test]
    fn audit_rejects_failing_specs() {
        let p = counter();
        let bad = |prog: &Program| {
            check_invariant(prog, &le(var(X), int(1)), &ScanConfig::default()).is_ok()
        };
        let err = mutation_audit(&p, &[("bad", &bad)]).unwrap_err();
        assert_eq!(err, AuditError::SpecFailsOnOriginal { spec: "bad".into() });
    }

    #[test]
    fn report_arithmetic_is_consistent() {
        let p = counter();
        let report = mutation_audit(&p, &[("inv", &spec_inv), ("live", &spec_live)]).unwrap();
        assert_eq!(
            report.total(),
            report.equivalent() + report.killed() + report.survivors().len()
        );
        assert!(report.summary().contains("kill ratio"));
    }
}
