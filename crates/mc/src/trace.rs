//! Counterexamples and check outcomes.

use std::fmt;

use unity_core::ident::Vocabulary;
use unity_core::state::State;

/// Why a property check failed, with enough detail to reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Counterexample {
    /// An initial state violating `init p`.
    Init {
        /// The offending initial state.
        state: State,
    },
    /// A state/command pair violating `p next q`: `p` holds in `state` but
    /// `q` fails after `command` (`None` = the implicit `skip`).
    Next {
        /// Pre-state satisfying `p`.
        state: State,
        /// Offending command name (`None` for the implicit skip step).
        command: Option<String>,
        /// Post-state violating `q`.
        after: State,
    },
    /// For `transient p`: every fair command has some `p`-state it fails to
    /// falsify; we report one witness per fair command.
    Transient {
        /// For each fair command, a `p`-state it leaves inside `p`.
        witnesses: Vec<(String, State)>,
    },
    /// A command changed the value of an `unchanged e` expression.
    Unchanged {
        /// Pre-state.
        state: State,
        /// Offending command name.
        command: String,
        /// Value before.
        before: i64,
        /// Value after (integers and booleans are both rendered as i64).
        after: i64,
    },
    /// A validity check `⊨ p` failed in this state.
    Validity {
        /// The falsifying state.
        state: State,
    },
    /// A concrete execution path whose final state violates the checked
    /// predicate (bounded/random-walk modes).
    Reach {
        /// States from an initial state (inclusive) to the violating state
        /// (inclusive); adjacent states are one command step apart.
        path: Vec<State>,
    },
    /// A `p ↦ q` violation: a lasso — a finite prefix from a `p ∧ ¬q`
    /// state into a fair trap where `q` never holds.
    LeadsTo {
        /// Prefix of states from the violating `p`-state (inclusive) to the
        /// trap.
        prefix: Vec<State>,
        /// States of the fair trap SCC (every fair command can fire inside
        /// forever while `q` stays false).
        trap: Vec<State>,
    },
}

impl Counterexample {
    /// Renders the counterexample with variable names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> CexDisplay<'a> {
        CexDisplay { cex: self, vocab }
    }
}

/// Display helper for [`Counterexample`].
pub struct CexDisplay<'a> {
    cex: &'a Counterexample,
    vocab: &'a Vocabulary,
}

impl fmt::Display for CexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.vocab;
        match self.cex {
            Counterexample::Init { state } => {
                write!(f, "initial state violates predicate: {}", state.display(v))
            }
            Counterexample::Next {
                state,
                command,
                after,
            } => write!(
                f,
                "from {} via {} reaching {}",
                state.display(v),
                command.as_deref().unwrap_or("skip"),
                after.display(v)
            ),
            Counterexample::Transient { witnesses } => {
                write!(f, "no fair command falsifies the predicate everywhere:")?;
                for (cmd, s) in witnesses {
                    write!(f, " [{} stuck at {}]", cmd, s.display(v))?;
                }
                Ok(())
            }
            Counterexample::Unchanged {
                state,
                command,
                before,
                after,
            } => write!(
                f,
                "command {} changes the expression from {} to {} in {}",
                command,
                before,
                after,
                state.display(v)
            ),
            Counterexample::Validity { state } => {
                write!(f, "falsified in state {}", state.display(v))
            }
            Counterexample::Reach { path } => {
                write!(f, "violating path of {} states", path.len())?;
                if let (Some(first), Some(last)) = (path.first(), path.last()) {
                    write!(f, ": {} ... {}", first.display(v), last.display(v))?;
                }
                Ok(())
            }
            Counterexample::LeadsTo { prefix, trap } => {
                write!(f, "lasso: prefix of {} states", prefix.len())?;
                if let Some(first) = prefix.first() {
                    write!(f, " from {}", first.display(v))?;
                }
                write!(f, " into a fair trap of {} states", trap.len())?;
                if let Some(t) = trap.first() {
                    write!(f, " (e.g. {})", t.display(v))?;
                }
                Ok(())
            }
        }
    }
}

/// Error type for model-checking: a failed property with its counterexample
/// or an infrastructure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// The property does not hold.
    Refuted {
        /// What was being checked (rendered).
        property: String,
        /// The counterexample.
        cex: Counterexample,
    },
    /// The state space exceeds the configured bound.
    SpaceTooLarge {
        /// Actual size (None = overflowed u64).
        size: Option<u64>,
        /// Configured limit.
        limit: u64,
    },
    /// A core-level error (typing etc.).
    Core(unity_core::error::CoreError),
    /// An error reconstructed from its rendered form (deserialized
    /// [`Report`](crate::report::Report)s carry errors as text; the
    /// structure of the original error is not recoverable). Displays
    /// verbatim.
    Message(String),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Refuted { property, .. } => write!(f, "refuted: {property}"),
            McError::SpaceTooLarge { size, limit } => match size {
                Some(n) => write!(f, "state space of {n} states exceeds limit {limit}"),
                None => write!(f, "state space size overflows u64 (limit {limit})"),
            },
            McError::Core(e) => write!(f, "{e}"),
            McError::Message(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for McError {}

impl From<unity_core::error::CoreError> for McError {
    fn from(e: unity_core::error::CoreError) -> Self {
        McError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::domain::Domain;
    use unity_core::value::Value;

    #[test]
    fn renders_counterexamples() {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let s = State::new(vec![Value::Int(2)]);
        let cex = Counterexample::Next {
            state: s.clone(),
            command: Some("inc".into()),
            after: State::new(vec![Value::Int(3)]),
        };
        let text = cex.display(&v).to_string();
        assert!(text.contains("inc"));
        assert!(text.contains("x=2"));
        assert!(text.contains("x=3"));

        let cex = Counterexample::Validity { state: s };
        assert!(cex.display(&v).to_string().contains("falsified"));
    }

    #[test]
    fn error_display() {
        let e = McError::SpaceTooLarge {
            size: Some(1 << 40),
            limit: 1 << 20,
        };
        assert!(e.to_string().contains("exceeds"));
    }
}
