//! Compressed-sparse-row predecessor index over a transition system.
//!
//! The `leadsto` decision procedure propagates *backwards*: "which `¬q`
//! states can reach a fair trap?". The successor table in
//! [`TransitionSystem`] answers the forward question in O(1); answering
//! the backward one from it means rescanning every row until quiescence
//! — the `O(rounds · states · commands)` loop this index replaces.
//!
//! [`PredIndex`] inverts the successor table once into the standard CSR
//! shape: one flat `offsets` array (length `n + 1`) and one flat
//! `edges` array (one entry per stored transition) listing, for each
//! state, the ids of the states with a command stepping onto it. Built
//! once per [`TransitionSystem`] and memoized in the verifier session's
//! `EngineCache` next to the reachable set, it turns each backward
//! propagation into a worklist walk that touches only the rows it
//! marks.
//!
//! Rows list predecessors in ascending source-state order; a source
//! appears once per command stepping onto the target (duplicates are
//! harmless to the marking walks and cheaper than a per-row dedup).
//!
//! [`PredIndex::build_with`] inverts large tables in parallel —
//! per-target atomic counting over source ranges, a sequential prefix
//! sum, atomic-cursor scatter, then a segment-parallel per-row sort
//! that restores the ascending contract — and produces output equal to
//! the sequential build, element for element.

use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

use crate::parallel::{par_find_ranges, ParConfig};
use crate::transition::TransitionSystem;

/// A CSR predecessor index: `row(v)` lists the source states of every
/// stored transition landing on `v`.
#[derive(Debug, Clone)]
pub struct PredIndex {
    /// `edges[offsets[v] .. offsets[v + 1]]` are `v`'s predecessors.
    offsets: Vec<u32>,
    /// Flat predecessor lists (one entry per stored transition).
    edges: Vec<u32>,
}

impl PredIndex {
    /// Inverts the successor table of `ts`. Cost: two passes over the
    /// transitions, no hashing.
    pub fn build(ts: &TransitionSystem) -> Self {
        Self::build_sequential(ts)
    }

    /// [`PredIndex::build`] with explicit parallelism: counting,
    /// scatter, and the row-restoring sort all run over ranges of the
    /// flat tables. The result equals the sequential build element for
    /// element (same offsets, same ascending rows), so callers may mix
    /// the two freely.
    pub fn build_with(ts: &TransitionSystem, par: &ParConfig) -> Self {
        let n = ts.len();
        let m = ts.transition_count();
        if par.threads <= 1 || (m as u64) < par.sequential_cutoff {
            return Self::build_sequential(ts);
        }
        Self::check_bound(m);
        // Per-target in-degrees, counted over source ranges.
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_find_ranges(n as u64, par, |lo, hi| {
            for s in lo..hi {
                for &w in ts.succ_row(s as usize) {
                    counts[w as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
            None::<()>
        });
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i].load(Ordering::Relaxed);
        }
        // Scatter sources through atomic row cursors. Rows come out in
        // nondeterministic order; the sort below restores the ascending
        // contract. (`forbid(unsafe_code)` rules out plain &mut
        // scatter, so the edges start life atomic and convert after.)
        let cursors: Vec<AtomicU32> = offsets[..n].iter().map(|&o| AtomicU32::new(o)).collect();
        let staged: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
        par_find_ranges(n as u64, par, |lo, hi| {
            for s in lo..hi {
                for &w in ts.succ_row(s as usize) {
                    let at = cursors[w as usize].fetch_add(1, Ordering::Relaxed);
                    staged[at as usize].store(s as u32, Ordering::Relaxed);
                }
            }
            None::<()>
        });
        let mut edges: Vec<u32> = staged.into_iter().map(AtomicU32::into_inner).collect();
        // Segment-parallel per-row sort over row-aligned windows.
        let mut segments: Vec<(usize, &mut [u32])> = Vec::new();
        let goal = (m / (par.threads * 4)).max(1);
        let mut rest: &mut [u32] = &mut edges;
        let mut start_edge = 0usize;
        let mut v = 0usize;
        while v < n {
            let mut end_v = v + 1;
            while end_v < n && (offsets[end_v] as usize - start_edge) < goal {
                end_v += 1;
            }
            let end_edge = offsets[end_v] as usize;
            let (seg, tail) = rest.split_at_mut(end_edge - start_edge);
            segments.push((v, seg));
            rest = tail;
            start_edge = end_edge;
            v = end_v;
        }
        let jobs: Mutex<Vec<(usize, &mut [u32])>> = Mutex::new(segments);
        crossbeam::scope(|scope| {
            for _ in 0..par.threads {
                let jobs = &jobs;
                let offsets = &offsets;
                scope.spawn(move |_| loop {
                    let job = jobs.lock().pop();
                    let Some((v0, seg)) = job else { return };
                    let base = offsets[v0] as usize;
                    let mut t = v0;
                    let mut lo = 0usize;
                    while lo < seg.len() {
                        let hi = offsets[t + 1] as usize - base;
                        seg[lo..hi].sort_unstable();
                        lo = hi;
                        t += 1;
                    }
                });
            }
        })
        .expect("predecessor sort worker panicked");
        PredIndex { offsets, edges }
    }

    fn check_bound(m: usize) {
        // Hard bound, not a debug assert: a wrapped u32 offset would
        // corrupt rows silently and could flip a liveness verdict.
        // (At the default `max_states` this needs ≥ 64 commands; the
        // succ table itself is ≥ 16 GiB at that point.)
        assert!(
            m <= u32::MAX as usize,
            "transition table ({m} edges) exceeds u32 predecessor offsets"
        );
    }

    fn build_sequential(ts: &TransitionSystem) -> Self {
        let n = ts.len();
        let m = ts.transition_count();
        Self::check_bound(m);
        // Count in-degrees into offsets[1..], then prefix-sum.
        let mut offsets = vec![0u32; n + 1];
        for s in 0..n {
            for &w in ts.succ_row(s) {
                offsets[w as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Fill rows with a moving cursor per target.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; m];
        for s in 0..n {
            for &w in ts.succ_row(s) {
                let at = cursor[w as usize];
                edges[at as usize] = s as u32;
                cursor[w as usize] = at + 1;
            }
        }
        PredIndex { offsets, edges }
    }

    /// Number of states the index covers.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the index covers no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored predecessor edges (equals the transition
    /// count of the indexed system).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The predecessors of state `v`, ascending, one entry per command
    /// stepping onto `v`.
    #[inline(always)]
    pub fn row(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Serializes the index into the persistent artifact payload (see
    /// [`crate::artifact`] for the framing): the CSR offsets and edge
    /// arrays verbatim.
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        let mut w = crate::artifact::ByteWriter::new();
        w.u32_slice(&self.offsets);
        w.u32_slice(&self.edges);
        w.into_vec()
    }

    /// Rebuilds an index from [`PredIndex::to_artifact_bytes`] output,
    /// validated against the transition system it must invert:
    /// `n_states` and `n_edges` pin the shape, offsets must ascend from
    /// 0 to `n_edges`, and every edge id must be in range. A payload
    /// that disagrees is an error (the store treats it as a cache miss).
    pub fn from_artifact_bytes(
        bytes: &[u8],
        n_states: usize,
        n_edges: usize,
    ) -> Result<Self, String> {
        let mut r = crate::artifact::ByteReader::new(bytes);
        let offsets = r.u32_vec()?;
        let edges = r.u32_vec()?;
        r.finish()?;
        if offsets.len() != n_states + 1 {
            return Err(format!(
                "offset array covers {} states, system has {n_states}",
                offsets.len().saturating_sub(1)
            ));
        }
        if edges.len() != n_edges {
            return Err(format!(
                "edge array has {} entries, system has {n_edges} transitions",
                edges.len()
            ));
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || *offsets.last().expect("len >= 1") as usize != n_edges
        {
            return Err("offsets are not ascending from 0 to the edge count".into());
        }
        if edges.iter().any(|&s| s as usize >= n_states) {
            return Err("predecessor id out of range".into());
        }
        Ok(PredIndex { offsets, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ScanConfig;
    use crate::transition::Universe;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    fn counter(k: i64) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn inverts_the_successor_table_exactly() {
        for universe in [Universe::Reachable, Universe::AllStates] {
            let p = counter(5);
            let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
            let pred = PredIndex::build(&ts);
            assert_eq!(pred.len(), ts.len());
            assert_eq!(pred.edge_count(), ts.transition_count());
            // Every forward edge appears backward, and nothing else.
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); ts.len()];
            for s in 0..ts.len() {
                for &w in ts.succ_row(s) {
                    expect[w as usize].push(s as u32);
                }
            }
            for (v, row) in expect.iter_mut().enumerate() {
                row.sort_unstable();
                assert_eq!(pred.row(v as u32), row.as_slice(), "row {v}");
            }
        }
    }

    #[test]
    fn parallel_build_equals_sequential_element_for_element() {
        // Multi-command grid: rows with duplicates, skew, and empty
        // rows (unreachable in-degrees on the full product).
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 40).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 40).unwrap()).unwrap();
        let p = Program::builder("grid", Arc::new(v))
            .init(and2(eq(var(x), int(0)), eq(var(y), int(0))))
            .fair_command("ix", lt(var(x), int(40)), vec![(x, add(var(x), int(1)))])
            .fair_command("iy", lt(var(y), int(40)), vec![(y, add(var(y), int(1)))])
            .fair_command("rx", tt(), vec![(x, int(0))])
            .build()
            .unwrap();
        for universe in [Universe::Reachable, Universe::AllStates] {
            let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
            let seq = PredIndex::build(&ts);
            for threads in [2usize, 4, 8] {
                let par =
                    PredIndex::build_with(&ts, &crate::parallel::ParConfig::with_threads(threads));
                assert_eq!(par.offsets, seq.offsets, "{universe:?} @ {threads}");
                assert_eq!(par.edges, seq.edges, "{universe:?} @ {threads}");
            }
        }
    }

    #[test]
    fn artifact_bytes_round_trip_exactly() {
        let p = counter(6);
        for universe in [Universe::Reachable, Universe::AllStates] {
            let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
            let pred = PredIndex::build(&ts);
            let bytes = pred.to_artifact_bytes();
            let back =
                PredIndex::from_artifact_bytes(&bytes, ts.len(), ts.transition_count()).unwrap();
            assert_eq!(back.offsets, pred.offsets);
            assert_eq!(back.edges, pred.edges);
        }
    }

    #[test]
    fn artifact_decode_rejects_mismatch_and_corruption() {
        let p = counter(6);
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        let pred = PredIndex::build(&ts);
        let bytes = pred.to_artifact_bytes();
        let (n, m) = (ts.len(), ts.transition_count());
        // Shape disagreements.
        assert!(PredIndex::from_artifact_bytes(&bytes, n + 1, m).is_err());
        assert!(PredIndex::from_artifact_bytes(&bytes, n, m + 1).is_err());
        // Truncations.
        for cut in 0..bytes.len() {
            assert!(
                PredIndex::from_artifact_bytes(&bytes[..cut], n, m).is_err(),
                "cut at {cut}"
            );
        }
        // An out-of-range edge id (last edge → n) is caught.
        let mut bad = bytes.clone();
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&(n as u32).to_le_bytes());
        assert!(PredIndex::from_artifact_bytes(&bad, n, m).is_err());
    }

    #[test]
    fn multi_command_duplicates_are_kept() {
        // Two commands stepping onto the same target from the same
        // source yield two entries.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let p = Program::builder("dup", Arc::new(v))
            .init(not(var(x)))
            .fair_command("a", tt(), vec![(x, tt())])
            .fair_command("b", tt(), vec![(x, tt())])
            .build()
            .unwrap();
        let ts = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        let pred = PredIndex::build(&ts);
        assert_eq!(pred.edge_count(), ts.transition_count());
        // The x = true state receives both commands from both states.
        let target = (0..ts.len() as u32)
            .find(|&id| {
                ts.state(id).get(unity_core::ident::VarId(0))
                    == unity_core::value::Value::Bool(true)
            })
            .unwrap();
        assert_eq!(pred.row(target).len(), 4);
    }
}
