//! Compressed-sparse-row predecessor index over a transition system.
//!
//! The `leadsto` decision procedure propagates *backwards*: "which `¬q`
//! states can reach a fair trap?". The successor table in
//! [`TransitionSystem`] answers the forward question in O(1); answering
//! the backward one from it means rescanning every row until quiescence
//! — the `O(rounds · states · commands)` loop this index replaces.
//!
//! [`PredIndex`] inverts the successor table once into the standard CSR
//! shape: one flat `offsets` array (length `n + 1`) and one flat
//! `edges` array (one entry per stored transition) listing, for each
//! state, the ids of the states with a command stepping onto it. Built
//! once per [`TransitionSystem`] and memoized in the verifier session's
//! `EngineCache` next to the reachable set, it turns each backward
//! propagation into a worklist walk that touches only the rows it
//! marks.
//!
//! Rows list predecessors in ascending source-state order; a source
//! appears once per command stepping onto the target (duplicates are
//! harmless to the marking walks and cheaper than a per-row dedup).

use crate::transition::TransitionSystem;

/// A CSR predecessor index: `row(v)` lists the source states of every
/// stored transition landing on `v`.
#[derive(Debug, Clone)]
pub struct PredIndex {
    /// `edges[offsets[v] .. offsets[v + 1]]` are `v`'s predecessors.
    offsets: Vec<u32>,
    /// Flat predecessor lists (one entry per stored transition).
    edges: Vec<u32>,
}

impl PredIndex {
    /// Inverts the successor table of `ts`. Cost: two passes over the
    /// transitions, no hashing.
    pub fn build(ts: &TransitionSystem) -> Self {
        let n = ts.len();
        let m = ts.transition_count();
        // Hard bound, not a debug assert: a wrapped u32 offset would
        // corrupt rows silently and could flip a liveness verdict.
        // (At the default `max_states` this needs ≥ 64 commands; the
        // succ table itself is ≥ 16 GiB at that point.)
        assert!(
            m <= u32::MAX as usize,
            "transition table ({m} edges) exceeds u32 predecessor offsets"
        );
        // Count in-degrees into offsets[1..], then prefix-sum.
        let mut offsets = vec![0u32; n + 1];
        for s in 0..n {
            for &w in ts.succ_row(s) {
                offsets[w as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Fill rows with a moving cursor per target.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; m];
        for s in 0..n {
            for &w in ts.succ_row(s) {
                let at = cursor[w as usize];
                edges[at as usize] = s as u32;
                cursor[w as usize] = at + 1;
            }
        }
        PredIndex { offsets, edges }
    }

    /// Number of states the index covers.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the index covers no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored predecessor edges (equals the transition
    /// count of the indexed system).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The predecessors of state `v`, ascending, one entry per command
    /// stepping onto `v`.
    #[inline(always)]
    pub fn row(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ScanConfig;
    use crate::transition::Universe;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    fn counter(k: i64) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn inverts_the_successor_table_exactly() {
        for universe in [Universe::Reachable, Universe::AllStates] {
            let p = counter(5);
            let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
            let pred = PredIndex::build(&ts);
            assert_eq!(pred.len(), ts.len());
            assert_eq!(pred.edge_count(), ts.transition_count());
            // Every forward edge appears backward, and nothing else.
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); ts.len()];
            for s in 0..ts.len() {
                for &w in ts.succ_row(s) {
                    expect[w as usize].push(s as u32);
                }
            }
            for (v, row) in expect.iter_mut().enumerate() {
                row.sort_unstable();
                assert_eq!(pred.row(v as u32), row.as_slice(), "row {v}");
            }
        }
    }

    #[test]
    fn multi_command_duplicates_are_kept() {
        // Two commands stepping onto the same target from the same
        // source yield two entries.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let p = Program::builder("dup", Arc::new(v))
            .init(not(var(x)))
            .fair_command("a", tt(), vec![(x, tt())])
            .fair_command("b", tt(), vec![(x, tt())])
            .build()
            .unwrap();
        let ts = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        let pred = PredIndex::build(&ts);
        assert_eq!(pred.edge_count(), ts.transition_count());
        // The x = true state receives both commands from both states.
        let target = (0..ts.len() as u32)
            .find(|&id| {
                ts.state(id).get(unity_core::ident::VarId(0))
                    == unity_core::value::Value::Bool(true)
            })
            .unwrap();
        assert_eq!(pred.row(target).len(), 4);
    }
}
