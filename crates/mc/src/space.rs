//! Full-domain validity and satisfiability scans.
//!
//! The paper's inductive property definitions quantify over *all*
//! type-consistent states (it deliberately avoids the substitution axiom
//! and reachability-based strengthenings), so the kernel's side conditions
//! (`⊨ p`, `⊨ a = b`) are decided by scanning the full domain product.
//! Scans are chunk-parallel over the flat state index (see
//! [`crate::parallel`]).
//!
//! Two evaluation strategies decide the same scans:
//!
//! * the **compiled fast path** (default): predicates lower once to
//!   register bytecode and states stream as packed `u64` words — see
//!   [`crate::compiled`] and `unity_core::expr::compile`;
//! * the **reference path**: the tree-walking evaluator over explicit
//!   [`State`]s, kept as the executable semantics (and for vocabularies
//!   beyond 64 packed bits). `ScanConfig::reference()` forces it; the
//!   differential test suite checks both paths agree verdict-for-verdict.

use unity_core::expr::compile::{CompiledExpr, Scratch};
use unity_core::expr::eval::{eval, eval_bool};
use unity_core::expr::Expr;
use unity_core::ident::Vocabulary;
use unity_core::state::{State, StateSpaceIter};

use crate::compiled::{decode_witness, scan_packed, try_layout};
use crate::parallel::{par_find_ranges, ParConfig};
use crate::trace::{Counterexample, McError};

/// Which evaluation engine decides a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The tree-walking evaluator over explicit [`State`]s — the
    /// semantics of record, and the only engine for vocabularies beyond
    /// 64 packed bits.
    Reference,
    /// The compiled bytecode/packed-state fast path (default).
    #[default]
    Compiled,
    /// The symbolic BDD backend (`unity-symbolic`): state *sets* instead
    /// of state enumeration — the only engine whose cost is independent
    /// of the state count. Checks it does not implement (`leadsto`,
    /// bounded modes) and programs it cannot lower fall back to the
    /// compiled path.
    Symbolic,
}

/// Configuration for scans.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Refuse spaces larger than this many states (enumerating engines
    /// only — the symbolic engine never enumerates, so it ignores this).
    pub max_states: u64,
    /// Parallelism settings.
    pub par: ParConfig,
    /// Project scans onto the *support* of the checked property (the
    /// variables it mentions plus those the relevant commands read or
    /// write). Sound because evaluation cannot depend on the other
    /// variables; this is what makes a *local* component property checkable
    /// at component cost, independent of how many other components share
    /// the vocabulary — the executable face of the paper's insistence on
    /// local specifications.
    pub projection: bool,
    /// Which engine decides checks. The reference tree-walk remains the
    /// semantics of record; this field exists so differential tests (and
    /// bench baselines) can pin any engine.
    pub engine: Engine,
    /// Options for the symbolic engine (variable-order strategy and
    /// sift watermark); ignored by the enumerating engines. Defaults to
    /// static dependency ordering plus dynamic sifting.
    pub symbolic: unity_symbolic::SymbolicOptions,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            max_states: 1 << 26,
            par: ParConfig::default(),
            projection: true,
            engine: Engine::Compiled,
            symbolic: unity_symbolic::SymbolicOptions::default(),
        }
    }
}

impl ScanConfig {
    /// A configuration with projection disabled (full-product scans).
    pub fn without_projection() -> Self {
        ScanConfig {
            projection: false,
            ..Default::default()
        }
    }

    /// A configuration pinned to the tree-walking reference evaluator.
    pub fn reference() -> Self {
        ScanConfig {
            engine: Engine::Reference,
            ..Default::default()
        }
    }

    /// A configuration pinned to the symbolic BDD engine.
    pub fn symbolic() -> Self {
        ScanConfig {
            engine: Engine::Symbolic,
            ..Default::default()
        }
    }

    /// Whether the compiled packed-state machinery may engage (true for
    /// both the compiled and the symbolic engine — the latter falls back
    /// to compiled scans for anything it does not decide symbolically).
    pub fn uses_compiled(&self) -> bool {
        !matches!(self.engine, Engine::Reference)
    }
}

/// A projection of the state space onto a support set: only the support
/// variables are enumerated; all others are pinned at their domain
/// minimum.
pub struct Projection {
    support: Vec<unity_core::ident::VarId>,
    base: State,
    size: u64,
}

impl Projection {
    /// Builds the projection of `vocab` onto `support`. Returns `None` when
    /// the sub-space size overflows.
    pub fn new(
        vocab: &Vocabulary,
        support: &std::collections::BTreeSet<unity_core::ident::VarId>,
    ) -> Option<Projection> {
        let support: Vec<_> = support.iter().copied().collect();
        let mut size: u64 = 1;
        for &v in &support {
            size = size.checked_mul(vocab.domain(v).size())?;
        }
        Some(Projection {
            support,
            base: State::minimum(vocab),
            size,
        })
    }

    /// Number of states in the projected space.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The all-minimum base state (clone it once per worker as the
    /// scratch for [`Projection::decode_into`]).
    pub fn base(&self) -> &State {
        &self.base
    }

    /// Decodes a flat projected index into `out`, overwriting the
    /// support variables (all others keep their minimum from the base
    /// clone). This is the allocation-free form of [`Projection::decode`]:
    /// scan workers reuse one scratch state per chunk instead of cloning
    /// the base per state.
    pub fn decode_into(&self, vocab: &Vocabulary, mut flat: u64, out: &mut State) {
        for &v in self.support.iter().rev() {
            let d = vocab.domain(v);
            out.set(v, d.value_at(flat % d.size()));
            flat /= d.size();
        }
    }

    /// Decodes a flat projected index into a fresh full state
    /// (non-support variables at their minimum).
    pub fn decode(&self, vocab: &Vocabulary, flat: u64) -> State {
        let mut s = self.base.clone();
        self.decode_into(vocab, flat, &mut s);
        s
    }
}

/// The number of states of `vocab`, checked against `cfg.max_states`.
pub fn space_size(vocab: &Vocabulary, cfg: &ScanConfig) -> Result<u64, McError> {
    match vocab.space_size() {
        Some(n) if n <= cfg.max_states => Ok(n),
        other => Err(McError::SpaceTooLarge {
            size: other,
            limit: cfg.max_states,
        }),
    }
}

/// Scans states for a witness, projecting onto `support` when enabled.
/// `support = None` forces a full-product scan. This is the *reference*
/// scan driver: `f` sees explicit states (borrowed — clone to keep one
/// as a witness). The compiled paths go through
/// [`crate::compiled::scan_packed`] instead.
pub fn scan_for<T, F>(
    vocab: &Vocabulary,
    support: Option<&std::collections::BTreeSet<unity_core::ident::VarId>>,
    cfg: &ScanConfig,
    f: F,
) -> Result<Option<T>, McError>
where
    T: Send,
    F: Fn(&State) -> Option<T> + Sync,
{
    if cfg.projection {
        if let Some(support) = support {
            if (support.len() as u64) < vocab.len() as u64 {
                let proj = Projection::new(vocab, support).ok_or(McError::SpaceTooLarge {
                    size: None,
                    limit: cfg.max_states,
                })?;
                if proj.size() > cfg.max_states {
                    return Err(McError::SpaceTooLarge {
                        size: Some(proj.size()),
                        limit: cfg.max_states,
                    });
                }
                return Ok(par_find_ranges(proj.size(), &cfg.par, |lo, hi| {
                    let mut scratch = proj.base().clone();
                    for flat in lo..hi {
                        proj.decode_into(vocab, flat, &mut scratch);
                        if let Some(t) = f(&scratch) {
                            return Some(t);
                        }
                    }
                    None
                }));
            }
        }
    }
    let n = space_size(vocab, cfg)?;
    Ok(par_find_ranges(n, &cfg.par, |lo, hi| {
        (lo..hi).find_map(|flat| f(&StateSpaceIter::decode(vocab, flat)))
    }))
}

/// Session form of [`check_valid`] over a program's vocabulary: under
/// [`Engine::Symbolic`] the session's memoized engine decides the side
/// condition (its `domain` BDD *is* the quantification set); otherwise
/// this is exactly the one-shot scan.
pub(crate) fn check_valid_in(
    program: &unity_core::program::Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut crate::verifier::EngineCache,
) -> Result<(), McError> {
    if crate::symbolic::wants(cfg) {
        p.check_pred(&program.vocab)?;
        if let Some(sym) = cache.symbolic(program, cfg) {
            if let Ok(witness) = sym.check_valid(p) {
                let state = witness.map(|w| sym.space().layout().unpack(w, &program.vocab));
                cache.sym_decided = true;
                return match state {
                    None => Ok(()),
                    Some(state) => Err(McError::Refuted {
                        property: "validity".into(),
                        cex: Counterexample::Validity { state },
                    }),
                };
            }
        }
    }
    check_valid(&program.vocab, p, cfg)
}

/// Session form of [`check_equivalent`]; see [`check_valid_in`].
pub(crate) fn check_equivalent_in(
    program: &unity_core::program::Program,
    a: &Expr,
    b: &Expr,
    cfg: &ScanConfig,
    cache: &mut crate::verifier::EngineCache,
) -> Result<(), McError> {
    if crate::symbolic::wants(cfg) {
        // Type agreement first — the engine lowers happily across
        // types, but the contract is to reject mismatches.
        let ta = a.infer_type(&program.vocab)?;
        let tb = b.infer_type(&program.vocab)?;
        if ta == tb {
            if let Some(sym) = cache.symbolic(program, cfg) {
                if let Ok(witness) = sym.check_equivalent(a, b) {
                    let state = witness.map(|w| sym.space().layout().unpack(w, &program.vocab));
                    cache.sym_decided = true;
                    return match state {
                        None => Ok(()),
                        Some(state) => Err(McError::Refuted {
                            property: "equivalence".into(),
                            cex: Counterexample::Validity { state },
                        }),
                    };
                }
            }
        }
    }
    check_equivalent(&program.vocab, a, b, cfg)
}

/// Checks `⊨ p` (true in every type-consistent state); returns the first
/// falsifying state otherwise. The scan is projected onto `p`'s variables.
pub fn check_valid(vocab: &Vocabulary, p: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    p.check_pred(vocab)?;
    let support = unity_core::expr::vars::free_vars(p);
    let found = 'found: {
        if crate::symbolic::wants(cfg) {
            if let Some(witness) = crate::symbolic::try_check_valid(vocab, p) {
                break 'found witness;
            }
        }
        if let Some(layout) = try_layout(vocab, cfg) {
            if let Ok(prog) = CompiledExpr::compile(p, &layout) {
                let word = scan_packed(vocab, &layout, Some(&support), cfg, || {
                    let prog = &prog;
                    let mut scratch = Scratch::new();
                    move |w: u64| (!prog.eval_packed_bool(w, &mut scratch)).then_some(w)
                })?;
                break 'found word.map(|w| decode_witness(&layout, vocab, w));
            }
        }
        scan_for(vocab, Some(&support), cfg, |s| {
            (!eval_bool(p, s)).then(|| s.clone())
        })?
    };
    match found {
        None => Ok(()),
        Some(state) => Err(McError::Refuted {
            property: "validity".into(),
            cex: Counterexample::Validity { state },
        }),
    }
}

/// Checks `⊨ a = b` (both expressions have the same value in every state).
pub fn check_equivalent(
    vocab: &Vocabulary,
    a: &Expr,
    b: &Expr,
    cfg: &ScanConfig,
) -> Result<(), McError> {
    let ta = a.infer_type(vocab)?;
    let tb = b.infer_type(vocab)?;
    if ta != tb {
        return Err(McError::Core(unity_core::error::CoreError::TypeError {
            expr: "equivalence check".into(),
            expected: ta,
            found: tb,
        }));
    }
    // Fast path: linear normal forms decide the common case (the paper's
    // "removing unused dummies" rewrites are all linear) in O(|expr|).
    match unity_core::expr::linear::linear_equivalent(a, b, vocab) {
        Some(true) => return Ok(()),
        Some(false) => {
            return Err(McError::Refuted {
                property: "equivalence".into(),
                cex: Counterexample::Validity {
                    state: State::minimum(vocab),
                },
            })
        }
        None => {}
    }
    let mut support = unity_core::expr::vars::free_vars(a);
    unity_core::expr::vars::collect(b, &mut support);
    let found = 'found: {
        if crate::symbolic::wants(cfg) {
            if let Some(witness) = crate::symbolic::try_check_equivalent(vocab, a, b) {
                break 'found witness;
            }
        }
        if let Some(layout) = try_layout(vocab, cfg) {
            if let (Ok(pa), Ok(pb)) = (
                CompiledExpr::compile(a, &layout),
                CompiledExpr::compile(b, &layout),
            ) {
                let word = scan_packed(vocab, &layout, Some(&support), cfg, || {
                    let (pa, pb) = (&pa, &pb);
                    let mut scratch = Scratch::new();
                    move |w: u64| {
                        (pa.eval_packed(w, &mut scratch) != pb.eval_packed(w, &mut scratch))
                            .then_some(w)
                    }
                })?;
                break 'found word.map(|w| decode_witness(&layout, vocab, w));
            }
        }
        scan_for(vocab, Some(&support), cfg, |s| {
            (eval(a, s) != eval(b, s)).then(|| s.clone())
        })?
    };
    match found {
        None => Ok(()),
        Some(state) => Err(McError::Refuted {
            property: "equivalence".into(),
            cex: Counterexample::Validity { state },
        }),
    }
}

/// Finds a state satisfying `p`, if any.
pub fn find_satisfying(
    vocab: &Vocabulary,
    p: &Expr,
    cfg: &ScanConfig,
) -> Result<Option<State>, McError> {
    p.check_pred(vocab)?;
    let support = unity_core::expr::vars::free_vars(p);
    if crate::symbolic::wants(cfg) {
        if let Some(witness) = crate::symbolic::try_find_satisfying(vocab, p) {
            return Ok(witness);
        }
    }
    if let Some(layout) = try_layout(vocab, cfg) {
        if let Ok(prog) = CompiledExpr::compile(p, &layout) {
            let word = scan_packed(vocab, &layout, Some(&support), cfg, || {
                let prog = &prog;
                let mut scratch = Scratch::new();
                move |w: u64| prog.eval_packed_bool(w, &mut scratch).then_some(w)
            })?;
            return Ok(word.map(|w| decode_witness(&layout, vocab, w)));
        }
    }
    scan_for(vocab, Some(&support), cfg, |s| {
        eval_bool(p, s).then(|| s.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 7).unwrap()).unwrap();
        v.declare("b", Domain::Bool).unwrap();
        v
    }

    /// All three engines must be exercised by every test below.
    fn engines() -> [ScanConfig; 3] {
        [
            ScanConfig::default(),
            ScanConfig::reference(),
            ScanConfig::symbolic(),
        ]
    }

    #[test]
    fn valid_tautology() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let p = or2(le(var(x), int(3)), gt(var(x), int(3)));
        for cfg in engines() {
            check_valid(&v, &p, &cfg).unwrap();
        }
    }

    #[test]
    fn invalid_reports_state() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let p = le(var(x), int(6));
        for cfg in engines() {
            let err = check_valid(&v, &p, &cfg).unwrap_err();
            match err {
                McError::Refuted {
                    cex: Counterexample::Validity { state },
                    ..
                } => {
                    assert_eq!(state.get(x), unity_core::value::Value::Int(7));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn equivalence() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        for cfg in engines() {
            check_equivalent(&v, &add(var(x), var(x)), &mul(int(2), var(x)), &cfg).unwrap();
            assert!(check_equivalent(&v, &add(var(x), int(1)), &var(x), &cfg).is_err());
            // Mixed types rejected.
            let b = v.lookup("b").unwrap();
            assert!(check_equivalent(&v, &var(b), &var(x), &cfg).is_err());
        }
    }

    #[test]
    fn satisfiability() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        for cfg in engines() {
            let s = find_satisfying(&v, &eq(var(x), int(5)), &cfg)
                .unwrap()
                .unwrap();
            assert_eq!(s.get(x), unity_core::value::Value::Int(5));
            assert!(find_satisfying(&v, &lt(var(x), int(0)), &cfg)
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn space_limit_enforced() {
        let v = vocab();
        for engine in [Engine::Compiled, Engine::Reference] {
            let cfg = ScanConfig {
                max_states: 3,
                engine,
                ..Default::default()
            };
            // `true` has empty support: with projection the scan is a single
            // state and succeeds even under a tiny limit.
            check_valid(&v, &tt(), &cfg).unwrap();
            // A predicate over `x` (8 values) exceeds the limit either way.
            let x = v.lookup("x").unwrap();
            assert!(matches!(
                check_valid(&v, &le(var(x), int(7)), &cfg),
                Err(McError::SpaceTooLarge { .. })
            ));
            // And with projection disabled, even `true` must scan everything.
            let cfg = ScanConfig {
                max_states: 3,
                projection: false,
                engine,
                ..Default::default()
            };
            assert!(matches!(
                check_valid(&v, &tt(), &cfg),
                Err(McError::SpaceTooLarge { .. })
            ));
        }
    }

    #[test]
    fn projection_agrees_with_full_scan() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let b = v.lookup("b").unwrap();
        let preds = [
            le(var(x), int(6)),
            or2(var(b), le(var(x), int(7))),
            implies(var(b), ge(var(x), int(0))),
        ];
        for base in engines() {
            let with = base.clone();
            let without = ScanConfig {
                projection: false,
                ..base
            };
            for p in &preds {
                assert_eq!(
                    check_valid(&v, p, &with).is_ok(),
                    check_valid(&v, p, &without).is_ok()
                );
            }
        }
    }

    #[test]
    fn compiled_and_reference_verdicts_agree() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let b = v.lookup("b").unwrap();
        let preds = [
            tt(),
            ff(),
            le(var(x), int(7)),
            le(var(x), int(6)),
            iff(var(b), ge(var(x), int(4))),
            implies(
                and2(var(b), ge(var(x), int(2))),
                gt(add(var(x), int(1)), int(2)),
            ),
        ];
        for p in &preds {
            assert_eq!(
                check_valid(&v, p, &ScanConfig::default()).is_ok(),
                check_valid(&v, p, &ScanConfig::reference()).is_ok(),
                "engines disagree on {p:?}"
            );
        }
    }
}
