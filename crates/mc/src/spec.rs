//! Specification files: programs plus named property checks.
//!
//! A `.unity` file contains any number of `program ... end` blocks
//! (the [`unity_core::dsl`] syntax) followed by optional `spec ... end`
//! blocks listing properties to check on the *composition* of all
//! programs:
//!
//! ```text
//! program Counter0
//!   var c0 : int 0..2 local
//!   var C : int 0..4
//!   init c0 == 0 && C == 0
//!   fair cmd a0: c0 < 2 -> c0 := c0 + 1, C := C + 1
//! end
//!
//! spec Sys
//!   conservation: invariant C == sum(c0)
//!   progress:     true leadsto C == 2
//! end
//! ```
//!
//! Each spec line is `[name:] <property>` with the paper's property
//! syntax (`init`, `transient`, `stable`, `invariant`, `unchanged`,
//! `p next q`, `p leadsto q`). `//` comments and blank lines are
//! ignored. This is the input format of the `unity-check` binary.

use unity_core::compose::{InitSatCheck, System};
use unity_core::dsl;
use unity_core::error::CoreError;

// The named-check shape lives with the verifier session (spec files
// parse straight into `Verifier::verify_all` input).
pub use crate::verifier::NamedCheck;

/// A parsed specification file: the composed system plus its checks.
#[derive(Debug)]
pub struct SpecFile {
    /// The composition of every `program` block (vocabularies merged by
    /// name).
    pub system: System,
    /// Checks from every `spec` block, in file order.
    pub checks: Vec<NamedCheck>,
}

fn parse_err(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::Parse {
        line: line.min(u32::MAX as usize) as u32,
        col: 1,
        msg: msg.into(),
    }
}

/// Strips a `//` comment (the DSL has no string literals, so a bare
/// scan is exact).
fn uncomment(line: &str) -> &str {
    match line.find("//") {
        Some(k) => &line[..k],
        None => line,
    }
}

/// Splits `src` into `program` source text and `spec` blocks
/// (`(name, [(line_no, text)])`).
#[allow(clippy::type_complexity)]
fn split_blocks(src: &str) -> Result<(String, Vec<(String, Vec<(usize, String)>)>), CoreError> {
    #[derive(PartialEq)]
    enum Mode {
        Top,
        Program,
        Spec,
    }
    let mut mode = Mode::Top;
    let mut program_src = String::new();
    let mut specs: Vec<(String, Vec<(usize, String)>)> = Vec::new();
    for (k, raw) in src.lines().enumerate() {
        let line_no = k + 1;
        let line = uncomment(raw).trim();
        let first = line.split_whitespace().next().unwrap_or("");
        match mode {
            Mode::Top => match first {
                "" => {}
                "program" => {
                    mode = Mode::Program;
                    program_src.push_str(raw);
                    program_src.push('\n');
                }
                "spec" => {
                    let name = line["spec".len()..].trim();
                    if name.is_empty() {
                        return Err(parse_err(line_no, "spec block needs a name"));
                    }
                    specs.push((name.to_string(), Vec::new()));
                    mode = Mode::Spec;
                }
                other => {
                    return Err(parse_err(
                        line_no,
                        format!("expected `program` or `spec`, found `{other}`"),
                    ))
                }
            },
            Mode::Program => {
                program_src.push_str(raw);
                program_src.push('\n');
                if first == "end" {
                    mode = Mode::Top;
                }
            }
            Mode::Spec => {
                if first == "end" {
                    mode = Mode::Top;
                } else if !line.is_empty() {
                    specs
                        .last_mut()
                        .expect("inside a spec block")
                        .1
                        .push((line_no, line.to_string()));
                }
            }
        }
    }
    if mode != Mode::Top {
        return Err(parse_err(
            src.lines().count(),
            "unterminated block (missing `end`)",
        ));
    }
    Ok((program_src, specs))
}

/// Parses a full specification file and composes its programs.
pub fn load_spec(src: &str) -> Result<SpecFile, CoreError> {
    let (program_src, spec_blocks) = split_blocks(src)?;
    let programs = dsl::parse_programs(&program_src)?;
    if programs.is_empty() {
        return Err(parse_err(1, "no `program` blocks in specification"));
    }
    let system = System::compose_merging(&programs, InitSatCheck::BoundedExhaustive(1 << 22))?;
    let vocab = system.vocab().clone();

    let mut checks = Vec::new();
    let mut anon = 0usize;
    for (_block, lines) in &spec_blocks {
        for (line_no, text) in lines {
            // `label: property` — a label is a leading identifier followed
            // by `:` that is NOT a property keyword. (Property syntax never
            // begins `ident:`.)
            let (name, prop_text) = match text.split_once(':') {
                Some((l, rest))
                    if !l.trim().is_empty()
                        && l.trim().chars().all(|c| c.is_alphanumeric() || c == '_') =>
                {
                    (l.trim().to_string(), rest)
                }
                _ => {
                    anon += 1;
                    (format!("check{anon}"), text.as_str())
                }
            };
            let property = dsl::parse_property(prop_text, &vocab)
                .map_err(|e| parse_err(*line_no, format!("in check `{name}`: {e}")))?;
            checks.push(NamedCheck {
                name,
                property,
                line: *line_no,
            });
        }
    }
    Ok(SpecFile { system, checks })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
// Two counters sharing C.
program Counter0
  var c0 : int 0..2 local
  var C : int 0..4
  init c0 == 0 && C == 0
  fair cmd a0: c0 < 2 -> c0 := c0 + 1, C := C + 1
end

program Counter1
  var c1 : int 0..2 local
  var C : int 0..4
  init c1 == 0 && C == 0
  fair cmd a1: c1 < 2 -> c1 := c1 + 1, C := C + 1
end

spec Sys
  conservation: invariant C == sum(c0, c1)
  // an unlabeled check
  true leadsto C == 4
end
"#;

    #[test]
    fn loads_programs_and_checks() {
        let spec = load_spec(TOY).unwrap();
        assert_eq!(spec.system.len(), 2);
        assert_eq!(spec.checks.len(), 2);
        assert_eq!(spec.checks[0].name, "conservation");
        assert_eq!(spec.checks[0].property.kind(), "invariant");
        assert_eq!(spec.checks[1].name, "check1");
        assert_eq!(spec.checks[1].property.kind(), "leadsto");
    }

    #[test]
    fn checks_reference_merged_vocabulary() {
        let spec = load_spec(TOY).unwrap();
        assert_eq!(spec.system.vocab().len(), 3, "c0, C, c1 merged");
    }

    #[test]
    fn spec_without_name_is_rejected() {
        let src = "program P\n  var x : bool\n  init !x\nend\nspec\n  stable x\nend";
        let err = load_spec(src).unwrap_err();
        assert!(err.to_string().contains("spec block needs a name"));
    }

    #[test]
    fn unterminated_block_is_rejected() {
        let src = "program P\n  var x : bool\n  init !x";
        assert!(load_spec(src).is_err());
    }

    #[test]
    fn bad_property_reports_line_and_name() {
        let src = "program P\n  var x : bool\n  init !x\nend\nspec S\n  mystery: invariant zz\nend";
        let err = load_spec(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mystery"), "{msg}");
    }

    #[test]
    fn files_with_no_programs_are_rejected() {
        assert!(load_spec("spec S\nend").is_err());
        assert!(load_spec("").is_err());
    }

    #[test]
    fn stray_toplevel_text_is_rejected() {
        let err = load_spec("banana").unwrap_err();
        assert!(err.to_string().contains("banana"));
    }
}
