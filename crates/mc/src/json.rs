//! Hand-rolled RFC 8259 JSON core shared by reports, the verdict
//! journal, and the `unity-serve` wire protocol.
//!
//! The workspace deliberately carries no JSON dependency; this module
//! is the single parser/writer behind every JSON surface in the stack.
//! Two deliberate restrictions keep it honest for machine-to-machine
//! use:
//!
//! - **Numbers are integers** ([`Json::Int`], `i128`). No schema in the
//!   repo emits floats; derived ratios are recomputed from counters.
//! - **Duplicate object keys are rejected.** RFC 8259 leaves duplicate
//!   behavior implementation-defined, which is exactly the ambiguity a
//!   replayed journal or a network peer can exploit — two parsers
//!   disagreeing on which `"verdict"` wins is a corruption vector, so
//!   the parser fails fast instead.
//!
//! The parser also rejects trailing data after the top-level value,
//! floats, unpaired `\u` surrogates, and nesting deeper than
//! [`MAX_DEPTH`] (hostile input fails with an error, not a stack
//! overflow).
//!
//! ```
//! use unity_mc::json::Json;
//! let v = Json::parse("{\"a\":1,\"b\":[true,null]}").unwrap();
//! assert_eq!(v.field("a").unwrap().as_int().unwrap(), 1);
//! // Duplicate keys are corruption, not a preference:
//! assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
//! ```

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are integers — no schema in this
/// workspace emits floats (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (floats are rejected at parse time).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order. Keys are unique (the parser rejects
    /// duplicates).
    Obj(Vec<(String, Json)>),
}

/// Nesting bound for the parser: far above anything the writers emit
/// (the deepest schema nests ~6 levels), small enough that hostile
/// input fails with an error instead of a stack overflow.
pub const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses one JSON value covering the entire input (trailing data
    /// is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; errors on non-objects and missing
    /// keys (parsed objects never contain duplicates).
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            other => Err(format!("expected object with `{key}`, got {other:?}")),
        }
    }

    /// The string payload, or an error for any other variant.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The integer payload, or an error for any other variant.
    pub fn as_int(&self) -> Result<i128, String> {
        match self {
            Json::Int(n) => Ok(*n),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The boolean payload, or an error for any other variant.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    /// The array items, or an error for any other variant.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Serializes this value back to compact JSON. `parse ∘ write` is
    /// the identity on parsed values.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Json::write`] into a fresh string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields: Vec<(String, Json)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key_at = *pos;
                let key = parse_string(bytes, pos)?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key `{key}` at byte {key_at}"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!("floats are not part of any schema (byte {start})"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<i128>().ok())
        .map(Json::Int)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // The writers never emit surrogate pairs (only
                        // control characters); reject surrogates.
                        out.push(
                            char::from_u32(hex)
                                .ok_or_else(|| format!("bad \\u codepoint at byte {pos}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged — the input is a &str, so they're
                // valid).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let ch = std::str::from_utf8(&s[..ch_len])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                out.push_str(ch);
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_write_round_trips() {
        let src = r#"{"a":1,"b":[true,false,null,-7],"c":"x\"y\n","d":{"e":[]}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("null,").is_err());
        assert!(Json::parse("{\"a\":1}{\"b\":2}").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = Json::parse("{\"a\":1,\"a\":2}").unwrap_err();
        assert!(err.contains("duplicate key `a`"), "{err}");
        // Nested objects are policed too.
        assert!(Json::parse("{\"o\":{\"k\":1,\"k\":1}}").is_err());
        // Distinct keys are fine; same key in sibling objects is fine.
        assert!(Json::parse("{\"a\":{\"k\":1},\"b\":{\"k\":2}}").is_ok());
    }

    #[test]
    fn rejects_truncated_input() {
        for src in [
            "",
            "{",
            "{\"a\"",
            "{\"a\":",
            "{\"a\":1",
            "{\"a\":1,",
            "[1,2",
            "\"unterminated",
            "\"half escape\\",
            "tru",
            "-",
        ] {
            assert!(Json::parse(src).is_err(), "accepted truncated {src:?}");
        }
    }

    #[test]
    fn rejects_bad_escapes() {
        assert!(Json::parse("\"\\q\"").is_err(), "unknown escape");
        assert!(Json::parse("\"\\u12\"").is_err(), "short hex");
        assert!(Json::parse("\"\\uzzzz\"").is_err(), "non-hex");
        assert!(Json::parse("\"\\ud800\"").is_err(), "lone surrogate");
        assert!(Json::parse("\"\\udfff\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_floats_and_bad_numbers() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("2E2").is_err());
        assert!(Json::parse("--3").is_err());
        // i128 overflow is an error, not a wrap.
        assert!(Json::parse("170141183460469231731687303715884105728").is_err());
    }

    #[test]
    fn hostile_nesting_errors_without_overflow() {
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        assert!(Json::parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn escapes_and_unicode_survive() {
        let v = Json::Str("tab\t nl\n q\" bs\\ nul\u{1} é€".into());
        let s = v.to_string_compact();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn accepted_escape_forms_decode() {
        let v = Json::parse("\"\\u0041\\/\\b\\f\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "A/\u{8}\u{c}");
    }

    #[test]
    fn field_and_accessors_report_type_errors() {
        let v = Json::parse("{\"n\":3}").unwrap();
        assert!(v.field("missing").is_err());
        assert!(v.field("n").unwrap().as_str().is_err());
        assert!(v.field("n").unwrap().as_bool().is_err());
        assert!(v.field("n").unwrap().as_arr().is_err());
        assert_eq!(v.field("n").unwrap().as_int().unwrap(), 3);
        assert!(Json::Null.field("n").is_err());
    }
}
