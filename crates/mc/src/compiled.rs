//! The compiled fast path of the model checker.
//!
//! Every hot loop in this crate quantifies a predicate (or a command
//! step) over a huge, regular index space. This module bridges
//! `unity-core`'s compilation layer
//! ([`unity_core::expr::compile`]) into those loops:
//!
//! * [`CompiledProgram`] lowers a whole [`Program`] once per check —
//!   init predicate plus every command's guard and updates — into
//!   register bytecode over a [`PackedLayout`];
//! * [`scan_packed`] runs a chunk-parallel, allocation-free scan over a
//!   (possibly projected) packed state space: each worker walks its
//!   range with an incremental mixed-radix [`SupportCursor`] and a
//!   per-chunk [`Scratch`](unity_core::expr::compile::Scratch) register file — no per-state heap traffic at
//!   all;
//! * [`try_layout`] is the gate: the fast path engages exactly when the
//!   vocabulary packs into 64 bits and compilation succeeds (true for
//!   every shipped system), and callers fall back to the tree-walking
//!   reference semantics otherwise. `ScanConfig::compiled = false`
//!   forces the reference path — the differential test suite runs both
//!   and demands identical verdicts.

use std::collections::BTreeSet;

use unity_core::expr::compile::{
    CompileError, CompiledCommand, CompiledExpr, PackedLayout, SupportCursor,
};
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::state::State;

use crate::parallel::par_find_ranges;
use crate::space::ScanConfig;
use crate::trace::McError;

/// The packed layout for `vocab` if the compiled fast path is enabled
/// and applicable.
pub fn try_layout(vocab: &Vocabulary, cfg: &ScanConfig) -> Option<PackedLayout> {
    if !cfg.uses_compiled() {
        return None;
    }
    PackedLayout::new(vocab)
}

/// A program lowered for packed execution: compiled `init` and compiled
/// commands, in command order.
pub struct CompiledProgram {
    /// The layout shared by every compiled part.
    pub layout: PackedLayout,
    /// Compiled `initially` predicate.
    pub init: CompiledExpr,
    /// Compiled commands (same order as `program.commands`).
    pub commands: Vec<CompiledCommand>,
}

impl CompiledProgram {
    /// Lowers `program` over `layout`.
    pub fn compile(program: &Program, layout: PackedLayout) -> Result<Self, CompileError> {
        Ok(CompiledProgram {
            init: CompiledExpr::compile(&program.init, &layout)?,
            commands: program
                .commands
                .iter()
                .map(|c| CompiledCommand::compile(c, &layout))
                .collect::<Result<_, _>>()?,
            layout,
        })
    }

    /// Lowers `program` when the fast path applies (layout fits and
    /// every expression compiles).
    pub fn try_compile(program: &Program, cfg: &ScanConfig) -> Option<Self> {
        let layout = try_layout(&program.vocab, cfg)?;
        Self::compile(program, layout).ok()
    }
}

/// The effective support of a projected scan: the given support when
/// projection is enabled and strictly smaller than the vocabulary, the
/// full vocabulary otherwise. Returned in `VarId` order, which keeps
/// packed enumeration in the same canonical order as the reference
/// scans.
fn effective_support(
    vocab: &Vocabulary,
    support: Option<&BTreeSet<VarId>>,
    cfg: &ScanConfig,
) -> Vec<VarId> {
    if cfg.projection {
        if let Some(s) = support {
            if s.len() < vocab.len() {
                return s.iter().copied().collect();
            }
        }
    }
    vocab.ids().collect()
}

/// The projected sub-space size, checked against `cfg.max_states`.
fn projected_size(
    layout: &PackedLayout,
    support: &[VarId],
    cfg: &ScanConfig,
) -> Result<u64, McError> {
    let mut size: u64 = 1;
    for v in support {
        size = size
            .checked_mul(layout.domain_size(v.index()))
            .ok_or(McError::SpaceTooLarge {
                size: None,
                limit: cfg.max_states,
            })?;
    }
    if size > cfg.max_states {
        return Err(McError::SpaceTooLarge {
            size: Some(size),
            limit: cfg.max_states,
        });
    }
    Ok(size)
}

/// Chunk-parallel scan over the (projected) packed state space.
///
/// `mk` builds one closure per worker chunk; the closure sees packed
/// words in canonical order and returns a witness to stop the scan.
/// Non-support variables are pinned at their domain minimum — the same
/// convention as the reference [`crate::space::Projection`].
pub fn scan_packed<T, Mk, G>(
    vocab: &Vocabulary,
    layout: &PackedLayout,
    support: Option<&BTreeSet<VarId>>,
    cfg: &ScanConfig,
    mk: Mk,
) -> Result<Option<T>, McError>
where
    T: Send,
    Mk: Fn() -> G + Sync,
    G: FnMut(u64) -> Option<T>,
{
    let support = effective_support(vocab, support, cfg);
    let size = projected_size(layout, &support, cfg)?;
    Ok(par_find_ranges(size, &cfg.par, |lo, hi| {
        let mut g = mk();
        let mut cursor: SupportCursor = layout
            .support_cursor(&support, lo)
            .expect("size already validated");
        for _ in lo..hi {
            if let Some(t) = g(cursor.word()) {
                return Some(t);
            }
            cursor.advance(layout);
        }
        None
    }))
}

/// Decodes a packed witness into a [`State`] (cold path: only on
/// counterexamples).
pub fn decode_witness(layout: &PackedLayout, vocab: &Vocabulary, word: u64) -> State {
    layout.unpack(word, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::expr::compile::Scratch;
    use unity_core::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 7).unwrap()).unwrap();
        v.declare("b", Domain::Bool).unwrap();
        v.declare("y", Domain::int_range(-2, 2).unwrap()).unwrap();
        v
    }

    #[test]
    fn try_layout_respects_the_config_gate() {
        let v = vocab();
        assert!(try_layout(&v, &ScanConfig::default()).is_some());
        assert!(try_layout(&v, &ScanConfig::reference()).is_none());
    }

    #[test]
    fn packed_scan_finds_the_same_witnesses_as_reference_enumeration() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        let p = and2(eq(var(x), int(5)), eq(var(y), int(-2)));
        let prog = CompiledExpr::compile(&p, &layout).unwrap();
        let cfg = ScanConfig::default();
        // Full scan (no projection argument).
        let found = scan_packed(&v, &layout, None, &cfg, || {
            let mut scratch = Scratch::new();
            let prog = &prog;
            move |w: u64| prog.eval_packed_bool(w, &mut scratch).then_some(w)
        })
        .unwrap()
        .expect("satisfiable");
        let s = decode_witness(&layout, &v, found);
        assert_eq!(s.get(x), unity_core::value::Value::Int(5));
        assert_eq!(s.get(y), unity_core::value::Value::Int(-2));
    }

    #[test]
    fn projection_pins_nonsupport_variables() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        let b = v.lookup("b").unwrap();
        let support: BTreeSet<VarId> = [b].into_iter().collect();
        let cfg = ScanConfig::default();
        let seen = parking_lot::Mutex::new(Vec::new());
        let collected = scan_packed(&v, &layout, Some(&support), &cfg, || {
            |w: u64| {
                seen.lock().push(w);
                None::<u64>
            }
        });
        assert!(collected.unwrap().is_none());
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 2, "projected space is just {{b}}");
        for w in seen {
            let s = decode_witness(&layout, &v, w);
            assert_eq!(
                s.get(v.lookup("x").unwrap()),
                unity_core::value::Value::Int(0)
            );
            assert_eq!(
                s.get(v.lookup("y").unwrap()),
                unity_core::value::Value::Int(-2)
            );
        }
    }

    #[test]
    fn space_limit_enforced_on_packed_scans() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        let cfg = ScanConfig {
            max_states: 3,
            ..Default::default()
        };
        let r = scan_packed(&v, &layout, None, &cfg, || |_w: u64| None::<u64>);
        assert!(matches!(r, Err(McError::SpaceTooLarge { .. })));
    }

    #[test]
    fn compiled_program_steps_agree_with_reference_on_every_state() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 5).unwrap()).unwrap();
        let b = v.declare("b", Domain::Bool).unwrap();
        let vocab = Arc::new(v);
        let program = Program::builder("p", vocab.clone())
            .init(and2(eq(var(x), int(0)), not(var(b))))
            .fair_command("inc", lt(var(x), int(5)), vec![(x, add(var(x), int(1)))])
            .command("flip", var(b), vec![(b, not(var(b)))])
            .fair_command("wrap", tt(), vec![(x, rem(add(var(x), int(1)), int(6)))])
            .build()
            .unwrap();
        let cp = CompiledProgram::try_compile(&program, &ScanConfig::default()).unwrap();
        let mut scratch = Scratch::new();
        for s in StateSpaceIter::new(&vocab) {
            let w = cp.layout.pack(&s);
            assert_eq!(
                cp.init.eval_packed_bool(w, &mut scratch),
                program.satisfies_init(&s)
            );
            for (c, cc) in program.commands.iter().zip(&cp.commands) {
                let expect = c.step(&s, &vocab);
                let got = cc.step_packed(w, &cp.layout, &mut scratch);
                assert_eq!(cp.layout.unpack(got, &vocab), expect, "cmd {}", c.name);
            }
        }
    }
}
