//! Machine-readable verification reports.
//!
//! [`Report`] is what [`Verifier::verify_all`](crate::verifier::Verifier)
//! produces: one [`Verdict`] per named check plus the session context
//! (program, variable order, engine, universe, wall time). It is the
//! single backend behind every `unity-check` output mode — the
//! PASS/FAIL lines, `--json`, and the simulation monitors all render
//! from it.
//!
//! The JSON shape is **stable** (`"schema": 1`) and round-trips:
//! [`Report::to_json`] and [`Report::from_json`] are exact inverses on
//! the serialized form. States serialize as value arrays in vocabulary
//! order (`vars` gives the names), booleans as JSON booleans, integers
//! as numbers — the same conventions as `unity-sim`'s trace export. The
//! writer and reader are hand-rolled per RFC 8259 (the workspace
//! deliberately carries no JSON dependency; the vendored `serde` derive
//! is a marker).
//!
//! ```
//! use unity_mc::prelude::*;
//! let report = Report {
//!     program: "toy".into(),
//!     vars: vec!["x".into()],
//!     engine: Engine::Compiled,
//!     universe: Universe::Reachable,
//!     checks: vec![],
//!     sim: vec![],
//!     elapsed: std::time::Duration::from_millis(1),
//! };
//! let json = report.to_json();
//! assert_eq!(Report::from_json(&json).unwrap().to_json(), json);
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use unity_core::state::State;
use unity_core::value::Value;
use unity_symbolic::SymStats;

use crate::json::{write_string as json_string, Json};
use crate::space::Engine;
use crate::trace::{Counterexample, McError};
use crate::transition::Universe;
use crate::verifier::{DischargeInfo, Outcome, Verdict, VerdictStats};

/// One named check's result inside a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[must_use = "a check report carries the check's outcome"]
pub struct CheckReport {
    /// Check label.
    pub name: String,
    /// 1-based source line (0 = not from a file).
    pub line: usize,
    /// The structured verdict.
    pub verdict: Verdict,
}

/// One invariant monitor's outcome from a weakly-fair simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCheck {
    /// Monitor label (the invariant check's name).
    pub name: String,
    /// Steps simulated.
    pub steps: u64,
    /// Whether the invariant held throughout.
    pub passed: bool,
    /// First violating step, if any.
    pub violation_step: Option<u64>,
    /// Post-state of the first violation, if captured.
    pub violation_state: Option<State>,
}

/// A full verification run: the session context plus every check's
/// verdict. Serializable ([`Report::to_json`]) with a stable schema;
/// see the [module docs](crate::report) for a round-trip example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[must_use = "a report carries every check's outcome; inspect or serialize it"]
pub struct Report {
    /// The checked program's name.
    pub program: String,
    /// Variable names in vocabulary order (the decoding key for every
    /// serialized state).
    pub vars: Vec<String>,
    /// The engine the session was configured with.
    pub engine: Engine,
    /// The universe `leadsto` checks quantified over.
    pub universe: Universe,
    /// Per-check results, in check order.
    pub checks: Vec<CheckReport>,
    /// Simulation monitor results (empty unless a simulation ran).
    pub sim: Vec<SimCheck>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl Report {
    /// Whether every check passed and no simulation monitor fired.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.verdict.passed()) && self.sim.iter().all(|s| s.passed)
    }

    /// The first check that ended in an infrastructure error, if any.
    pub fn first_error(&self) -> Option<&CheckReport> {
        self.checks.iter().find(|c| c.verdict.error().is_some())
    }

    /// Serializes to the stable JSON schema (`"schema": 1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.checks.len() * 192);
        out.push_str("{\"schema\":1,\"program\":");
        json_string(&mut out, &self.program);
        out.push_str(",\"engine\":");
        json_string(&mut out, engine_str(self.engine));
        out.push_str(",\"universe\":");
        json_string(&mut out, universe_str(self.universe));
        out.push_str(",\"vars\":[");
        for (k, v) in self.vars.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            json_string(&mut out, v);
        }
        let _ = write!(
            out,
            "],\"elapsed_ns\":{},\"checks\":[",
            self.elapsed.as_nanos()
        );
        for (k, c) in self.checks.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            write_check(&mut out, c);
        }
        out.push_str("],\"sim\":[");
        for (k, s) in self.sim.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            write_sim(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Parses a report serialized by [`Report::to_json`]. Errors
    /// ([`McError::Message`] inside verdicts) come back in rendered
    /// form; everything else reconstructs exactly —
    /// `Report::from_json(&r.to_json())?.to_json() == r.to_json()`.
    ///
    /// The parser ([`Json::parse`]) rejects trailing garbage after the
    /// top-level object, duplicate keys, floats, and malformed escapes
    /// — journal replay depends on corrupt records failing here.
    pub fn from_json(src: &str) -> Result<Report, String> {
        let root = Json::parse(src)?;
        Report::from_value(&root)
    }

    /// Reconstructs a report from an already-parsed [`Json`] value
    /// (e.g. one field of a larger journal record).
    pub fn from_value(root: &Json) -> Result<Report, String> {
        if root.field("schema")?.as_int()? != 1 {
            return Err("unsupported report schema".into());
        }
        let vars: Vec<String> = root
            .field("vars")?
            .as_arr()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Result<_, _>>()?;
        let checks = root
            .field("checks")?
            .as_arr()?
            .iter()
            .map(read_check)
            .collect::<Result<_, _>>()?;
        let sim = root
            .field("sim")?
            .as_arr()?
            .iter()
            .map(read_sim)
            .collect::<Result<_, _>>()?;
        Ok(Report {
            program: root.field("program")?.as_str()?.to_string(),
            vars,
            engine: engine_from(root.field("engine")?.as_str()?)?,
            universe: universe_from(root.field("universe")?.as_str()?)?,
            checks,
            sim,
            elapsed: duration_from(root.field("elapsed_ns")?.as_int()?),
        })
    }
}

fn engine_str(e: Engine) -> &'static str {
    match e {
        Engine::Reference => "reference",
        Engine::Compiled => "compiled",
        Engine::Symbolic => "symbolic",
    }
}

fn engine_from(s: &str) -> Result<Engine, String> {
    match s {
        "reference" => Ok(Engine::Reference),
        "compiled" => Ok(Engine::Compiled),
        "symbolic" => Ok(Engine::Symbolic),
        other => Err(format!("unknown engine `{other}`")),
    }
}

fn universe_str(u: Universe) -> &'static str {
    match u {
        Universe::Reachable => "reachable",
        Universe::AllStates => "all",
    }
}

fn universe_from(s: &str) -> Result<Universe, String> {
    match s {
        "reachable" => Ok(Universe::Reachable),
        "all" => Ok(Universe::AllStates),
        other => Err(format!("unknown universe `{other}`")),
    }
}

fn duration_from(ns: i128) -> Duration {
    Duration::from_nanos(ns.clamp(0, u64::MAX as i128) as u64)
}

// ---------------------------------------------------------------- writer

fn write_check(out: &mut String, c: &CheckReport) {
    out.push_str("{\"name\":");
    json_string(out, &c.name);
    let _ = write!(out, ",\"line\":{},\"property\":", c.line);
    json_string(out, &c.verdict.property);
    let verdict = match &c.verdict.outcome {
        Outcome::Pass => "pass",
        Outcome::Fail { .. } => "fail",
        Outcome::Error { .. } => "error",
    };
    out.push_str(",\"verdict\":");
    json_string(out, verdict);
    out.push_str(",\"engine\":");
    json_string(out, engine_str(c.verdict.engine));
    let _ = write!(
        out,
        ",\"elapsed_ns\":{},\"stats\":",
        c.verdict.elapsed.as_nanos()
    );
    write_stats(out, &c.verdict.stats);
    out.push_str(",\"counterexample\":");
    match &c.verdict.outcome {
        Outcome::Fail { cex } => write_cex(out, cex),
        _ => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    match &c.verdict.outcome {
        Outcome::Error { error } => json_string(out, &error.to_string()),
        _ => out.push_str("null"),
    }
    // Additive field (schema unchanged): only compositional sessions
    // emit it, and reports without it read back as `None`.
    if let Some(d) = &c.verdict.discharge {
        out.push_str(",\"discharge\":{\"rule\":");
        json_string(out, &d.rule);
        out.push_str(",\"components\":[");
        for (k, i) in d.components.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{i}");
        }
        let _ = write!(out, "],\"cached\":{}}}", d.cached);
    }
    out.push('}');
}

fn write_stats(out: &mut String, stats: &VerdictStats) {
    match stats {
        VerdictStats::Unmeasured => out.push_str("null"),
        VerdictStats::Explicit {
            states,
            transitions,
            scanned_states,
            pred_edges,
            worklist_pushes,
            build_ms,
            shards,
            steals,
            cross_shard_edges,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"explicit\",\"states\":{states},\"transitions\":{transitions},\
                 \"scanned_states\":{scanned_states},\"pred_edges\":{pred_edges},\
                 \"worklist_pushes\":{worklist_pushes},\"build_ms\":{build_ms},\
                 \"shards\":{shards},\"steals\":{steals},\
                 \"cross_shard_edges\":{cross_shard_edges}}}"
            );
        }
        VerdictStats::Symbolic { stats } => {
            let _ = write!(
                out,
                "{{\"kind\":\"symbolic\",\"live_nodes\":{},\"peak_nodes\":{},\
                 \"cache_lookups\":{},\"cache_hits\":{},\"swaps\":{},\"sift_passes\":{},\
                 \"gc_runs\":{},\"reclaimed_nodes\":{}}}",
                stats.live_nodes,
                stats.bdd.peak_nodes,
                stats.bdd.cache_lookups,
                stats.bdd.cache_hits,
                stats.bdd.swaps,
                stats.bdd.sift_passes,
                stats.bdd.gc_runs,
                stats.bdd.reclaimed_nodes,
            );
        }
    }
}

fn write_state(out: &mut String, s: &State) {
    out.push('[');
    for (k, v) in s.values().iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        match v {
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
        }
    }
    out.push(']');
}

fn write_states(out: &mut String, states: &[State]) {
    out.push('[');
    for (k, s) in states.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        write_state(out, s);
    }
    out.push(']');
}

fn write_cex(out: &mut String, cex: &Counterexample) {
    match cex {
        Counterexample::Init { state } => {
            out.push_str("{\"kind\":\"init\",\"state\":");
            write_state(out, state);
            out.push('}');
        }
        Counterexample::Next {
            state,
            command,
            after,
        } => {
            out.push_str("{\"kind\":\"next\",\"state\":");
            write_state(out, state);
            out.push_str(",\"command\":");
            match command {
                Some(c) => json_string(out, c),
                None => out.push_str("null"),
            }
            out.push_str(",\"after\":");
            write_state(out, after);
            out.push('}');
        }
        Counterexample::Transient { witnesses } => {
            out.push_str("{\"kind\":\"transient\",\"witnesses\":[");
            for (k, (cmd, s)) in witnesses.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str("{\"command\":");
                json_string(out, cmd);
                out.push_str(",\"state\":");
                write_state(out, s);
                out.push('}');
            }
            out.push_str("]}");
        }
        Counterexample::Unchanged {
            state,
            command,
            before,
            after,
        } => {
            out.push_str("{\"kind\":\"unchanged\",\"state\":");
            write_state(out, state);
            out.push_str(",\"command\":");
            json_string(out, command);
            let _ = write!(out, ",\"before\":{before},\"after\":{after}}}");
        }
        Counterexample::Validity { state } => {
            out.push_str("{\"kind\":\"validity\",\"state\":");
            write_state(out, state);
            out.push('}');
        }
        Counterexample::Reach { path } => {
            out.push_str("{\"kind\":\"reach\",\"path\":");
            write_states(out, path);
            out.push('}');
        }
        Counterexample::LeadsTo { prefix, trap } => {
            out.push_str("{\"kind\":\"leadsto\",\"prefix\":");
            write_states(out, prefix);
            out.push_str(",\"trap\":");
            write_states(out, trap);
            out.push('}');
        }
    }
}

fn write_sim(out: &mut String, s: &SimCheck) {
    out.push_str("{\"name\":");
    json_string(out, &s.name);
    let _ = write!(
        out,
        ",\"steps\":{},\"passed\":{},\"violation_step\":",
        s.steps, s.passed
    );
    match s.violation_step {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"violation_state\":");
    match &s.violation_state {
        Some(state) => write_state(out, state),
        None => out.push_str("null"),
    }
    out.push('}');
}

// ---------------------------------------------------------------- reader

fn read_check(j: &Json) -> Result<CheckReport, String> {
    let outcome = match j.field("verdict")?.as_str()? {
        "pass" => Outcome::Pass,
        "fail" => Outcome::Fail {
            cex: read_cex(j.field("counterexample")?)?,
        },
        "error" => Outcome::Error {
            error: McError::Message(j.field("error")?.as_str()?.to_string()),
        },
        other => return Err(format!("unknown verdict `{other}`")),
    };
    Ok(CheckReport {
        name: j.field("name")?.as_str()?.to_string(),
        line: j.field("line")?.as_int()? as usize,
        verdict: Verdict {
            property: j.field("property")?.as_str()?.to_string(),
            outcome,
            engine: engine_from(j.field("engine")?.as_str()?)?,
            stats: read_stats(j.field("stats")?)?,
            elapsed: duration_from(j.field("elapsed_ns")?.as_int()?),
            discharge: match j.field("discharge") {
                Err(_) | Ok(Json::Null) => None,
                Ok(d) => Some(DischargeInfo {
                    rule: d.field("rule")?.as_str()?.to_string(),
                    components: d
                        .field("components")?
                        .as_arr()?
                        .iter()
                        .map(|v| v.as_int().map(|n| n as usize))
                        .collect::<Result<_, _>>()?,
                    cached: d.field("cached")?.as_bool()?,
                }),
            },
        },
    })
}

fn read_stats(j: &Json) -> Result<VerdictStats, String> {
    if matches!(j, Json::Null) {
        return Ok(VerdictStats::Unmeasured);
    }
    match j.field("kind")?.as_str()? {
        "explicit" => {
            // The traversal counters are additive (schema unchanged):
            // reports written before they existed read back as 0.
            let opt =
                |key: &str| -> u64 { j.field(key).and_then(|v| v.as_int()).unwrap_or(0) as u64 };
            Ok(VerdictStats::Explicit {
                states: j.field("states")?.as_int()? as u64,
                transitions: j.field("transitions")?.as_int()? as u64,
                scanned_states: opt("scanned_states"),
                pred_edges: opt("pred_edges"),
                worklist_pushes: opt("worklist_pushes"),
                build_ms: opt("build_ms"),
                shards: opt("shards") as u32,
                steals: opt("steals"),
                cross_shard_edges: opt("cross_shard_edges"),
            })
        }
        "symbolic" => {
            let mut stats = SymStats {
                live_nodes: j.field("live_nodes")?.as_int()? as usize,
                ..Default::default()
            };
            stats.bdd.peak_nodes = j.field("peak_nodes")?.as_int()? as usize;
            stats.bdd.cache_lookups = j.field("cache_lookups")?.as_int()? as u64;
            stats.bdd.cache_hits = j.field("cache_hits")?.as_int()? as u64;
            stats.bdd.swaps = j.field("swaps")?.as_int()? as u64;
            stats.bdd.sift_passes = j.field("sift_passes")?.as_int()? as u64;
            stats.bdd.gc_runs = j.field("gc_runs")?.as_int()? as u64;
            stats.bdd.reclaimed_nodes = j.field("reclaimed_nodes")?.as_int()? as u64;
            Ok(VerdictStats::Symbolic { stats })
        }
        other => Err(format!("unknown stats kind `{other}`")),
    }
}

fn read_state(j: &Json) -> Result<State, String> {
    let values = j
        .as_arr()?
        .iter()
        .map(|v| match v {
            Json::Bool(b) => Ok(Value::Bool(*b)),
            Json::Int(n) => Ok(Value::Int(*n as i64)),
            other => Err(format!("state value must be bool or int, got {other:?}")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(State::new(values))
}

fn read_states(j: &Json) -> Result<Vec<State>, String> {
    j.as_arr()?.iter().map(read_state).collect()
}

fn read_cex(j: &Json) -> Result<Counterexample, String> {
    match j.field("kind")?.as_str()? {
        "init" => Ok(Counterexample::Init {
            state: read_state(j.field("state")?)?,
        }),
        "next" => Ok(Counterexample::Next {
            state: read_state(j.field("state")?)?,
            command: match j.field("command")? {
                Json::Null => None,
                other => Some(other.as_str()?.to_string()),
            },
            after: read_state(j.field("after")?)?,
        }),
        "transient" => Ok(Counterexample::Transient {
            witnesses: j
                .field("witnesses")?
                .as_arr()?
                .iter()
                .map(|w| {
                    Ok((
                        w.field("command")?.as_str()?.to_string(),
                        read_state(w.field("state")?)?,
                    ))
                })
                .collect::<Result<_, String>>()?,
        }),
        "unchanged" => Ok(Counterexample::Unchanged {
            state: read_state(j.field("state")?)?,
            command: j.field("command")?.as_str()?.to_string(),
            before: j.field("before")?.as_int()? as i64,
            after: j.field("after")?.as_int()? as i64,
        }),
        "validity" => Ok(Counterexample::Validity {
            state: read_state(j.field("state")?)?,
        }),
        "reach" => Ok(Counterexample::Reach {
            path: read_states(j.field("path")?)?,
        }),
        "leadsto" => Ok(Counterexample::LeadsTo {
            prefix: read_states(j.field("prefix")?)?,
            trap: read_states(j.field("trap")?)?,
        }),
        other => Err(format!("unknown counterexample kind `{other}`")),
    }
}

fn read_sim(j: &Json) -> Result<SimCheck, String> {
    Ok(SimCheck {
        name: j.field("name")?.as_str()?.to_string(),
        steps: j.field("steps")?.as_int()? as u64,
        passed: j.field("passed")?.as_bool()?,
        violation_step: match j.field("violation_step")? {
            Json::Null => None,
            other => Some(other.as_int()? as u64),
        },
        violation_state: match j.field("violation_state")? {
            Json::Null => None,
            other => Some(read_state(other)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let state = State::new(vec![Value::Int(2), Value::Bool(true)]);
        Report {
            program: "toy \"quoted\"".into(),
            vars: vec!["x".into(), "b".into()],
            engine: Engine::Symbolic,
            universe: Universe::AllStates,
            checks: vec![
                CheckReport {
                    name: "safe".into(),
                    line: 3,
                    verdict: Verdict {
                        property: "invariant x <= 3".into(),
                        outcome: Outcome::Pass,
                        engine: Engine::Symbolic,
                        stats: VerdictStats::Symbolic {
                            stats: SymStats::default(),
                        },
                        elapsed: Duration::from_micros(17),
                        discharge: Some(DischargeInfo {
                            rule: "lift-universal".into(),
                            components: vec![0, 2],
                            cached: true,
                        }),
                    },
                },
                CheckReport {
                    name: "broken".into(),
                    line: 4,
                    verdict: Verdict {
                        property: "x == 0 next x == 2".into(),
                        outcome: Outcome::Fail {
                            cex: Counterexample::Next {
                                state: state.clone(),
                                command: Some("inc".into()),
                                after: State::new(vec![Value::Int(3), Value::Bool(false)]),
                            },
                        },
                        engine: Engine::Compiled,
                        stats: VerdictStats::Explicit {
                            states: 8,
                            transitions: 0,
                            scanned_states: 0,
                            pred_edges: 0,
                            worklist_pushes: 0,
                            build_ms: 0,
                            shards: 0,
                            steals: 0,
                            cross_shard_edges: 0,
                        },
                        elapsed: Duration::from_nanos(123),
                        discharge: None,
                    },
                },
                CheckReport {
                    name: "oversized".into(),
                    line: 5,
                    verdict: Verdict {
                        property: "invariant x <= 3".into(),
                        outcome: Outcome::Error {
                            error: McError::Message(
                                "state space of 8 states exceeds limit 3".into(),
                            ),
                        },
                        engine: Engine::Compiled,
                        stats: VerdictStats::Unmeasured,
                        elapsed: Duration::from_nanos(7),
                        discharge: None,
                    },
                },
                CheckReport {
                    name: "lasso".into(),
                    line: 6,
                    verdict: Verdict {
                        property: "true leadsto x == 3".into(),
                        outcome: Outcome::Fail {
                            cex: Counterexample::LeadsTo {
                                prefix: vec![state.clone()],
                                trap: vec![state.clone()],
                            },
                        },
                        engine: Engine::Compiled,
                        stats: VerdictStats::Explicit {
                            states: 4,
                            transitions: 4,
                            scanned_states: 3,
                            pred_edges: 5,
                            worklist_pushes: 2,
                            build_ms: 6,
                            shards: 16,
                            steals: 3,
                            cross_shard_edges: 9,
                        },
                        elapsed: Duration::from_nanos(50),
                        discharge: None,
                    },
                },
            ],
            sim: vec![SimCheck {
                name: "safe".into(),
                steps: 200,
                passed: false,
                violation_step: Some(17),
                violation_state: Some(state),
            }],
            elapsed: Duration::from_millis(2),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json, "serialized forms identical");
        // Structural fields survive too (errors come back rendered).
        assert_eq!(back.program, report.program);
        assert_eq!(back.vars, report.vars);
        assert_eq!(back.engine, report.engine);
        assert_eq!(back.universe, report.universe);
        assert_eq!(back.checks.len(), report.checks.len());
        assert_eq!(back.checks[1], report.checks[1], "fail verdict exact");
        assert_eq!(back.sim, report.sim);
    }

    #[test]
    fn transient_and_unchanged_witnesses_round_trip() {
        let mut report = sample();
        report.checks = vec![
            CheckReport {
                name: "t".into(),
                line: 0,
                verdict: Verdict {
                    property: "transient x == 1".into(),
                    outcome: Outcome::Fail {
                        cex: Counterexample::Transient {
                            witnesses: vec![(
                                "inc".into(),
                                State::new(vec![Value::Int(1), Value::Bool(false)]),
                            )],
                        },
                    },
                    engine: Engine::Compiled,
                    stats: VerdictStats::Unmeasured,
                    elapsed: Duration::ZERO,
                    discharge: None,
                },
            },
            CheckReport {
                name: "u".into(),
                line: 0,
                verdict: Verdict {
                    property: "unchanged x".into(),
                    outcome: Outcome::Fail {
                        cex: Counterexample::Unchanged {
                            state: State::new(vec![Value::Int(0), Value::Bool(false)]),
                            command: "inc".into(),
                            before: 0,
                            after: 1,
                        },
                    },
                    engine: Engine::Reference,
                    stats: VerdictStats::Unmeasured,
                    elapsed: Duration::ZERO,
                    discharge: None,
                },
            },
        ];
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.checks, report.checks);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn leadsto_traversal_counters_round_trip() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"scanned_states\":3"));
        assert!(json.contains("\"pred_edges\":5"));
        assert!(json.contains("\"worklist_pushes\":2"));
        assert!(json.contains("\"build_ms\":6"));
        assert!(json.contains("\"shards\":16"));
        assert!(json.contains("\"steals\":3"));
        assert!(json.contains("\"cross_shard_edges\":9"));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.checks[3].verdict.stats, report.checks[3].verdict.stats);
    }

    #[test]
    fn explicit_stats_without_traversal_counters_still_parse() {
        // Reports written before the worklist engine (or before the
        // sharded build counters) lack the additive fields; they read
        // back as 0.
        let report = sample();
        let json = report
            .to_json()
            .replace(
                ",\"scanned_states\":3,\"pred_edges\":5,\"worklist_pushes\":2",
                "",
            )
            .replace(
                ",\"scanned_states\":0,\"pred_edges\":0,\"worklist_pushes\":0",
                "",
            )
            .replace(
                ",\"build_ms\":6,\"shards\":16,\"steals\":3,\"cross_shard_edges\":9",
                "",
            )
            .replace(
                ",\"build_ms\":0,\"shards\":0,\"steals\":0,\"cross_shard_edges\":0",
                "",
            );
        let back = Report::from_json(&json).unwrap();
        assert_eq!(
            back.checks[3].verdict.stats,
            VerdictStats::Explicit {
                states: 4,
                transitions: 4,
                scanned_states: 0,
                pred_edges: 0,
                worklist_pushes: 0,
                build_ms: 0,
                shards: 0,
                steals: 0,
                cross_shard_edges: 0,
            }
        );
    }

    #[test]
    fn discharge_provenance_round_trips_and_is_additive() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains(
            "\"discharge\":{\"rule\":\"lift-universal\",\"components\":[0,2],\"cached\":true}"
        ));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(
            back.checks[0].verdict.discharge,
            report.checks[0].verdict.discharge
        );
        assert_eq!(back.checks[1].verdict.discharge, None);
        // Reports written before the field existed parse to `None`.
        let stripped = json.replace(
            ",\"discharge\":{\"rule\":\"lift-universal\",\"components\":[0,2],\"cached\":true}",
            "",
        );
        let old = Report::from_json(&stripped).unwrap();
        assert_eq!(old.checks[0].verdict.discharge, None);
    }

    #[test]
    fn all_passed_accounts_for_sim() {
        let mut report = sample();
        assert!(!report.all_passed());
        report.checks.clear();
        assert!(!report.all_passed(), "sim violation still fails");
        report.sim.clear();
        assert!(report.all_passed());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"schema\":2}").is_err());
        assert!(Report::from_json("[1,2,").is_err());
        assert!(Report::from_json("{\"schema\":1.5}").is_err());
        // Hostile nesting fails with an error, not a stack overflow.
        assert!(Report::from_json(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        let good = sample().to_json();
        // Trailing garbage after the top-level object.
        for suffix in ["x", "{}", " \n{\"schema\":1}", "null", "]"] {
            let src = format!("{good}{suffix}");
            assert!(Report::from_json(&src).is_err(), "accepted {suffix:?}");
        }
        // Truncations: every prefix of a valid report must fail, never
        // silently parse (a torn journal record is a truncation).
        for cut in 1..good.len() {
            if good.is_char_boundary(cut) {
                assert!(
                    Report::from_json(&good[..cut]).is_err(),
                    "accepted truncation at byte {cut}"
                );
            }
        }
        // Bad escapes inside strings.
        assert!(Report::from_json(&good.replace("\"program\"", "\"progr\\qm\"")).is_err());
        assert!(Report::from_json(&good.replace("\"program\"", "\"progr\\ud800m\"")).is_err());
        // Duplicate keys: two parsers disagreeing on which wins is a
        // corruption vector, so the parser refuses outright.
        let dup = good.replacen("{\"schema\":1,", "{\"schema\":1,\"schema\":1,", 1);
        let err = Report::from_json(&dup).unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
    }

    #[test]
    fn string_escapes_survive() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("toy \\\"quoted\\\""));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.program, "toy \"quoted\"");
    }
}
