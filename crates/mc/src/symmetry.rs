//! Symmetry reduction for replicated-component systems.
//!
//! The paper's systems are families of *identical* components — N toy
//! counters (§3), N symmetric priority components on a vertex-transitive
//! conflict graph (§4). Composed state spaces then carry a full symmetric
//! group action: permuting the components' local-variable *blocks* maps
//! reachable states to reachable states and preserves every symmetric
//! property. Exploring one canonical representative per orbit shrinks the
//! reachable exploration by up to `N!`.
//!
//! The orbit representative is computed by **sorting the block value
//! tuples** — for the full symmetric group on interchangeable blocks this
//! is exactly the lexicographically minimal element of the orbit, at
//! `O(N log N)` per state instead of `O(N!)`.
//!
//! Soundness requires (a) the program's command family to be closed under
//! block permutation and (b) the checked predicate to be symmetric. Both
//! are *checked*, not assumed: [`SymmetrySpec::validate_program`] and
//! [`SymmetrySpec::validate_predicate`] verify closure under the
//! adjacent-transposition generators (exhaustively when the support is
//! small, by seeded sampling otherwise). The transpositions generate the
//! whole group, so generator-closure implies group-closure.
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_mc::prelude::*;
//!
//! // Two interchangeable toggles sharing a parity bit.
//! let mut v = Vocabulary::new();
//! let a = v.declare("a", Domain::Bool).unwrap();
//! let b = v.declare("b", Domain::Bool).unwrap();
//! let s = v.declare("s", Domain::Bool).unwrap();
//! let p = Program::builder("toggles", Arc::new(v))
//!     .init(and(vec![not(var(a)), not(var(b)), not(var(s))]))
//!     .fair_command("fa", tt(), vec![(a, not(var(a))), (s, not(var(s)))])
//!     .fair_command("fb", tt(), vec![(b, not(var(b))), (s, not(var(s)))])
//!     .build()
//!     .unwrap();
//! let spec = SymmetrySpec::new(vec![vec![a], vec![b]], &p.vocab).unwrap();
//! // `s == (a XOR b)` is symmetric and invariant; the quotient proves it
//! // while exploring only canonical representatives.
//! let stats = check_invariant_symmetric(
//!     &p, &eq(var(s), ne(var(a), var(b))), &spec, 1 << 20).unwrap();
//! assert!(stats.quotient_states < stats.full_states as usize);
//! ```

use unity_core::expr::eval::eval_bool;
use unity_core::expr::pretty::Render;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::state::{State, StateSpaceIter};
use unity_core::value::Value;

use crate::bmc::SplitMix64;
use crate::hasher::FxHashMap;
use crate::trace::{Counterexample, McError};

/// A block decomposition of the vocabulary: `blocks[i]` lists component
/// `i`'s local variables, in a fixed role order (the k-th variable of every
/// block plays the same role). Variables in no block are shared and fixed
/// by the group action.
#[derive(Debug, Clone)]
pub struct SymmetrySpec {
    blocks: Vec<Vec<VarId>>,
}

/// How a symmetry validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetryViolation {
    /// No command matches `command` under the transposition of blocks
    /// `(block, block+1)`; `state` witnesses the mismatch.
    Command {
        /// Name of the unmatched command.
        command: String,
        /// Index of the transposed block pair's first block.
        block: usize,
        /// Witness state.
        state: State,
    },
    /// The predicate distinguishes a state from its image under the
    /// transposition `(block, block+1)`.
    Predicate {
        /// Index of the transposed block pair's first block.
        block: usize,
        /// Witness state.
        state: State,
    },
    /// A command and its permuted counterpart differ in fairness class.
    Fairness {
        /// Name of the command whose image has the wrong fairness.
        command: String,
        /// Index of the transposed block pair's first block.
        block: usize,
    },
}

impl std::fmt::Display for SymmetryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryViolation::Command { command, block, .. } => write!(
                f,
                "command {command} has no counterpart under swap of blocks {block},{}",
                block + 1
            ),
            SymmetryViolation::Predicate { block, .. } => write!(
                f,
                "predicate is not invariant under swap of blocks {block},{}",
                block + 1
            ),
            SymmetryViolation::Fairness { command, block } => write!(
                f,
                "command {command}'s image under swap of blocks {block},{} differs in fairness",
                block + 1
            ),
        }
    }
}

/// Statistics of a quotient exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotientStats {
    /// Number of canonical (orbit-representative) states explored.
    pub quotient_states: usize,
    /// Sum of orbit sizes — the size of the symmetrized closure of the
    /// explored set (equals the plain reachable count when the program is
    /// symmetric).
    pub full_states: u128,
}

impl SymmetrySpec {
    /// Builds and validates a block decomposition: blocks must be nonempty,
    /// equal length, pairwise disjoint, and positionally domain-identical.
    pub fn new(blocks: Vec<Vec<VarId>>, vocab: &Vocabulary) -> Result<Self, McError> {
        let shape_err = |detail: String| {
            McError::Core(unity_core::error::CoreError::ProofShape {
                rule: "symmetry",
                detail,
            })
        };
        if blocks.len() < 2 {
            return Err(shape_err("need at least two blocks".into()));
        }
        let len = blocks[0].len();
        if len == 0 {
            return Err(shape_err("blocks must be nonempty".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for b in &blocks {
            if b.len() != len {
                return Err(shape_err("blocks must have equal length".into()));
            }
            for &v in b {
                if v.index() >= vocab.len() {
                    return Err(shape_err(format!("unknown variable {v}")));
                }
                if !seen.insert(v) {
                    return Err(shape_err(format!(
                        "variable {} appears in two blocks",
                        vocab.name(v)
                    )));
                }
            }
        }
        for k in 0..len {
            let d0 = vocab.domain(blocks[0][k]);
            for b in &blocks[1..] {
                if vocab.domain(b[k]) != d0 {
                    return Err(shape_err(format!(
                        "role {k} domains differ between blocks ({} vs {})",
                        vocab.domain(b[k]),
                        d0
                    )));
                }
            }
        }
        Ok(SymmetrySpec { blocks })
    }

    /// Number of blocks (components).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block decomposition.
    pub fn blocks(&self) -> &[Vec<VarId>] {
        &self.blocks
    }

    /// Extracts block `i`'s value tuple from `state`.
    fn tuple(&self, state: &State, i: usize) -> Vec<Value> {
        self.blocks[i].iter().map(|&v| state.get(v)).collect()
    }

    /// Applies the block permutation `perm` (component `i`'s values move to
    /// block `perm[i]`) to `state`.
    pub fn apply(&self, state: &State, perm: &[usize]) -> State {
        debug_assert_eq!(perm.len(), self.blocks.len());
        let mut out = state.clone();
        for (i, &target) in perm.iter().enumerate() {
            for (k, &v) in self.blocks[i].iter().enumerate() {
                out.set(self.blocks[target][k], state.get(v));
            }
        }
        out
    }

    /// Swaps blocks `i` and `i+1` in `state` (an adjacent-transposition
    /// generator of the group).
    pub fn swap_adjacent(&self, state: &State, i: usize) -> State {
        let mut out = state.clone();
        for (&a, &b) in self.blocks[i].iter().zip(&self.blocks[i + 1]) {
            out.set(a, state.get(b));
            out.set(b, state.get(a));
        }
        out
    }

    /// The canonical orbit representative: block tuples sorted
    /// lexicographically (shared variables untouched).
    pub fn canonicalize(&self, state: &State) -> State {
        let mut tuples: Vec<Vec<Value>> = (0..self.blocks.len())
            .map(|i| self.tuple(state, i))
            .collect();
        tuples.sort_unstable();
        let mut out = state.clone();
        for (i, t) in tuples.iter().enumerate() {
            for (k, &v) in t.iter().enumerate() {
                out.set(self.blocks[i][k], v);
            }
        }
        out
    }

    /// Exact orbit size of `state`: `N! / ∏ m_t!` over tuple
    /// multiplicities `m_t`.
    pub fn orbit_size(&self, state: &State) -> u128 {
        let mut tuples: Vec<Vec<Value>> = (0..self.blocks.len())
            .map(|i| self.tuple(state, i))
            .collect();
        tuples.sort_unstable();
        let mut size: u128 = 1;
        // N! incrementally divided by multiplicities: process runs.
        let mut i = 0;
        let mut placed = 0u128;
        while i < tuples.len() {
            let mut j = i + 1;
            while j < tuples.len() && tuples[j] == tuples[i] {
                j += 1;
            }
            let run = (j - i) as u128;
            // multiply by C(placed + run, run)
            for k in 1..=run {
                size = size * (placed + k) / k;
            }
            placed += run;
            i = j;
        }
        size
    }

    /// Enumerates states to probe for validation: the full support product
    /// when it is small, otherwise `samples` seeded random states.
    fn probe_states(&self, vocab: &Vocabulary, samples: usize, seed: u64) -> Vec<State> {
        const EXHAUSTIVE_LIMIT: u64 = 1 << 14;
        match vocab.space_size() {
            Some(n) if n <= EXHAUSTIVE_LIMIT => StateSpaceIter::new(vocab).collect(),
            _ => {
                let mut rng = SplitMix64::new(seed);
                (0..samples)
                    .map(|_| {
                        let mut s = State::minimum(vocab);
                        for (id, d) in vocab.iter() {
                            let k = rng.below(d.domain.size() as usize) as u64;
                            s.set(id, d.domain.value_at(k));
                        }
                        s
                    })
                    .collect()
            }
        }
    }

    /// Verifies the program's command family is closed under every
    /// adjacent transposition: for each generator π and command `c` there
    /// must be a command `c'` with `step(c', π(s)) = π(step(c, s))` on all
    /// probed states, with matching fairness. Exhaustive for small
    /// vocabularies, seeded sampling otherwise.
    pub fn validate_program(
        &self,
        program: &Program,
        samples: usize,
        seed: u64,
    ) -> Result<(), SymmetryViolation> {
        let vocab = &program.vocab;
        let states = self.probe_states(vocab, samples, seed);
        for b in 0..self.blocks.len() - 1 {
            for (ci, c) in program.commands.iter().enumerate() {
                //

                // Find the command whose action matches c's conjugate.
                let mut matched = None;
                'cands: for (cj, cand) in program.commands.iter().enumerate() {
                    for s in &states {
                        let permuted = self.swap_adjacent(s, b);
                        let lhs = cand.step(&permuted, vocab);
                        let rhs = self.swap_adjacent(&c.step(s, vocab), b);
                        if lhs != rhs {
                            continue 'cands;
                        }
                    }
                    matched = Some(cj);
                    break;
                }
                match matched {
                    None => {
                        // Re-find a witness state for the closest candidate
                        // (the first probe that breaks every candidate is
                        // not well-defined; report the first probe).
                        return Err(SymmetryViolation::Command {
                            command: c.name.clone(),
                            block: b,
                            state: states
                                .first()
                                .cloned()
                                .unwrap_or_else(|| State::minimum(vocab)),
                        });
                    }
                    Some(cj) => {
                        if program.fair.contains(&ci) != program.fair.contains(&cj) {
                            return Err(SymmetryViolation::Fairness {
                                command: c.name.clone(),
                                block: b,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies `p` is invariant under every adjacent transposition on the
    /// probed states.
    pub fn validate_predicate(
        &self,
        p: &Expr,
        vocab: &Vocabulary,
        samples: usize,
        seed: u64,
    ) -> Result<(), SymmetryViolation> {
        let states = self.probe_states(vocab, samples, seed);
        for b in 0..self.blocks.len() - 1 {
            for s in &states {
                let t = self.swap_adjacent(s, b);
                if eval_bool(p, s) != eval_bool(p, &t) {
                    return Err(SymmetryViolation::Predicate {
                        block: b,
                        state: s.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Checks `invariant p` over the quotient of the reachable space by the
/// block symmetry: BFS over canonical representatives only.
///
/// Soundness preconditions (command-family closure and predicate symmetry)
/// are validated first — with exhaustive probing when the vocabulary is
/// small, seeded sampling otherwise — and a violation aborts the check
/// with a typed error rather than a wrong verdict.
///
/// On success returns quotient statistics; on violation returns a
/// counterexample path of *canonical* states (each adjacent pair is one
/// command step followed by canonicalization).
pub fn check_invariant_symmetric(
    program: &Program,
    p: &Expr,
    spec: &SymmetrySpec,
    max_states: usize,
) -> Result<QuotientStats, McError> {
    let sym_err = |v: SymmetryViolation| {
        McError::Core(unity_core::error::CoreError::ProofShape {
            rule: "symmetry",
            detail: v.to_string(),
        })
    };
    spec.validate_program(program, 512, 7).map_err(sym_err)?;
    spec.validate_predicate(p, &program.vocab, 512, 11)
        .map_err(sym_err)?;
    check_invariant_symmetric_prevalidated(program, p, spec, max_states)
}

/// [`check_invariant_symmetric`] without the up-front soundness
/// validation — for callers that have already run
/// [`SymmetrySpec::validate_program`] / [`SymmetrySpec::validate_predicate`]
/// once and are checking many predicates (or re-checking after small
/// state changes): validation cost is then amortized instead of paid per
/// call. **The quotient verdict is only meaningful under those two
/// preconditions**; an asymmetric program or predicate makes the verdict
/// unsound rather than erroneous.
pub fn check_invariant_symmetric_prevalidated(
    program: &Program,
    p: &Expr,
    spec: &SymmetrySpec,
    max_states: usize,
) -> Result<QuotientStats, McError> {
    p.check_pred(&program.vocab)?;
    let vocab = &program.vocab;
    let mut index: FxHashMap<State, u32> = FxHashMap::default();
    let mut states: Vec<State> = Vec::new();
    let mut parents: Vec<u32> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut full: u128 = 0;

    let refute = |p: &Expr, states: &[State], parents: &[u32], id: u32| {
        let mut rev = vec![states[id as usize].clone()];
        let mut cur = id;
        while parents[cur as usize] != cur {
            cur = parents[cur as usize];
            rev.push(states[cur as usize].clone());
        }
        rev.reverse();
        McError::Refuted {
            property: format!("invariant {} (symmetry-reduced)", Render::new(p, vocab)),
            cex: Counterexample::Reach { path: rev },
        }
    };

    for s in program.initial_states() {
        let c = spec.canonicalize(&s);
        if index.contains_key(&c) {
            continue;
        }
        let id = states.len() as u32;
        index.insert(c.clone(), id);
        full += spec.orbit_size(&c);
        states.push(c.clone());
        parents.push(id);
        if !eval_bool(p, &c) {
            return Err(refute(p, &states, &parents, id));
        }
        frontier.push(id);
    }

    while let Some(id) = frontier.pop() {
        let state = states[id as usize].clone();
        for cmd in &program.commands {
            let succ = spec.canonicalize(&cmd.step(&state, vocab));
            if index.contains_key(&succ) {
                continue;
            }
            let nid = states.len() as u32;
            index.insert(succ.clone(), nid);
            full += spec.orbit_size(&succ);
            states.push(succ.clone());
            parents.push(id);
            if !eval_bool(p, &succ) {
                return Err(refute(p, &states, &parents, nid));
            }
            if states.len() > max_states {
                return Err(McError::SpaceTooLarge {
                    size: Some(states.len() as u64),
                    limit: max_states as u64,
                });
            }
            frontier.push(nid);
        }
    }
    Ok(QuotientStats {
        quotient_states: states.len(),
        full_states: full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;

    /// N toy-counter components: local `c_i ∈ 0..=k`, shared `C`, each with
    /// the fair command `c_i < k -> c_i += 1, C += 1`.
    fn toy(n: usize, k: i64) -> (Program, SymmetrySpec) {
        let mut v = Vocabulary::new();
        let locals: Vec<VarId> = (0..n)
            .map(|i| {
                v.declare(&format!("c{i}"), Domain::int_range(0, k).unwrap())
                    .unwrap()
            })
            .collect();
        let big = v
            .declare("C", Domain::int_range(0, k * n as i64).unwrap())
            .unwrap();
        let vocab = Arc::new(v);
        let mut b = Program::builder("toy", vocab.clone());
        let mut init = eq(var(big), int(0));
        for &c in &locals {
            init = and2(init, eq(var(c), int(0)));
        }
        b = b.init(init);
        for (i, &c) in locals.iter().enumerate() {
            b = b.fair_command(
                format!("a{i}"),
                lt(var(c), int(k)),
                vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
            );
        }
        let p = b.build().unwrap();
        let spec = SymmetrySpec::new(locals.iter().map(|&c| vec![c]).collect(), &p.vocab).unwrap();
        (p, spec)
    }

    fn sum_expr(p: &Program, n: usize) -> Expr {
        let mut e = var(p.vocab.lookup("c0").unwrap());
        for i in 1..n {
            e = add(e, var(p.vocab.lookup(&format!("c{i}")).unwrap()));
        }
        e
    }

    #[test]
    fn spec_rejects_malformed_blocks() {
        let (p, _) = toy(3, 2);
        let c0 = p.vocab.lookup("c0").unwrap();
        let c1 = p.vocab.lookup("c1").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        // Single block.
        assert!(SymmetrySpec::new(vec![vec![c0]], &p.vocab).is_err());
        // Overlapping blocks.
        assert!(SymmetrySpec::new(vec![vec![c0], vec![c0]], &p.vocab).is_err());
        // Unequal lengths.
        assert!(SymmetrySpec::new(vec![vec![c0, c1], vec![c1]], &p.vocab).is_err());
        // Domain mismatch (C has a different range).
        assert!(SymmetrySpec::new(vec![vec![c0], vec![big]], &p.vocab).is_err());
    }

    #[test]
    fn canonicalize_is_idempotent_and_orbit_minimal() {
        let (p, spec) = toy(3, 2);
        for s in StateSpaceIter::new(&p.vocab) {
            let c = spec.canonicalize(&s);
            assert_eq!(spec.canonicalize(&c), c);
            // c is the lexicographic minimum over all 3! permutations.
            let perms: [[usize; 3]; 6] = [
                [0, 1, 2],
                [0, 2, 1],
                [1, 0, 2],
                [1, 2, 0],
                [2, 0, 1],
                [2, 1, 0],
            ];
            let min = perms.iter().map(|perm| spec.apply(&s, perm)).min().unwrap();
            // Both orders states by the Ord derive; block variables were
            // declared first and in order, so tuple-sorting = state min.
            assert_eq!(c, min);
        }
    }

    #[test]
    fn orbit_sizes_are_multinomials() {
        let (p, spec) = toy(3, 2);
        let mut s = State::minimum(&p.vocab);
        // all equal: orbit 1
        assert_eq!(spec.orbit_size(&s), 1);
        // two equal, one distinct: 3!/2! = 3
        s.set(
            p.vocab.lookup("c0").unwrap(),
            unity_core::value::Value::Int(1),
        );
        assert_eq!(spec.orbit_size(&s), 3);
        // all distinct: 3! = 6
        s.set(
            p.vocab.lookup("c1").unwrap(),
            unity_core::value::Value::Int(2),
        );
        assert_eq!(spec.orbit_size(&s), 6);
    }

    #[test]
    fn orbit_sizes_partition_the_full_space() {
        let (p, spec) = toy(3, 2);
        // Group states by canonical representative; each group's size must
        // equal the representative's orbit size, and sizes must sum to the
        // whole space.
        let mut groups: std::collections::BTreeMap<State, u128> = Default::default();
        let mut total = 0u128;
        for s in StateSpaceIter::new(&p.vocab) {
            *groups.entry(spec.canonicalize(&s)).or_default() += 1;
            total += 1;
        }
        for (rep, count) in &groups {
            assert_eq!(
                spec.orbit_size(rep),
                *count,
                "rep {}",
                rep.display(&p.vocab)
            );
        }
        assert_eq!(groups.values().sum::<u128>(), total);
    }

    #[test]
    fn toy_program_validates_symmetric() {
        let (p, spec) = toy(3, 2);
        spec.validate_program(&p, 256, 1).unwrap();
        let n = 3;
        let big = p.vocab.lookup("C").unwrap();
        let inv = eq(var(big), sum_expr(&p, n));
        spec.validate_predicate(&inv, &p.vocab, 256, 2).unwrap();
        // An asymmetric predicate is rejected.
        let c0 = p.vocab.lookup("c0").unwrap();
        let asym = eq(var(c0), int(1));
        assert!(spec.validate_predicate(&asym, &p.vocab, 256, 3).is_err());
    }

    #[test]
    fn asymmetric_program_is_rejected() {
        // Component 0 increments C by 2 — breaks interchangeability.
        let mut v = Vocabulary::new();
        let c0 = v.declare("c0", Domain::int_range(0, 2).unwrap()).unwrap();
        let c1 = v.declare("c1", Domain::int_range(0, 2).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 8).unwrap()).unwrap();
        let p = Program::builder("bad", Arc::new(v))
            .init(tt())
            .fair_command(
                "a0",
                lt(var(c0), int(2)),
                vec![(c0, add(var(c0), int(1))), (big, add(var(big), int(2)))],
            )
            .fair_command(
                "a1",
                lt(var(c1), int(2)),
                vec![(c1, add(var(c1), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap();
        let spec = SymmetrySpec::new(vec![vec![c0], vec![c1]], &p.vocab).unwrap();
        assert!(matches!(
            spec.validate_program(&p, 256, 1),
            Err(SymmetryViolation::Command { .. })
        ));
    }

    #[test]
    fn fairness_mismatch_is_rejected() {
        let mut v = Vocabulary::new();
        let c0 = v.declare("c0", Domain::int_range(0, 2).unwrap()).unwrap();
        let c1 = v.declare("c1", Domain::int_range(0, 2).unwrap()).unwrap();
        let p = Program::builder("mixed", Arc::new(v))
            .init(tt())
            .fair_command("a0", lt(var(c0), int(2)), vec![(c0, add(var(c0), int(1)))])
            .command("a1", lt(var(c1), int(2)), vec![(c1, add(var(c1), int(1)))])
            .build()
            .unwrap();
        let spec = SymmetrySpec::new(vec![vec![c0], vec![c1]], &p.vocab).unwrap();
        assert!(matches!(
            spec.validate_program(&p, 256, 1),
            Err(SymmetryViolation::Fairness { .. })
        ));
    }

    #[test]
    fn quotient_agrees_with_plain_reachability() {
        let (p, spec) = toy(3, 2);
        let big = p.vocab.lookup("C").unwrap();
        let inv = eq(var(big), sum_expr(&p, 3));
        let stats = check_invariant_symmetric(&p, &inv, &spec, 1 << 20).unwrap();
        // Plain reachable count for cross-validation.
        let ts = crate::transition::TransitionSystem::build(
            &p,
            crate::transition::Universe::Reachable,
            &crate::space::ScanConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.full_states, ts.len() as u128);
        assert!(stats.quotient_states < ts.len());
        // Distinct canonical forms of the reachable set = quotient size.
        let mut canon: std::collections::BTreeSet<State> = Default::default();
        ts.for_each_state(|_, s| {
            canon.insert(spec.canonicalize(s));
        });
        assert_eq!(canon.len(), stats.quotient_states);
    }

    #[test]
    fn quotient_refutes_with_canonical_path() {
        let (p, spec) = toy(3, 2);
        let big = p.vocab.lookup("C").unwrap();
        let bad = lt(var(big), int(4)); // violated once C reaches 4
        let err = check_invariant_symmetric(&p, &bad, &spec, 1 << 20).unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::Reach { path },
                ..
            } => {
                for s in &path {
                    assert_eq!(spec.canonicalize(s), *s, "path states are canonical");
                }
                assert!(!eval_bool(&bad, path.last().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prevalidated_agrees_with_validated() {
        let (p, spec) = toy(3, 2);
        let big = p.vocab.lookup("C").unwrap();
        let inv = eq(var(big), sum_expr(&p, 3));
        let a = check_invariant_symmetric(&p, &inv, &spec, 1 << 20).unwrap();
        let b = check_invariant_symmetric_prevalidated(&p, &inv, &spec, 1 << 20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reduction_factor_grows_with_n() {
        // The quotient shrinks roughly by N!: measure N=2..4 on k=1.
        let mut factors = Vec::new();
        for n in 2..=4usize {
            let (p, spec) = toy(n, 1);
            let big = p.vocab.lookup("C").unwrap();
            let inv = eq(var(big), sum_expr(&p, n));
            let stats = check_invariant_symmetric(&p, &inv, &spec, 1 << 20).unwrap();
            factors.push(stats.full_states as f64 / stats.quotient_states as f64);
        }
        assert!(factors[0] > 1.0);
        assert!(factors[1] > factors[0]);
        assert!(factors[2] > factors[1]);
    }

    #[test]
    fn asymmetric_check_aborts_instead_of_lying() {
        let (p, spec) = toy(3, 2);
        let c0 = p.vocab.lookup("c0").unwrap();
        // Predicate singles out component 0 — must abort, not report.
        // (`c0 <= 2` would be vacuously true on the 0..=2 domain and
        // therefore symmetric; `c0 <= 1` genuinely distinguishes.)
        let asym = le(var(c0), int(1));
        assert!(matches!(
            check_invariant_symmetric(&p, &asym, &spec, 1 << 20),
            Err(McError::Core(_))
        ));
    }
}
