//! Byte codecs and segment framing for persisted verification
//! artifacts.
//!
//! `unity-serve` keeps the expensive session artifacts — the packed
//! [`TransitionSystem`](crate::transition::TransitionSystem) tables, the
//! CSR [`PredIndex`](crate::pred::PredIndex), the tuned BDD field order
//! — on disk, keyed by spec content hash, so a re-submitted spec only
//! recomputes what actually changed. This module is the encoding layer
//! those artifacts share:
//!
//! - [`ByteWriter`]/[`ByteReader`]: little-endian scalar/array codecs.
//!   Readers are bounds-checked everywhere; a truncated payload is an
//!   error, never a panic.
//! - Segment framing ([`encode_segment`]/[`decode_segment`]): a
//!   versioned header (`UNISEG` magic, format version, artifact kind),
//!   the payload length, and an [`checksum`] over the payload. A
//!   corrupt or torn segment file fails to decode — the store treats
//!   that as a cache miss and rebuilds, it never trusts damaged bytes.
//!
//! The payload encodings themselves live with the types that own the
//! private fields (`TransitionSystem::to_artifact_bytes`,
//! `PredIndex::to_artifact_bytes`); this module only fixes the shared
//! byte-level conventions.

use crate::hasher::FxHasher;
use std::hash::Hasher as _;

/// Magic prefix of every artifact segment file.
pub const SEGMENT_MAGIC: &[u8; 6] = b"UNISEG";

/// Current segment format version. Bump on any payload layout change:
/// old segments then decode as corrupt (a cache miss), never as
/// garbage artifacts.
pub const SEGMENT_VERSION: u16 = 1;

/// [`FxHasher`] digest of `bytes` — the segment integrity checksum.
/// Non-cryptographic by design: it guards against torn writes and bit
/// rot, not adversaries (the store directory is operator-trusted).
/// Zero-padding of the final sub-word chunk means trailing NULs within
/// 8 bytes collide — the segment header's explicit length field closes
/// that gap.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// [`checksum`] rendered as fixed-width lowercase hex — the form
/// embedded in text records (the verdict journal's per-record `crc`
/// field), where a fixed width keeps the framing length-stable.
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", checksum(bytes))
}

/// Parses a [`checksum_hex`] digest back to the `u64` it renders.
/// Strict: exactly 16 lowercase hex digits, anything else is an error —
/// a hand-mangled digest must read as corruption, not as a checksum
/// that happens to match.
pub fn parse_checksum_hex(s: &str) -> Result<u64, String> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(format!("`{s}` is not a 16-digit lowercase hex checksum"));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("`{s}`: {e}"))
}

/// The checksum a segment stores: the artifact kind chained with the
/// payload, so a flipped kind byte is caught like flipped payload.
fn segment_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(kind);
    h.write(payload);
    h.finish()
}

/// Frames `payload` as a segment: magic, version, kind, payload length,
/// payload checksum, payload.
pub fn encode_segment(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_MAGIC.len() + 19 + payload.len());
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&segment_checksum(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes a segment, validating magic, version, length, and checksum.
/// Returns the artifact kind and the payload slice.
pub fn decode_segment(bytes: &[u8]) -> Result<(u8, &[u8]), String> {
    let header = SEGMENT_MAGIC.len() + 2 + 1 + 8 + 8;
    if bytes.len() < header {
        return Err(format!("segment truncated at {} bytes", bytes.len()));
    }
    let (magic, rest) = bytes.split_at(SEGMENT_MAGIC.len());
    if magic != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    let version = u16::from_le_bytes([rest[0], rest[1]]);
    if version != SEGMENT_VERSION {
        return Err(format!(
            "segment version {version} (expected {SEGMENT_VERSION})"
        ));
    }
    let kind = rest[2];
    let len = u64::from_le_bytes(rest[3..11].try_into().expect("8 bytes"));
    let sum = u64::from_le_bytes(rest[11..19].try_into().expect("8 bytes"));
    let payload = &rest[19..];
    if payload.len() as u64 != len {
        return Err(format!(
            "segment payload is {} bytes, header says {len}",
            payload.len()
        ));
    }
    if segment_checksum(kind, payload) != sum {
        return Err("segment checksum mismatch".into());
    }
    Ok((kind, payload))
}

/// Little-endian artifact payload writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `u32` array.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `u64` array.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        self.buf.extend_from_slice(bs);
    }

    /// The finished payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a length-prefixed `u32` array (bounded by the remaining
    /// payload, so a hostile length cannot trigger a huge allocation).
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, String> {
        let n = self.u64()? as usize;
        if n.checked_mul(4)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(format!("array of {n} u32s exceeds payload"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` array (bounded like
    /// [`ByteReader::u32_vec`]).
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, String> {
        let n = self.u64()? as usize;
        if n.checked_mul(8)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(format!("array of {n} u64s exceeds payload"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed byte string (bounded like
    /// [`ByteReader::u32_vec`]).
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, String> {
        let n = self.u64()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(format!("byte string of {n} exceeds payload"));
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Asserts the payload was fully consumed — trailing bytes mean the
    /// decoder and encoder disagree about the layout.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_arrays_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u32_slice(&[1, 2, 3]);
        w.u64_slice(&[u64::MAX]);
        w.u32_slice(&[]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_vec().unwrap(), vec![u64::MAX]);
        assert_eq!(r.u32_vec().unwrap(), Vec::<u32>::new());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u32_slice(&[1, 2, 3, 4]);
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.u32_vec().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A length prefix claiming 2^61 elements must fail fast.
        let mut w = ByteWriter::new();
        w.u64(1 << 61);
        let buf = w.into_vec();
        assert!(ByteReader::new(&buf).u32_vec().is_err());
        assert!(ByteReader::new(&buf).u64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u32(1);
        w.u8(0);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn segments_round_trip_and_detect_corruption() {
        let payload = b"the artifact payload".to_vec();
        let seg = encode_segment(3, &payload);
        let (kind, back) = decode_segment(&seg).unwrap();
        assert_eq!(kind, 3);
        assert_eq!(back, payload.as_slice());
        // Any single-byte flip is caught (magic, version, length,
        // checksum, or payload).
        for k in 0..seg.len() {
            let mut bad = seg.clone();
            bad[k] ^= 0x40;
            assert!(decode_segment(&bad).is_err(), "flip at {k} accepted");
        }
        // Truncations are caught.
        for cut in 0..seg.len() {
            assert!(decode_segment(&seg[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn checksum_hex_round_trips_and_rejects_mangled_digests() {
        let digest = checksum_hex(b"journal record");
        assert_eq!(digest.len(), 16);
        assert_eq!(
            parse_checksum_hex(&digest).unwrap(),
            checksum(b"journal record")
        );
        // Leading zeros keep the width fixed.
        assert_eq!(checksum_hex(&[]).len(), 16);
        for bad in [
            "",
            "123",
            "123456789abcdef",
            "123456789abcdef01",
            "123456789ABCDEF0",
            "g23456789abcdef0",
        ] {
            assert!(parse_checksum_hex(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn checksum_is_stable_and_discriminating() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b"12345678"), checksum(b"12345679"));
        // Trailing-NUL padding collisions are a known FxHash property;
        // the segment header's length field disambiguates them. The
        // framing as a whole must still reject the padded variant:
        let a = encode_segment(1, b"xy");
        let (_, payload) = decode_segment(&a).unwrap();
        assert_eq!(payload, b"xy");
        let mut grown = b"xy\0".to_vec();
        grown.resize(3, 0);
        assert_eq!(checksum(b"xy"), checksum(&grown), "padding collides");
        let b = encode_segment(1, &grown);
        assert_ne!(a, b, "length field distinguishes them");
    }
}
