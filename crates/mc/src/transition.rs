//! Labeled transition systems of programs.
//!
//! States are interned into dense ids; for each state and each explicit
//! command we store the unique successor id (commands are total functions —
//! guard or domain failure means "stay put"). The implicit `skip` is the
//! identity on every state and is left implicit here too; the fairness
//! analysis accounts for it.

use std::sync::Arc;

use unity_core::expr::compile::{CompiledExpr, PackedLayout, Scratch};
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::Vocabulary;
use unity_core::program::Program;
use unity_core::state::{State, StateSpaceIter};

use crate::compiled::CompiledProgram;
use crate::hasher::FxHashMap;
use crate::parallel::{par_chunks, ParConfig, RANGE_CHUNK};
use crate::space::ScanConfig;
use crate::stats::BuildStats;
use crate::trace::McError;

/// Build accounting for the single-threaded constructors.
fn sequential_build_stats() -> BuildStats {
    BuildStats {
        shards: 1,
        ..BuildStats::default()
    }
}

/// Which states to include when building the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Universe {
    /// States reachable from the initial states (standard model checking).
    Reachable,
    /// The full domain product (the paper's inductive semantics — no
    /// reachability strengthening).
    AllStates,
}

/// How a transition system stores its states.
///
/// The compiled builders keep states **packed** — one `u64` word each
/// (or nothing at all for the full product, whose id ↔ word mapping is
/// pure arithmetic) — and materialize explicit [`State`]s only on
/// demand. Predicate sweeps over the state set go through
/// [`TransitionSystem::sat_vec`], which evaluates compiled bytecode
/// straight over the packed words.
#[derive(Debug, Clone)]
enum StateStore {
    /// Explicit states (reference builders, oversized vocabularies).
    Explicit(Vec<State>),
    /// Interned packed words (reachable universe, compiled builder).
    PackedWords {
        layout: PackedLayout,
        words: Vec<u64>,
    },
    /// The full domain product: state `id`'s word is
    /// `layout.word_of_flat(id)` — nothing is stored.
    PackedRange { layout: PackedLayout, n: usize },
}

/// An explicit-state labeled transition system.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    /// The vocabulary states decode against.
    vocab: Arc<Vocabulary>,
    /// State storage (packed on the compiled path).
    store: StateStore,
    /// Successor table, row-major: the post-state of command `c` from
    /// state `s` is `succ[s * n_commands + c]`. One flat allocation
    /// instead of a `Vec` per state — access through
    /// [`TransitionSystem::succ_row`] / [`TransitionSystem::succ_at`].
    succ: Vec<u32>,
    /// Ids of initial states.
    pub init: Vec<u32>,
    /// Number of explicit commands (the row stride of `succ`).
    pub n_commands: usize,
    /// Indices (into commands) of the weakly-fair subset `D`.
    pub fair: Vec<usize>,
    /// Cost accounting for the construction (shards, steals, wall time).
    build: BuildStats,
    /// Global-id base of each exploration shard (ascending, `[0]` for
    /// sequential builds) — the seed order for shard-aware SCC sweeps.
    shard_bases: Vec<u32>,
}

impl TransitionSystem {
    /// Builds the transition system of `program` over the chosen universe.
    ///
    /// With `cfg.par.threads > 1` the reachable compiled path runs the
    /// sharded work-stealing explorer (the `shard` module) and the
    /// full-product compiled path fills rows chunk-parallel; one thread
    /// keeps the exact sequential reference construction. Either way
    /// the wall-clock cost is stamped into
    /// [`TransitionSystem::build_stats`].
    pub fn build(program: &Program, universe: Universe, cfg: &ScanConfig) -> Result<Self, McError> {
        let t0 = std::time::Instant::now();
        let mut ts = match universe {
            Universe::Reachable => Self::build_reachable(program, cfg),
            Universe::AllStates => Self::build_all(program, cfg),
        }?;
        ts.build.build_ms = t0.elapsed().as_millis() as u64;
        Ok(ts)
    }

    fn build_reachable(program: &Program, cfg: &ScanConfig) -> Result<Self, McError> {
        crate::space::space_size(&program.vocab, cfg)?;
        if let Some(cp) = CompiledProgram::try_compile(program, cfg) {
            return Ok(Self::build_reachable_packed(program, cp, cfg));
        }
        let n_commands = program.commands.len();
        let mut index: FxHashMap<State, u32> = FxHashMap::default();
        let mut states: Vec<State> = Vec::new();
        let mut succ: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();

        let intern = |s: State,
                      states: &mut Vec<State>,
                      index: &mut FxHashMap<State, u32>,
                      frontier: &mut Vec<u32>| {
            if let Some(&id) = index.get(&s) {
                return id;
            }
            let id = states.len() as u32;
            states.push(s.clone());
            index.insert(s, id);
            frontier.push(id);
            id
        };

        let mut init = Vec::new();
        for s in program.initial_states() {
            let id = intern(s, &mut states, &mut index, &mut frontier);
            init.push(id);
        }
        init.sort_unstable();
        init.dedup();

        while let Some(id) = frontier.pop() {
            // Rows may be produced out of id order (interning extends
            // `states`); the flat table is grown with placeholder zeros
            // and written in place, exactly like the packed path — no
            // per-state row allocation or final flatten.
            let state = states[id as usize].clone();
            let at = id as usize * n_commands;
            if succ.len() < at + n_commands {
                succ.resize(at + n_commands, 0);
            }
            for (c, cmd) in program.commands.iter().enumerate() {
                let next = cmd.step(&state, &program.vocab);
                let nid = intern(next, &mut states, &mut index, &mut frontier);
                succ[at + c] = nid;
            }
        }
        succ.resize(states.len() * n_commands, 0);
        Ok(TransitionSystem {
            vocab: program.vocab.clone(),
            store: StateStore::Explicit(states),
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
            build: sequential_build_stats(),
            shard_bases: vec![0],
        })
    }

    /// Packed breadth-first construction: states intern as `u64` words in
    /// an integer-keyed table (no per-probe hashing of value slices) and
    /// successors come from compiled command steps. Explicit [`State`]s
    /// are only materialized once per interned state, at the end.
    ///
    /// With more than one worker (and a domain at least the sequential
    /// cutoff) exploration runs sharded and work-stealing instead — same
    /// state set, init set, and successor relation, different id
    /// permutation (shard-major instead of discovery order).
    fn build_reachable_packed(program: &Program, cp: CompiledProgram, cfg: &ScanConfig) -> Self {
        let sharded = cfg.par.threads > 1
            && program
                .vocab
                .space_size()
                .is_some_and(|n| n >= cfg.par.sequential_cutoff);
        if sharded {
            let sb = crate::shard::explore(program, &cp, &cfg.par);
            return TransitionSystem {
                vocab: program.vocab.clone(),
                succ: sb.succ,
                init: sb.init,
                n_commands: program.commands.len(),
                fair: program.fair.iter().copied().collect(),
                build: sb.stats,
                shard_bases: sb.bases,
                store: StateStore::PackedWords {
                    layout: cp.layout,
                    words: sb.words,
                },
            };
        }
        let n_commands = program.commands.len();
        let layout = &cp.layout;
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        let mut words: Vec<u64> = Vec::new();
        let mut succ: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();

        let intern = |w: u64,
                      words: &mut Vec<u64>,
                      index: &mut FxHashMap<u64, u32>,
                      frontier: &mut Vec<u32>| {
            *index.entry(w).or_insert_with(|| {
                let id = words.len() as u32;
                words.push(w);
                frontier.push(id);
                id
            })
        };

        // Initial states: scan the full packed space with the compiled
        // init predicate, chunk-parallel when configured (the collected
        // words come back in canonical order, so the interned ids are
        // identical to the old single-cursor sweep).
        let mut init = Vec::new();
        for w in crate::shard::collect_init_words(program, &cp, &cfg.par) {
            init.push(intern(w, &mut words, &mut index, &mut frontier));
        }
        init.sort_unstable();
        init.dedup();

        let mut scratch = Scratch::new();
        while let Some(id) = frontier.pop() {
            // Each interned id enters the frontier exactly once, so each
            // row is written exactly once (possibly out of id order —
            // the flat table is grown with placeholder zeros and written
            // in place).
            let w = words[id as usize];
            let at = id as usize * n_commands;
            if succ.len() < at + n_commands {
                succ.resize(at + n_commands, 0);
            }
            for (c, cc) in cp.commands.iter().enumerate() {
                let next = cc.step_packed(w, layout, &mut scratch);
                succ[at + c] = intern(next, &mut words, &mut index, &mut frontier);
            }
        }
        succ.resize(words.len() * n_commands, 0);

        TransitionSystem {
            vocab: program.vocab.clone(),
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
            build: sequential_build_stats(),
            shard_bases: vec![0],
            store: StateStore::PackedWords {
                layout: cp.layout,
                words,
            },
        }
    }

    fn build_all(program: &Program, cfg: &ScanConfig) -> Result<Self, McError> {
        let n = crate::space::space_size(&program.vocab, cfg)?;
        if let Some(cp) = CompiledProgram::try_compile(program, cfg) {
            return Ok(Self::build_all_packed(program, cp, n, cfg));
        }
        let n_commands = program.commands.len();
        let vocab = &program.vocab;
        let mut states = Vec::with_capacity(n as usize);
        for flat in 0..n {
            states.push(StateSpaceIter::decode(vocab, flat));
        }
        let mut succ: Vec<u32> = Vec::with_capacity(n as usize * n_commands);
        let mut init = Vec::new();
        for (id, s) in states.iter().enumerate() {
            for c in &program.commands {
                let next = c.step(s, vocab);
                succ.push(
                    StateSpaceIter::encode(vocab, &next).expect("in-domain successor") as u32,
                );
            }
            if program.satisfies_init(s) {
                init.push(id as u32);
            }
        }
        Ok(TransitionSystem {
            vocab: program.vocab.clone(),
            store: StateStore::Explicit(states),
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
            build: sequential_build_stats(),
            shard_bases: vec![0],
        })
    }

    /// Packed full-product construction: one incremental cursor walks the
    /// whole space in canonical order; successors are compiled command
    /// steps on `u64` words encoded back to flat ids with mixed-radix
    /// arithmetic — no hashing, no per-state allocation in the scan loop.
    /// With multiple workers the rows fill chunk-parallel (the id ↔ word
    /// map is pure arithmetic, so the output is bit-identical).
    fn build_all_packed(program: &Program, cp: CompiledProgram, n: u64, cfg: &ScanConfig) -> Self {
        let n_commands = program.commands.len();
        if cfg.par.threads > 1 && n_commands > 0 && n >= cfg.par.sequential_cutoff {
            return Self::build_all_packed_par(program, cp, n, &cfg.par);
        }
        let layout = &cp.layout;
        let vocab = &program.vocab;
        let mut scratch = Scratch::new();
        let all_vars: Vec<_> = vocab.ids().collect();
        let mut cursor = layout
            .support_cursor(&all_vars, 0)
            .expect("space_size checked by caller");
        let mut succ: Vec<u32> = Vec::with_capacity(n as usize * n_commands);
        let mut init = Vec::new();
        for id in 0..n {
            let w = cursor.word();
            for cc in &cp.commands {
                // The successor's flat id comes from the incremental
                // weighted-delta encoding — O(updates), not O(vars).
                let (_, flat) = cc.step_packed_flat(w, id, layout, &mut scratch);
                succ.push(flat as u32);
            }
            if cp.init.eval_packed_bool(w, &mut scratch) {
                init.push(id as u32);
            }
            cursor.advance(layout);
        }
        TransitionSystem {
            vocab: program.vocab.clone(),
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
            build: sequential_build_stats(),
            shard_bases: vec![0],
            store: StateStore::PackedRange {
                layout: cp.layout,
                n: n as usize,
            },
        }
    }

    /// Chunk-parallel form of [`TransitionSystem::build_all_packed`]:
    /// workers claim row-aligned windows of the flat table, each with
    /// its own scratch registers and mixed-radix cursor seeked to the
    /// window start. Init ids are collected per chunk and stitched in
    /// ascending order, so the whole system is bit-identical to the
    /// sequential construction.
    fn build_all_packed_par(
        program: &Program,
        cp: CompiledProgram,
        n: u64,
        par: &ParConfig,
    ) -> Self {
        let n_commands = program.commands.len();
        let layout = &cp.layout;
        let all_vars: Vec<_> = program.vocab.ids().collect();
        let mut succ = vec![0u32; n as usize * n_commands];
        let init_chunks: parking_lot::Mutex<Vec<(u64, Vec<u32>)>> =
            parking_lot::Mutex::new(Vec::new());
        let chunk = (RANGE_CHUNK as usize / n_commands).max(1) * n_commands;
        par_chunks(&mut succ, chunk, par, |lo, out| {
            let row0 = lo / n_commands as u64;
            let rows = out.len() / n_commands;
            let mut scratch = Scratch::new();
            let mut cursor = layout
                .support_cursor(&all_vars, row0)
                .expect("space_size checked by caller");
            let mut init_ids = Vec::new();
            for r in 0..rows {
                let id = row0 + r as u64;
                let w = cursor.word();
                for (c, cc) in cp.commands.iter().enumerate() {
                    let (_, flat) = cc.step_packed_flat(w, id, layout, &mut scratch);
                    out[r * n_commands + c] = flat as u32;
                }
                if cp.init.eval_packed_bool(w, &mut scratch) {
                    init_ids.push(id as u32);
                }
                cursor.advance(layout);
            }
            if !init_ids.is_empty() {
                init_chunks.lock().push((row0, init_ids));
            }
        });
        let mut chunks = init_chunks.into_inner();
        chunks.sort_unstable_by_key(|&(lo, _)| lo);
        let init: Vec<u32> = chunks.into_iter().flat_map(|(_, v)| v).collect();
        TransitionSystem {
            vocab: program.vocab.clone(),
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
            build: sequential_build_stats(),
            shard_bases: vec![0],
            store: StateStore::PackedRange {
                layout: cp.layout,
                n: n as usize,
            },
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        match &self.store {
            StateStore::Explicit(states) => states.len(),
            StateStore::PackedWords { words, .. } => words.len(),
            StateStore::PackedRange { n, .. } => *n,
        }
    }

    /// Whether the system has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vocabulary states decode against.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The explicit state of `id` (decoded on demand on the packed
    /// store — use [`TransitionSystem::for_each_state`] or
    /// [`TransitionSystem::sat_vec`] for sweeps).
    pub fn state(&self, id: u32) -> State {
        match &self.store {
            StateStore::Explicit(states) => states[id as usize].clone(),
            StateStore::PackedWords { layout, words } => {
                layout.unpack(words[id as usize], &self.vocab)
            }
            StateStore::PackedRange { layout, .. } => {
                layout.unpack(layout.word_of_flat(id as u64), &self.vocab)
            }
        }
    }

    /// Visits every state in id order without per-state allocation (the
    /// packed stores decode into one reused scratch state).
    pub fn for_each_state(&self, mut f: impl FnMut(u32, &State)) {
        match &self.store {
            StateStore::Explicit(states) => {
                for (id, s) in states.iter().enumerate() {
                    f(id as u32, s);
                }
            }
            StateStore::PackedWords { layout, words } => {
                let mut scratch = State::minimum(&self.vocab);
                for (id, &w) in words.iter().enumerate() {
                    layout.unpack_into(w, &self.vocab, &mut scratch);
                    f(id as u32, &scratch);
                }
            }
            StateStore::PackedRange { layout, n } => {
                let mut scratch = State::minimum(&self.vocab);
                let all: Vec<_> = self.vocab.ids().collect();
                let mut cursor = layout
                    .support_cursor(&all, 0)
                    .expect("layout built from this vocabulary");
                for id in 0..*n {
                    layout.unpack_into(cursor.word(), &self.vocab, &mut scratch);
                    f(id as u32, &scratch);
                    cursor.advance(layout);
                }
            }
        }
    }

    /// Truth value of predicate `e` at every state, in id order. On the
    /// packed stores this evaluates compiled bytecode over the `u64`
    /// words directly — the fast path for the fairness analysis.
    /// Sequential; [`TransitionSystem::sat_vec_with`] is the
    /// chunk-parallel form the worklist liveness engine sweeps with.
    pub fn sat_vec(&self, e: &Expr) -> Vec<bool> {
        self.sat_vec_with(e, &crate::parallel::ParConfig::sequential())
    }

    /// [`TransitionSystem::sat_vec`] with explicit parallelism: the
    /// packed stores split the id range into chunks across the
    /// work-stealing scan workers (each with its own register file and,
    /// on the full product, its own mixed-radix cursor seeked to the
    /// chunk start). The explicit store stays sequential — it is the
    /// reference path. Output is identical to the sequential form.
    pub fn sat_vec_with(&self, e: &Expr, par: &crate::parallel::ParConfig) -> Vec<bool> {
        match &self.store {
            StateStore::Explicit(_) => {}
            StateStore::PackedWords { layout, words } => {
                if let Ok(prog) = CompiledExpr::compile(e, layout) {
                    let mut out = vec![false; words.len()];
                    crate::parallel::par_fill(&mut out, par, |lo, chunk| {
                        let mut scratch = Scratch::new();
                        for (k, b) in chunk.iter_mut().enumerate() {
                            *b = prog.eval_packed_bool(words[lo as usize + k], &mut scratch);
                        }
                    });
                    return out;
                }
            }
            StateStore::PackedRange { layout, n } => {
                if let Ok(prog) = CompiledExpr::compile(e, layout) {
                    let all: Vec<_> = self.vocab.ids().collect();
                    let mut out = vec![false; *n];
                    crate::parallel::par_fill(&mut out, par, |lo, chunk| {
                        let mut scratch = Scratch::new();
                        let mut cursor = layout
                            .support_cursor(&all, lo)
                            .expect("layout built from this vocabulary");
                        for b in chunk.iter_mut() {
                            *b = prog.eval_packed_bool(cursor.word(), &mut scratch);
                            cursor.advance(layout);
                        }
                    });
                    return out;
                }
            }
        }
        let mut out = vec![false; self.len()];
        self.for_each_state(|id, s| out[id as usize] = eval_bool(e, s));
        out
    }

    /// Total number of stored transitions.
    pub fn transition_count(&self) -> usize {
        self.succ.len()
    }

    /// Cost accounting for how this system was built (wall time, shard
    /// count, steals, cross-shard edges). Sequential constructions
    /// report one shard and zero steals.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build
    }

    /// Seed order for SCC sweeps: global ids grouped by owning
    /// exploration shard, ascending within each shard. Shard bases are
    /// contiguous and ascending, so this enumerates `0..len` — but
    /// expressed shard-by-shard, which is the order the sharded builder
    /// laid the ids out in memory.
    pub fn scc_seed_order(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.len() as u32;
        let bases = &self.shard_bases;
        (0..bases.len()).flat_map(move |i| {
            let lo = bases[i];
            let hi = bases.get(i + 1).copied().unwrap_or(n);
            lo..hi
        })
    }

    /// The successor row of state `s` (one entry per command).
    #[inline(always)]
    pub fn succ_row(&self, s: usize) -> &[u32] {
        &self.succ[s * self.n_commands..(s + 1) * self.n_commands]
    }

    /// The successor of state `s` under command `c`.
    #[inline(always)]
    pub fn succ_at(&self, s: usize, c: usize) -> u32 {
        self.succ[s * self.n_commands + c]
    }

    /// Ids of states satisfying `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(&State) -> bool) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_state(|id, s| {
            if pred(s) {
                out.push(id);
            }
        });
        out
    }

    /// Serializes the system into the persistent artifact payload
    /// (see [`crate::artifact`] for the framing).
    ///
    /// Only the packed stores serialize — their state set is a `u64`
    /// word list (or pure arithmetic), so the payload is the flat
    /// tables verbatim. The explicit store (oversized vocabularies,
    /// reference builders) returns `None`; those systems are rebuilt
    /// instead of cached, exactly like an uncompilable program skips
    /// the fast path.
    ///
    /// `build_ms` is construction accounting, not semantics, and is
    /// not persisted: a restored system reports `build_ms == 0`, which
    /// is truthful — restoring did not run the explorer.
    pub fn to_artifact_bytes(&self) -> Option<Vec<u8>> {
        use crate::artifact::ByteWriter;
        let mut w = ByteWriter::new();
        match &self.store {
            StateStore::Explicit(_) => return None,
            StateStore::PackedWords { words, .. } => {
                w.u8(1);
                w.u32(self.n_commands as u32);
                w.u64(words.len() as u64);
                w.u64_slice(words);
            }
            StateStore::PackedRange { n, .. } => {
                w.u8(2);
                w.u32(self.n_commands as u32);
                w.u64(*n as u64);
            }
        }
        w.u32_slice(&self.init);
        let fair: Vec<u32> = self.fair.iter().map(|&c| c as u32).collect();
        w.u32_slice(&fair);
        w.u32_slice(&self.shard_bases);
        w.u32_slice(&self.succ);
        Some(w.into_vec())
    }

    /// Rebuilds a system from [`TransitionSystem::to_artifact_bytes`]
    /// output, for the *same* program under the *same* configuration
    /// (the artifact store keys payloads by spec content hash, which
    /// pins both). The packed layout is re-derived from the program —
    /// it is deterministic — so the payload never has to be trusted
    /// about the vocabulary.
    ///
    /// Every id is bounds-checked; a payload that disagrees with the
    /// program (command count, universe size, out-of-range ids) is an
    /// error, which the store treats as a cache miss.
    pub fn from_artifact_bytes(
        program: &Program,
        cfg: &ScanConfig,
        bytes: &[u8],
    ) -> Result<Self, String> {
        use crate::artifact::ByteReader;
        let layout = crate::compiled::try_layout(&program.vocab, cfg)
            .ok_or("program has no packed layout; artifact cannot apply")?;
        let mut r = ByteReader::new(bytes);
        let kind = r.u8()?;
        let n_commands = r.u32()? as usize;
        if n_commands != program.commands.len() {
            return Err(format!(
                "artifact has {n_commands} commands, program has {}",
                program.commands.len()
            ));
        }
        let n = r.u64()? as usize;
        let store = match kind {
            1 => {
                let words = r.u64_vec()?;
                if words.len() != n {
                    return Err(format!("artifact stores {} of {n} words", words.len()));
                }
                StateStore::PackedWords { layout, words }
            }
            2 => {
                let size = program
                    .vocab
                    .space_size()
                    .ok_or("state space size overflows")?;
                if n as u64 != size {
                    return Err(format!("artifact covers {n} states, product has {size}"));
                }
                StateStore::PackedRange { layout, n }
            }
            other => return Err(format!("unknown transition-store kind {other}")),
        };
        let init = r.u32_vec()?;
        let fair_raw = r.u32_vec()?;
        let shard_bases = r.u32_vec()?;
        let succ = r.u32_vec()?;
        r.finish()?;
        if succ.len() != n * n_commands {
            return Err(format!(
                "successor table has {} entries, expected {}",
                succ.len(),
                n * n_commands
            ));
        }
        let bound = n as u32;
        if succ.iter().any(|&id| id >= bound) {
            return Err("successor id out of range".into());
        }
        if init.iter().any(|&id| id >= bound) {
            return Err("initial-state id out of range".into());
        }
        if fair_raw.iter().any(|&c| c as usize >= n_commands) {
            return Err("fair command index out of range".into());
        }
        if shard_bases.is_empty()
            || shard_bases[0] != 0
            || shard_bases.windows(2).any(|w| w[0] > w[1])
            || shard_bases.iter().any(|&b| b as usize > n)
        {
            return Err("shard bases are not ascending from 0".into());
        }
        Ok(TransitionSystem {
            vocab: program.vocab.clone(),
            store,
            succ,
            init,
            n_commands,
            fair: fair_raw.into_iter().map(|c| c as usize).collect(),
            build: BuildStats {
                shards: shard_bases.len() as u32,
                ..BuildStats::default()
            },
            shard_bases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;
    use unity_core::value::Value;

    fn counter(k: i64) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn reachable_chain() {
        let p = counter(5);
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 6, "0..=5 reachable");
        assert_eq!(ts.init.len(), 1);
        assert_eq!(ts.n_commands, 1);
        assert_eq!(ts.fair, vec![0]);
        // The final state self-loops (guard blocks).
        let last = ts.states_where(|s| s.get(unity_core::ident::VarId(0)) == Value::Int(5))[0];
        assert_eq!(ts.succ_at(last as usize, 0), last);
    }

    #[test]
    fn all_states_universe() {
        let p = counter(5);
        let ts = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts.transition_count(), 6);
        assert_eq!(ts.init.len(), 1);
    }

    #[test]
    fn reachable_smaller_than_all() {
        // Start at 3: states 0..3 unreachable.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 5).unwrap()).unwrap();
        let p = Program::builder("c", Arc::new(v))
            .init(eq(var(x), int(3)))
            .fair_command("inc", lt(var(x), int(5)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let reach =
            TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        let all = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        assert_eq!(reach.len(), 3); // 3, 4, 5
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn sat_vec_parallel_matches_sequential() {
        // Both packed stores, forced-parallel vs sequential: bit-for-bit
        // identical sweeps. The space (32768 states) spans four
        // RANGE_CHUNK windows, so workers genuinely fill chunks with
        // nonzero `lo` — on the full product that exercises the
        // per-chunk cursor seek.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 63).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 63).unwrap()).unwrap();
        let z = v.declare("z", Domain::int_range(0, 7).unwrap()).unwrap();
        let p = Program::builder("grid", Arc::new(v))
            .init(and2(
                and2(eq(var(x), int(0)), eq(var(y), int(0))),
                eq(var(z), int(0)),
            ))
            .fair_command("ix", lt(var(x), int(63)), vec![(x, add(var(x), int(1)))])
            .fair_command("iy", lt(var(y), int(63)), vec![(y, add(var(y), int(1)))])
            .fair_command("iz", lt(var(z), int(7)), vec![(z, add(var(z), int(1)))])
            .build()
            .unwrap();
        let preds = [
            lt(add(var(x), var(y)), int(40)),
            eq(rem(add(var(x), var(z)), int(3)), int(1)),
            tt(),
        ];
        let n = 64 * 64 * 8;
        assert!(n as u64 > 3 * crate::parallel::RANGE_CHUNK, "multi-chunk");
        let par = crate::parallel::ParConfig::with_threads(4);
        for universe in [Universe::Reachable, Universe::AllStates] {
            let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
            assert_eq!(ts.len(), n);
            for e in &preds {
                assert_eq!(ts.sat_vec(e), ts.sat_vec_with(e, &par), "{e:?}");
            }
        }
    }

    #[test]
    fn artifact_bytes_round_trip_both_packed_stores() {
        // Reachable = PackedWords, AllStates = PackedRange.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 7).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("grid", Arc::new(v))
            .init(and2(eq(var(x), int(2)), eq(var(y), int(0))))
            .fair_command("ix", lt(var(x), int(7)), vec![(x, add(var(x), int(1)))])
            .command("iy", lt(var(y), int(3)), vec![(y, add(var(y), int(1)))])
            .build()
            .unwrap();
        let cfg = ScanConfig::default();
        for universe in [Universe::Reachable, Universe::AllStates] {
            let ts = TransitionSystem::build(&p, universe, &cfg).unwrap();
            let bytes = ts.to_artifact_bytes().expect("packed stores serialize");
            let back = TransitionSystem::from_artifact_bytes(&p, &cfg, &bytes).unwrap();
            assert_eq!(back.len(), ts.len(), "{universe:?}");
            assert_eq!(back.init, ts.init);
            assert_eq!(back.succ, ts.succ);
            assert_eq!(back.fair, ts.fair);
            assert_eq!(back.n_commands, ts.n_commands);
            assert_eq!(back.shard_bases, ts.shard_bases);
            // States decode identically (word list / range arithmetic).
            for id in 0..ts.len() as u32 {
                assert_eq!(back.state(id), ts.state(id));
            }
            // Restored systems report zero build cost, same shard count.
            assert_eq!(back.build_stats().build_ms, 0);
            assert_eq!(back.build_stats().shards, ts.build_stats().shards);
            // And the restored bytes re-serialize identically.
            assert_eq!(back.to_artifact_bytes().unwrap(), bytes);
        }
    }

    #[test]
    fn artifact_decode_rejects_corruption() {
        let p = counter(9);
        let cfg = ScanConfig::default();
        let ts = TransitionSystem::build(&p, Universe::Reachable, &cfg).unwrap();
        let bytes = ts.to_artifact_bytes().unwrap();
        // Truncations fail.
        for cut in 0..bytes.len() {
            assert!(
                TransitionSystem::from_artifact_bytes(&p, &cfg, &bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Unknown store kind fails.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(TransitionSystem::from_artifact_bytes(&p, &cfg, &bad).is_err());
        // A command-count mismatch (artifact from a different program
        // shape) fails.
        let mut bad = bytes.clone();
        bad[1..5].copy_from_slice(&7u32.to_le_bytes());
        assert!(TransitionSystem::from_artifact_bytes(&p, &cfg, &bad).is_err());
        // An out-of-range successor id fails.
        let mut bad = bytes.clone();
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&(ts.len() as u32).to_le_bytes());
        assert!(TransitionSystem::from_artifact_bytes(&p, &cfg, &bad).is_err());
        // The reference (explicit) store does not serialize.
        let ts_ref =
            TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::reference()).unwrap();
        assert!(ts_ref.to_artifact_bytes().is_none());
    }

    #[test]
    fn multi_command_product() {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::Bool).unwrap();
        let b = v.declare("b", Domain::Bool).unwrap();
        let p = Program::builder("flip", Arc::new(v))
            .init(and2(not(var(a)), not(var(b))))
            .fair_command("fa", tt(), vec![(a, not(var(a)))])
            .fair_command("fb", tt(), vec![(b, not(var(b)))])
            .build()
            .unwrap();
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.transition_count(), 8);
        // Every state's row is filled.
        for s in 0..ts.len() {
            assert_eq!(ts.succ_row(s).len(), 2);
        }
    }
}
