//! Labeled transition systems of programs.
//!
//! States are interned into dense ids; for each state and each explicit
//! command we store the unique successor id (commands are total functions —
//! guard or domain failure means "stay put"). The implicit `skip` is the
//! identity on every state and is left implicit here too; the fairness
//! analysis accounts for it.

use unity_core::program::Program;
use unity_core::state::{State, StateSpaceIter};

use crate::hasher::FxHashMap;
use crate::space::ScanConfig;
use crate::trace::McError;

/// Which states to include when building the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Universe {
    /// States reachable from the initial states (standard model checking).
    Reachable,
    /// The full domain product (the paper's inductive semantics — no
    /// reachability strengthening).
    AllStates,
}

/// An explicit-state labeled transition system.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    /// Interned states, indexed by id.
    pub states: Vec<State>,
    /// `succ[s][c]` = id of the post-state of command `c` from state `s`.
    pub succ: Vec<Vec<u32>>,
    /// Ids of initial states.
    pub init: Vec<u32>,
    /// Number of explicit commands (`succ[s].len()`).
    pub n_commands: usize,
    /// Indices (into commands) of the weakly-fair subset `D`.
    pub fair: Vec<usize>,
}

impl TransitionSystem {
    /// Builds the transition system of `program` over the chosen universe.
    pub fn build(
        program: &Program,
        universe: Universe,
        cfg: &ScanConfig,
    ) -> Result<Self, McError> {
        match universe {
            Universe::Reachable => Self::build_reachable(program, cfg),
            Universe::AllStates => Self::build_all(program, cfg),
        }
    }

    fn build_reachable(program: &Program, cfg: &ScanConfig) -> Result<Self, McError> {
        crate::space::space_size(&program.vocab, cfg)?;
        let n_commands = program.commands.len();
        let mut index: FxHashMap<State, u32> = FxHashMap::default();
        let mut states: Vec<State> = Vec::new();
        let mut succ: Vec<Vec<u32>> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();

        let intern = |s: State,
                          states: &mut Vec<State>,
                          index: &mut FxHashMap<State, u32>,
                          frontier: &mut Vec<u32>| {
            if let Some(&id) = index.get(&s) {
                return id;
            }
            let id = states.len() as u32;
            states.push(s.clone());
            index.insert(s, id);
            frontier.push(id);
            id
        };

        let mut init = Vec::new();
        for s in program.initial_states() {
            let id = intern(s, &mut states, &mut index, &mut frontier);
            init.push(id);
        }
        init.sort_unstable();
        init.dedup();

        while let Some(id) = frontier.pop() {
            // Successor rows are filled in id order; rows may be created
            // out of order because interning new states extends `states`.
            let state = states[id as usize].clone();
            let mut row = Vec::with_capacity(n_commands);
            for c in &program.commands {
                let next = c.step(&state, &program.vocab);
                let nid = intern(next, &mut states, &mut index, &mut frontier);
                row.push(nid);
            }
            if succ.len() <= id as usize {
                succ.resize(id as usize + 1, Vec::new());
            }
            succ[id as usize] = row;
        }
        // States discovered last may not have rows yet if frontier order
        // skipped them — fill any missing rows.
        for id in 0..states.len() {
            if succ.len() <= id {
                succ.resize(id + 1, Vec::new());
            }
            if succ[id].is_empty() && n_commands > 0 {
                let state = states[id].clone();
                let row: Vec<u32> = program
                    .commands
                    .iter()
                    .map(|c| {
                        let next = c.step(&state, &program.vocab);
                        *index.get(&next).expect("successors were interned")
                    })
                    .collect();
                succ[id] = row;
            }
        }
        Ok(TransitionSystem {
            states,
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
        })
    }

    fn build_all(program: &Program, cfg: &ScanConfig) -> Result<Self, McError> {
        let n = crate::space::space_size(&program.vocab, cfg)?;
        let n_commands = program.commands.len();
        let vocab = &program.vocab;
        let mut states = Vec::with_capacity(n as usize);
        for flat in 0..n {
            states.push(StateSpaceIter::decode(vocab, flat));
        }
        let mut succ = Vec::with_capacity(n as usize);
        let mut init = Vec::new();
        for (id, s) in states.iter().enumerate() {
            let row: Vec<u32> = program
                .commands
                .iter()
                .map(|c| {
                    let next = c.step(s, vocab);
                    StateSpaceIter::encode(vocab, &next).expect("in-domain successor") as u32
                })
                .collect();
            succ.push(row);
            if program.satisfies_init(s) {
                init.push(id as u32);
            }
        }
        Ok(TransitionSystem {
            states,
            succ,
            init,
            n_commands,
            fair: program.fair.iter().copied().collect(),
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the system has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of stored transitions.
    pub fn transition_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Ids of states satisfying `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(&State) -> bool) -> Vec<u32> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(id, s)| pred(s).then_some(id as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;
    use unity_core::value::Value;

    fn counter(k: i64) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn reachable_chain() {
        let p = counter(5);
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 6, "0..=5 reachable");
        assert_eq!(ts.init.len(), 1);
        assert_eq!(ts.n_commands, 1);
        assert_eq!(ts.fair, vec![0]);
        // The final state self-loops (guard blocks).
        let last = ts
            .states_where(|s| s.get(unity_core::ident::VarId(0)) == Value::Int(5))[0];
        assert_eq!(ts.succ[last as usize][0], last);
    }

    #[test]
    fn all_states_universe() {
        let p = counter(5);
        let ts = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts.transition_count(), 6);
        assert_eq!(ts.init.len(), 1);
    }

    #[test]
    fn reachable_smaller_than_all() {
        // Start at 3: states 0..3 unreachable.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 5).unwrap()).unwrap();
        let p = Program::builder("c", Arc::new(v))
            .init(eq(var(x), int(3)))
            .fair_command("inc", lt(var(x), int(5)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let reach =
            TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        let all = TransitionSystem::build(&p, Universe::AllStates, &ScanConfig::default()).unwrap();
        assert_eq!(reach.len(), 3); // 3, 4, 5
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn multi_command_product() {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::Bool).unwrap();
        let b = v.declare("b", Domain::Bool).unwrap();
        let p = Program::builder("flip", Arc::new(v))
            .init(and2(not(var(a)), not(var(b))))
            .fair_command("fa", tt(), vec![(a, not(var(a)))])
            .fair_command("fb", tt(), vec![(b, not(var(b)))])
            .build()
            .unwrap();
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.transition_count(), 8);
        // Every state's rows are filled.
        for row in &ts.succ {
            assert_eq!(row.len(), 2);
        }
    }
}
