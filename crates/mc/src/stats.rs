//! Cost accounting for verification runs (feeds the E6/E9 experiments).

use std::time::{Duration, Instant};

/// Aggregated cost of a verification activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    /// States enumerated or visited.
    pub states: u64,
    /// Transitions computed.
    pub transitions: u64,
    /// Individual property checks performed.
    pub checks: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl McStats {
    /// Zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &McStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.checks += other.checks;
        self.elapsed += other.elapsed;
    }

    /// Runs `f`, adding its wall-clock time to `elapsed` and bumping
    /// `checks`.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.elapsed += t0.elapsed();
        self.checks += 1;
        out
    }
}

/// Cost accounting for one [`TransitionSystem`] construction.
///
/// Stamped by [`TransitionSystem::build`] and carried on the system so
/// verdict stats and `--stats` output can report how the reachable
/// graph was obtained. A sequential build reports `shards == 1` and
/// zero steals/cross-shard edges.
///
/// [`TransitionSystem`]: crate::transition::TransitionSystem
/// [`TransitionSystem::build`]: crate::transition::TransitionSystem::build
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Wall-clock milliseconds spent building the system.
    pub build_ms: u64,
    /// Number of shards the exploration ran with (1 = sequential).
    pub shards: u32,
    /// Times a worker serviced a shard it does not own.
    pub steals: u64,
    /// Successor edges whose source and target live in different shards.
    pub cross_shard_edges: u64,
}

impl std::fmt::Display for BuildStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ms, {} shard(s), {} steal(s), {} cross-shard edge(s)",
            self.build_ms, self.shards, self.steals, self.cross_shard_edges
        )
    }
}

impl std::fmt::Display for McStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} checks, {:?}",
            self.states, self.transitions, self.checks, self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = McStats {
            states: 10,
            transitions: 20,
            checks: 1,
            elapsed: Duration::from_millis(5),
        };
        let b = McStats {
            states: 1,
            transitions: 2,
            checks: 3,
            elapsed: Duration::from_millis(1),
        };
        a.merge(&b);
        assert_eq!(a.states, 11);
        assert_eq!(a.transitions, 22);
        assert_eq!(a.checks, 4);
        assert_eq!(a.elapsed, Duration::from_millis(6));
    }

    #[test]
    fn time_measures_and_counts() {
        let mut s = McStats::new();
        let x = s.time(|| 21 * 2);
        assert_eq!(x, 42);
        assert_eq!(s.checks, 1);
    }

    #[test]
    fn display_mentions_fields() {
        let s = McStats::new();
        let text = s.to_string();
        assert!(text.contains("states"));
        assert!(text.contains("checks"));
    }

    #[test]
    fn build_stats_display_mentions_fields() {
        let b = BuildStats {
            build_ms: 7,
            shards: 4,
            steals: 2,
            cross_shard_edges: 9,
        };
        let text = b.to_string();
        assert!(text.contains("7 ms"));
        assert!(text.contains("4 shard(s)"));
        assert!(text.contains("2 steal(s)"));
        assert!(text.contains("9 cross-shard edge(s)"));
    }
}
