//! Bridge to the symbolic BDD backend (`unity-symbolic`).
//!
//! [`Engine::Symbolic`](crate::space::Engine) routes every inductive
//! safety check through [`unity_symbolic::SymbolicProgram`]: state sets
//! become BDDs over the compiled pipeline's packed bit layout, and the
//! paper's quantifications over all type-consistent states become BDD
//! implications whose cost tracks the *structure* of the sets, not
//! their cardinality. Failing checks come back as packed-word witness
//! cubes, which this module decodes into the same explicit
//! [`Counterexample`]s the enumerating engines produce (post-states are
//! recomputed with the reference `Command::step`, so a symbolic
//! counterexample is by construction replayable on the semantics of
//! record).
//!
//! Fallback contract: each `try_*` function returns `None` when the
//! symbolic engine cannot handle the instance (vocabulary beyond 64
//! packed bits, or a value partition exploding past
//! [`unity_symbolic::lower::MAX_VALUES`]); callers then continue into
//! the explicit paths. Verdicts are *never* approximated.

use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;
use unity_symbolic::SymbolicProgram;

use unity_symbolic::SymbolicOptions;

use crate::space::{Engine, ScanConfig};
use crate::trace::Counterexample;

/// Whether the configuration asks for the symbolic engine.
pub(crate) fn wants(cfg: &ScanConfig) -> bool {
    matches!(cfg.engine, Engine::Symbolic)
}

/// Builds the symbolic program under `opts`, or `None` on fallback
/// conditions.
fn build(program: &Program, opts: &SymbolicOptions) -> Option<SymbolicProgram> {
    SymbolicProgram::build_with(program, opts).ok()
}

fn decode(program: &Program, sym: &SymbolicProgram, word: u64) -> State {
    sym.space().layout().unpack(word, &program.vocab)
}

/// Symbolic `init p`. `None` = fall back to the explicit engines.
pub(crate) fn try_check_init(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
) -> Option<Option<Counterexample>> {
    let mut sym = build(program, &cfg.symbolic)?;
    let witness = sym.check_init(p).ok()?;
    Some(witness.map(|w| Counterexample::Init {
        state: decode(program, &sym, w),
    }))
}

fn next_cex(
    program: &Program,
    sym: &SymbolicProgram,
    cmd: Option<usize>,
    w: u64,
) -> Counterexample {
    let state = decode(program, sym, w);
    let (command, after) = match cmd {
        None => (None, state.clone()),
        Some(k) => (
            Some(program.commands[k].name.clone()),
            program.commands[k].step(&state, &program.vocab),
        ),
    };
    Counterexample::Next {
        state,
        command,
        after,
    }
}

/// Symbolic `p next q` (and `stable p` as `p next p`).
pub(crate) fn try_check_next(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &ScanConfig,
) -> Option<Option<Counterexample>> {
    let mut sym = build(program, &cfg.symbolic)?;
    let witness = sym.check_next(p, q).ok()?;
    Some(witness.map(|(cmd, w)| next_cex(program, &sym, cmd, w)))
}

/// Symbolic `invariant p` (= `init p ∧ stable p`), both halves decided
/// over **one** lowered program — the transition relations are built
/// once, not once per half.
pub(crate) fn try_check_invariant(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
) -> Option<Option<Counterexample>> {
    let mut sym = build(program, &cfg.symbolic)?;
    if let Some(w) = sym.check_init(p).ok()? {
        return Some(Some(Counterexample::Init {
            state: decode(program, &sym, w),
        }));
    }
    let witness = sym.check_next(p, p).ok()?;
    Some(witness.map(|(cmd, w)| next_cex(program, &sym, cmd, w)))
}

/// Symbolic `unchanged e`.
pub(crate) fn try_check_unchanged(
    program: &Program,
    e: &Expr,
    cfg: &ScanConfig,
) -> Option<Option<Counterexample>> {
    use unity_core::value::Value;
    let mut sym = build(program, &cfg.symbolic)?;
    let witness = sym.check_unchanged(e).ok()?;
    Some(witness.map(|(k, w)| {
        let state = decode(program, &sym, w);
        let cmd = &program.commands[k];
        let after_state = cmd.step(&state, &program.vocab);
        let as_i64 = |v: Value| match v {
            Value::Int(n) => n,
            Value::Bool(b) => i64::from(b),
        };
        Counterexample::Unchanged {
            before: as_i64(unity_core::expr::eval::eval(e, &state)),
            after: as_i64(unity_core::expr::eval::eval(e, &after_state)),
            state,
            command: cmd.name.clone(),
        }
    }))
}

/// Symbolic `transient p`.
pub(crate) fn try_check_transient(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
) -> Option<Option<Counterexample>> {
    let mut sym = build(program, &cfg.symbolic)?;
    let witness = sym.check_transient(p).ok()?;
    Some(witness.map(|stuck| {
        Counterexample::Transient {
            witnesses: stuck
                .into_iter()
                .map(|(k, w)| (program.commands[k].name.clone(), decode(program, &sym, w)))
                .collect(),
        }
    }))
}

/// Symbolic `⊨ p` over a bare vocabulary (kernel side conditions).
pub(crate) fn try_check_valid(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::valid_witness(vocab, p).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// Symbolic `⊨ a = b` over a bare vocabulary.
pub(crate) fn try_check_equivalent(
    vocab: &unity_core::ident::Vocabulary,
    a: &Expr,
    b: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::equivalent_witness(vocab, a, b).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// Symbolic satisfiability over a bare vocabulary.
pub(crate) fn try_find_satisfying(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::satisfying_witness(vocab, p).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// The symbolically computed number of reachable states, for parity
/// tests and scale experiments (`None` on fallback conditions).
pub fn reachable_count(program: &Program) -> Option<u128> {
    reachable_count_with(program, &SymbolicOptions::default())
}

/// [`reachable_count`] under explicit ordering options (the
/// differential suites pin verdict/count parity across orders with
/// this).
pub fn reachable_count_with(program: &Program, opts: &SymbolicOptions) -> Option<u128> {
    let mut sym = build(program, opts)?;
    Some(sym.reachable().count)
}
