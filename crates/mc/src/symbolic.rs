//! Bridge to the symbolic BDD backend (`unity-symbolic`).
//!
//! [`Engine::Symbolic`](crate::space::Engine) routes every inductive
//! safety check through [`unity_symbolic::SymbolicProgram`]: state sets
//! become BDDs over the compiled pipeline's packed bit layout, and the
//! paper's quantifications over all type-consistent states become BDD
//! implications whose cost tracks the *structure* of the sets, not
//! their cardinality. Failing checks come back as packed-word witness
//! cubes, which this module decodes into the same explicit
//! [`Counterexample`]s the enumerating engines produce (post-states are
//! recomputed with the reference `Command::step` via the shared witness
//! constructors,
//! so a symbolic counterexample is by construction replayable on the
//! semantics of record).
//!
//! The engine lives in the caller's session cache: it is lowered
//! **once per session** — partitioned transition relations, tuned
//! variable order and all — and every subsequent check reuses it. The
//! one-shot wrappers in [`crate::check`] pass a throwaway cache, which
//! reproduces the old build-per-call behaviour exactly.
//!
//! Fallback contract: each `try_*` function returns `None` when the
//! symbolic engine cannot handle the instance (vocabulary beyond 64
//! packed bits, or a value partition exploding past
//! [`unity_symbolic::lower::MAX_VALUES`]); callers then continue into
//! the explicit paths. Verdicts are *never* approximated.

use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;
use unity_symbolic::SymbolicProgram;

use unity_symbolic::SymbolicOptions;

use crate::space::{Engine, ScanConfig};
use crate::trace::Counterexample;
use crate::verifier::EngineCache;
use crate::witness;

/// Whether the configuration asks for the symbolic engine.
pub(crate) fn wants(cfg: &ScanConfig) -> bool {
    matches!(cfg.engine, Engine::Symbolic)
}

fn decode(program: &Program, sym: &SymbolicProgram, word: u64) -> State {
    sym.space().layout().unpack(word, &program.vocab)
}

/// Symbolic `init p`. `None` = fall back to the explicit engines.
pub(crate) fn try_check_init(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<Option<Counterexample>> {
    let sym = cache.symbolic(program, cfg)?;
    let witness = sym.check_init(p).ok()?;
    let found = witness.map(|w| Counterexample::Init {
        state: decode(program, sym, w),
    });
    cache.sym_decided = true;
    Some(found)
}

/// Symbolic `p next q` (and `stable p` as `p next p`).
pub(crate) fn try_check_next(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<Option<Counterexample>> {
    let sym = cache.symbolic(program, cfg)?;
    let found = sym
        .check_next(p, q)
        .ok()?
        .map(|(cmd, w)| witness::next_cex(program, decode(program, sym, w), cmd));
    cache.sym_decided = true;
    Some(found)
}

/// Symbolic `invariant p` (= `init p ∧ stable p`), both halves decided
/// over **one** lowered program — the transition relations are built
/// once, not once per half.
pub(crate) fn try_check_invariant(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<Option<Counterexample>> {
    let sym = cache.symbolic(program, cfg)?;
    if let Some(w) = sym.check_init(p).ok()? {
        let cex = Counterexample::Init {
            state: decode(program, sym, w),
        };
        cache.sym_decided = true;
        return Some(Some(cex));
    }
    let found = sym
        .check_next(p, p)
        .ok()?
        .map(|(cmd, w)| witness::next_cex(program, decode(program, sym, w), cmd));
    cache.sym_decided = true;
    Some(found)
}

/// Symbolic `unchanged e`.
pub(crate) fn try_check_unchanged(
    program: &Program,
    e: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<Option<Counterexample>> {
    let sym = cache.symbolic(program, cfg)?;
    let found = sym
        .check_unchanged(e)
        .ok()?
        .map(|(k, w)| witness::unchanged_cex(program, e, decode(program, sym, w), k));
    cache.sym_decided = true;
    Some(found)
}

/// Symbolic `transient p`.
pub(crate) fn try_check_transient(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<Option<Counterexample>> {
    let sym = cache.symbolic(program, cfg)?;
    let found = sym.check_transient(p).ok()?.map(|stuck| {
        let stuck = stuck
            .into_iter()
            .map(|(k, w)| (k, decode(program, sym, w)))
            .collect();
        witness::transient_cex(program, stuck)
    });
    cache.sym_decided = true;
    Some(found)
}

/// Symbolic `⊨ p` over a bare vocabulary (kernel side conditions).
pub(crate) fn try_check_valid(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::valid_witness(vocab, p).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// Symbolic `⊨ a = b` over a bare vocabulary.
pub(crate) fn try_check_equivalent(
    vocab: &unity_core::ident::Vocabulary,
    a: &Expr,
    b: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::equivalent_witness(vocab, a, b).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// Symbolic satisfiability over a bare vocabulary.
pub(crate) fn try_find_satisfying(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Option<Option<State>> {
    let space = unity_symbolic::encode::SymSpace::new(vocab)?;
    let witness = unity_symbolic::engine::satisfying_witness(vocab, p).ok()?;
    Some(witness.map(|w| space.layout().unpack(w, vocab)))
}

/// The symbolically computed number of reachable states, for parity
/// tests and scale experiments (`None` on fallback conditions).
pub fn reachable_count(program: &Program) -> Option<u128> {
    reachable_count_with(program, &SymbolicOptions::default())
}

/// [`reachable_count`] under explicit ordering options (the
/// differential suites pin verdict/count parity across orders with
/// this).
pub fn reachable_count_with(program: &Program, opts: &SymbolicOptions) -> Option<u128> {
    let mut sym = SymbolicProgram::build_with(program, opts).ok()?;
    Some(sym.reachable().count)
}
