//! A fast non-cryptographic hasher for state tables.
//!
//! State interning is the hottest hash-table workload in the checker; the
//! default SipHash is needlessly strong for it (no untrusted input). This
//! is the classic Fx/fxhash multiply-rotate mix, implemented locally to
//! stay within the approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias using [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (word-at-a-time).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"12345678"), h(b"12345679"));
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&5usize.to_le_bytes().to_vec()], 5);
    }
}
