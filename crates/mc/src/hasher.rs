//! Fast non-cryptographic hashing (re-export).
//!
//! The Fx multiply-rotate hasher moved to [`unity_core::hash`] so the
//! compositional layer (`unity-ag`) can content-hash component programs
//! with the same function the checker's intern tables use. This module
//! re-exports it under the historical `unity_mc::hasher` path.

pub use unity_core::hash::{hash_word, shard_of_word, FxBuildHasher, FxHashMap, FxHasher};
