//! Exact `leadsto` checking under weak fairness.
//!
//! In the paper's model every command is total (always executable), so a
//! *fair* execution is exactly an infinite command sequence in which every
//! `d ∈ D` occurs infinitely often (the implicit `skip` may pad the
//! schedule arbitrarily). `p ↦ q` holds iff every fair execution from a
//! `p`-state eventually visits a `q`-state.
//!
//! **Decision procedure.** `p ↦ q` is violated iff the `¬q`-restricted
//! transition graph contains an SCC `S` such that *for every* `d ∈ D` some
//! state of `S` has its `d`-successor inside `S` (then a fair run can
//! circulate in `S` forever, taking each `d` infinitely often — plus
//! `skip`-stuttering for padding), and `S` is reachable from a `p ∧ ¬q`
//! state through `¬q` states. Conversely, a fair run avoiding `q` forever
//! eventually stays inside one SCC of the `¬q` graph and must take each
//! `d`-edge inside it infinitely often, so the condition is exact.
//!
//! Counterexamples are lassos: a `¬q` prefix from the violating `p`-state
//! into the fair trap.

use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;

use crate::scc::tarjan_scc;
use crate::space::ScanConfig;
use crate::trace::{Counterexample, McError};
use crate::transition::{TransitionSystem, Universe};

/// Outcome of a leadsto analysis, including simple size statistics.
#[derive(Debug, Clone)]
pub struct LeadsToReport {
    /// States explored.
    pub states: usize,
    /// Transitions stored.
    pub transitions: usize,
    /// Number of SCCs in the `¬q` subgraph.
    pub sccs: usize,
    /// Number of fair traps found (0 when the property holds).
    pub traps: usize,
}

/// Checks `p ↦ q` on `program` over the chosen universe.
pub fn check_leadsto(
    program: &Program,
    p: &Expr,
    q: &Expr,
    universe: Universe,
    cfg: &ScanConfig,
) -> Result<LeadsToReport, McError> {
    check_leadsto_in(
        program,
        p,
        q,
        universe,
        cfg,
        &mut crate::verifier::EngineCache::default(),
    )
}

/// Session form of [`check_leadsto`]: the transition system (and with
/// it the reachable set) comes from the cache, so a spec with many
/// `leadsto` checks builds it once.
pub(crate) fn check_leadsto_in(
    program: &Program,
    p: &Expr,
    q: &Expr,
    universe: Universe,
    cfg: &ScanConfig,
    cache: &mut crate::verifier::EngineCache,
) -> Result<LeadsToReport, McError> {
    p.check_pred(&program.vocab)?;
    q.check_pred(&program.vocab)?;
    let ts = cache.transition_system(program, universe, cfg)?;
    check_leadsto_on(&ts, program, p, q)
}

/// Checks `p ↦ q` on a prebuilt transition system (the program supplies
/// the vocabulary for predicate evaluation).
pub fn check_leadsto_on(
    ts: &TransitionSystem,
    program: &Program,
    p: &Expr,
    q: &Expr,
) -> Result<LeadsToReport, McError> {
    let n = ts.len();
    let not_q: Vec<bool> = ts.sat_vec(q).into_iter().map(|b| !b).collect();

    // SCCs of the ¬q-restricted graph.
    let succ = |v: u32| ts.succ_row(v as usize);
    let sccs = tarjan_scc(&not_q, succ);

    // A trap: for every fair command d, some member state keeps its
    // d-successor inside the component. (Trivial SCCs — single state whose
    // d-successors all leave or all equal itself — qualify iff the
    // self-loop condition holds for all d; with D empty every SCC is a trap
    // because skip alone realizes a fair run.)
    let mut comp_of: Vec<u32> = vec![u32::MAX; n];
    for (cid, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v as usize] = cid as u32;
        }
    }
    let is_trap = |comp: &[u32]| -> bool {
        ts.fair.iter().all(|&d| {
            comp.iter().any(|&v| {
                let w = ts.succ_at(v as usize, d);
                not_q[w as usize] && comp_of[w as usize] == comp_of[v as usize]
            })
        })
    };
    let trap_flags: Vec<bool> = sccs.iter().map(|c| is_trap(c)).collect();
    let traps = trap_flags.iter().filter(|&&t| t).count();

    // Which ¬q states can reach a trap through ¬q states? Propagate
    // backwards: mark trap members, then iterate predecessors. Simple
    // fixpoint over the (small) graph.
    let mut dangerous: Vec<bool> = vec![false; n];
    for (comp, &flag) in sccs.iter().zip(&trap_flags) {
        if flag {
            for &v in comp {
                dangerous[v as usize] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            if !not_q[v] || dangerous[v] {
                continue;
            }
            if ts.succ_row(v).iter().any(|&w| dangerous[w as usize]) {
                dangerous[v] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // A violation starts at any state satisfying p ∧ ¬q that is dangerous.
    // (p-states satisfying q are immediately fine.)
    let p_sat = ts.sat_vec(p);
    let start = (0..n).find(|&v| not_q[v] && dangerous[v] && p_sat[v]);

    let report = LeadsToReport {
        states: n,
        transitions: ts.transition_count(),
        sccs: sccs.len(),
        traps,
    };

    match start {
        None => Ok(report),
        Some(v0) => {
            let cex = build_lasso(ts, &sccs, &trap_flags, &not_q, v0 as u32);
            Err(McError::Refuted {
                property: format!(
                    "{} leadsto {}",
                    unity_core::expr::pretty::Render::new(p, &program.vocab),
                    unity_core::expr::pretty::Render::new(q, &program.vocab)
                ),
                cex,
            })
        }
    }
}

/// BFS from `v0` through `¬q` states to a trap member; returns the lasso
/// counterexample.
fn build_lasso(
    ts: &TransitionSystem,
    sccs: &[Vec<u32>],
    trap_flags: &[bool],
    not_q: &[bool],
    v0: u32,
) -> Counterexample {
    let n = ts.len();
    let mut trap_member = vec![false; n];
    for (comp, &flag) in sccs.iter().zip(trap_flags) {
        if flag {
            for &v in comp {
                trap_member[v as usize] = true;
            }
        }
    }
    let mut prev: Vec<Option<u32>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[v0 as usize] = true;
    queue.push_back(v0);
    let mut target = None;
    'bfs: while let Some(u) = queue.pop_front() {
        if trap_member[u as usize] {
            target = Some(u);
            break 'bfs;
        }
        for &w in ts.succ_row(u as usize) {
            if not_q[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                prev[w as usize] = Some(u);
                queue.push_back(w);
            }
        }
    }
    let mut prefix_ids = Vec::new();
    if let Some(mut t) = target {
        loop {
            prefix_ids.push(t);
            match prev[t as usize] {
                Some(p) => t = p,
                None => break,
            }
        }
        prefix_ids.reverse();
    } else {
        prefix_ids.push(v0);
    }
    let trap_states: Vec<State> = match target {
        Some(t) => {
            let cid = sccs
                .iter()
                .position(|c| c.contains(&t))
                .expect("target in some SCC");
            sccs[cid].iter().map(|&v| ts.state(v)).collect()
        }
        None => Vec::new(),
    };
    Counterexample::LeadsTo {
        prefix: prefix_ids.into_iter().map(|v| ts.state(v)).collect(),
        trap: trap_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    fn counter(k: i64, fair: bool) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        let b = Program::builder("counter", Arc::new(v)).init(eq(var(x), int(0)));
        let b = if fair {
            b.fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
        } else {
            b.command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
        };
        b.build().unwrap()
    }

    #[test]
    fn fair_counter_reaches_top() {
        let p = counter(4, true);
        let x = p.vocab.lookup("x").unwrap();
        let report = check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(4)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        assert_eq!(report.states, 5);
        assert_eq!(report.traps, 0);
    }

    #[test]
    fn unfair_counter_can_stall() {
        // Same program but `inc` not in D: skip-only runs are fair, so the
        // property fails.
        let p = counter(4, false);
        let x = p.vocab.lookup("x").unwrap();
        let err = check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(4)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::LeadsTo { prefix, trap },
                ..
            } => {
                assert!(!prefix.is_empty());
                assert!(!trap.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_counters_interleave_fairly() {
        // Both fair counters must each reach their bound.
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
        let p = Program::builder("two", Arc::new(v))
            .init(and2(eq(var(a), int(0)), eq(var(b), int(0))))
            .fair_command("ia", lt(var(a), int(2)), vec![(a, add(var(a), int(1)))])
            .fair_command("ib", lt(var(b), int(2)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &eq(var(a), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &eq(var(b), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &and2(eq(var(a), int(2)), eq(var(b), int(2))),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn oscillator_never_settles() {
        // x flips forever fairly: leadsto "x stays 1" fails, but
        // "eventually x == 1" holds.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let p = Program::builder("osc", Arc::new(v))
            .init(not(var(x)))
            .fair_command("flip", tt(), vec![(x, not(var(x)))])
            .build()
            .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &var(x),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &not(var(x)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        // But it never *stays*: false leadsto is about reaching, so to see
        // failure we ask for an unreachable target.
        let mut w = Vocabulary::new();
        w.declare("x", Domain::Bool).unwrap();
        let err = check_leadsto(
            &p,
            &tt(),
            &ff(),
            Universe::Reachable,
            &ScanConfig::default(),
        );
        assert!(err.is_err(), "nothing leads to false");
    }

    #[test]
    fn all_states_universe_is_stricter() {
        // From unreachable states the property may fail even if it holds
        // reachably: start at 3 with guard x < 2 (stuck below the target).
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("c", Arc::new(v))
            .init(eq(var(x), int(2)))
            .fair_command("inc", lt(var(x), int(2)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        // Reachable: only state 2; x == 2 already satisfies the target.
        check_leadsto(
            &p,
            &tt(),
            &ge(var(x), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        // All states: from 0 we can only climb to 2 — fine; but target
        // x == 3 is unreachable from everywhere: fails in both universes.
        assert!(check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(3)),
            Universe::Reachable,
            &ScanConfig::default()
        )
        .is_err());
        // From state 3 itself the target x == 3 holds immediately, yet in
        // the AllStates universe state 1 can never exceed 2: still fails.
        assert!(check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(3)),
            Universe::AllStates,
            &ScanConfig::default()
        )
        .is_err());
    }
}
