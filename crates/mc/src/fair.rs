//! Exact `leadsto` checking under weak fairness.
//!
//! In the paper's model every command is total (always executable), so a
//! *fair* execution is exactly an infinite command sequence in which every
//! `d ∈ D` occurs infinitely often (the implicit `skip` may pad the
//! schedule arbitrarily). `p ↦ q` holds iff every fair execution from a
//! `p`-state eventually visits a `q`-state.
//!
//! **Decision procedure.** `p ↦ q` is violated iff the `¬q`-restricted
//! transition graph contains an SCC `S` such that *for every* `d ∈ D` some
//! state of `S` has its `d`-successor inside `S` (then a fair run can
//! circulate in `S` forever, taking each `d` infinitely often — plus
//! `skip`-stuttering for padding), and `S` is reachable from a `p ∧ ¬q`
//! state through `¬q` states. Conversely, a fair run avoiding `q` forever
//! eventually stays inside one SCC of the `¬q` graph and must take each
//! `d`-edge inside it infinitely often, so the condition is exact.
//!
//! **Engine.** The default formulation is a worklist over the session's
//! CSR predecessor index ([`crate::pred::PredIndex`]): SCCs of the `¬q`
//! subgraph come from a pooled-scratch Tarjan
//! ([`crate::scc::tarjan_scc_pooled`] — components are ranges into one
//! flat order array, no per-check allocation), and the "which `¬q`
//! states can reach a fair trap" propagation walks predecessor rows
//! from the trap members, touching `O(|¬q| + pred-edges into ¬q)`
//! states instead of rescanning the whole table until quiescence. The
//! pre-worklist formulation is kept verbatim as
//! [`check_leadsto_on_reference`] (the `leadsto` engine under
//! [`ScanConfig::reference`]); the `prop_leadsto_worklist` differential
//! suite pins the two to identical verdicts and witnesses.
//!
//! Counterexamples are lassos: a `¬q` prefix from the violating `p`-state
//! into the fair trap.

use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::state::State;

use crate::parallel::ParConfig;
use crate::pred::PredIndex;
use crate::scc::{tarjan_scc, tarjan_scc_pooled_seeded, SccScratch};
use crate::space::{Engine, ScanConfig};
use crate::trace::{Counterexample, McError};
use crate::transition::{TransitionSystem, Universe};

/// Outcome of a leadsto analysis, including size and traversal
/// statistics.
#[derive(Debug, Clone)]
pub struct LeadsToReport {
    /// States explored.
    pub states: usize,
    /// Transitions stored (the full successor table — the check itself
    /// traverses only the `¬q` rows; see
    /// [`LeadsToReport::scanned_states`]).
    pub transitions: usize,
    /// Number of SCCs in the `¬q` subgraph.
    pub sccs: usize,
    /// Number of fair traps found (0 when the property holds).
    pub traps: usize,
    /// `¬q` states actually visited by the SCC pass — the region this
    /// check's cost scales with.
    pub scanned_states: usize,
    /// Predecessor edges walked by the backward worklist (0 on the
    /// reference formulation, which has no predecessor index).
    pub pred_edges: usize,
    /// States pushed onto the backward worklist, trap seeds included
    /// (0 on the reference formulation).
    pub worklist_pushes: usize,
    /// Wall-clock milliseconds the transition-system construction took
    /// (memoized sessions pay this once and report it on every check).
    pub build_ms: u64,
    /// Shards the exploration ran with (1 = sequential build).
    pub shards: u32,
    /// Work-stealing services of non-owned shards during the build.
    pub steals: u64,
    /// Successor edges crossing shard boundaries during the build.
    pub cross_shard_edges: u64,
}

/// Pooled per-session buffers for the worklist liveness engine: the
/// Tarjan scratch plus trap/danger marks and the worklist itself. Held
/// in the verifier session's `EngineCache`, so a spec with many
/// `leadsto` checks reuses one set of arrays across all of them.
#[derive(Debug, Clone, Default)]
pub(crate) struct LivenessScratch {
    /// Pooled Tarjan buffers (components as flat ranges).
    scc: SccScratch,
    /// Trap flag per component of the last run.
    trap: Vec<bool>,
    /// Backward-reachability marks ("can reach a trap through `¬q`").
    dangerous: Vec<bool>,
    /// The backward worklist.
    worklist: Vec<u32>,
}

/// Checks `p ↦ q` on `program` over the chosen universe.
pub fn check_leadsto(
    program: &Program,
    p: &Expr,
    q: &Expr,
    universe: Universe,
    cfg: &ScanConfig,
) -> Result<LeadsToReport, McError> {
    check_leadsto_in(
        program,
        p,
        q,
        universe,
        cfg,
        &mut crate::verifier::EngineCache::default(),
    )
}

/// Session form of [`check_leadsto`]: the transition system, its CSR
/// predecessor index, and the liveness scratch all come from the cache,
/// so a spec with many `leadsto` checks builds each once.
pub(crate) fn check_leadsto_in(
    program: &Program,
    p: &Expr,
    q: &Expr,
    universe: Universe,
    cfg: &ScanConfig,
    cache: &mut crate::verifier::EngineCache,
) -> Result<LeadsToReport, McError> {
    into_result(check_leadsto_outcome_in(
        program, p, q, universe, cfg, cache,
    )?)
}

/// [`check_leadsto_in`] in outcome form: `Ok((report, refutation))`
/// when the analysis ran (refuted checks keep their traversal
/// counters), `Err` only for infrastructure failures (space bound,
/// typing). This is what [`crate::verifier::Verifier::verify`] consumes
/// so failing `leadsto` verdicts still carry cost stats.
pub(crate) fn check_leadsto_outcome_in(
    program: &Program,
    p: &Expr,
    q: &Expr,
    universe: Universe,
    cfg: &ScanConfig,
    cache: &mut crate::verifier::EngineCache,
) -> Result<(LeadsToReport, Option<McError>), McError> {
    p.check_pred(&program.vocab)?;
    q.check_pred(&program.vocab)?;
    let ts = cache.transition_system(program, universe, cfg)?;
    if matches!(cfg.engine, Engine::Reference) {
        // The pre-worklist formulation, kept as the semantics of record
        // for the differential suites.
        return Ok(reference_outcome(&ts, program, p, q));
    }
    let pred = cache.pred_index(&ts, universe, &cfg.par);
    Ok(check_leadsto_worklist(
        &ts,
        &pred,
        &mut cache.liveness,
        program,
        p,
        q,
        &cfg.par,
    ))
}

/// Checks `p ↦ q` on a prebuilt transition system (the program supplies
/// the vocabulary for predicate evaluation) with the worklist engine,
/// building a throwaway predecessor index and scratch. Checking several
/// properties against one system? Use a [`LeadsToEngine`] (or a full
/// [`crate::verifier::Verifier`] session) so the index and scratch are
/// built once.
pub fn check_leadsto_on(
    ts: &TransitionSystem,
    program: &Program,
    p: &Expr,
    q: &Expr,
) -> Result<LeadsToReport, McError> {
    LeadsToEngine::new(ts).check(program, p, q)
}

/// A reusable worklist liveness engine over one prebuilt transition
/// system: the CSR predecessor index is inverted once and the scratch
/// buffers are pooled, so a battery of `p ↦ q` checks pays for both
/// exactly once. [`crate::verifier::Verifier`] sessions get the same
/// sharing through their engine cache; this type serves callers that
/// already hold a [`TransitionSystem`].
pub struct LeadsToEngine<'ts> {
    ts: &'ts TransitionSystem,
    pred: PredIndex,
    scratch: LivenessScratch,
    par: ParConfig,
}

impl<'ts> LeadsToEngine<'ts> {
    /// Builds the engine (inverts the predecessor index) with default
    /// sweep parallelism.
    pub fn new(ts: &'ts TransitionSystem) -> Self {
        Self::with_par(ts, ParConfig::default())
    }

    /// Builds the engine with explicit sweep parallelism (the
    /// predecessor inversion itself runs under the same configuration).
    pub fn with_par(ts: &'ts TransitionSystem, par: ParConfig) -> Self {
        LeadsToEngine {
            ts,
            pred: PredIndex::build_with(ts, &par),
            scratch: LivenessScratch::default(),
            par,
        }
    }

    /// Checks `p ↦ q` against the engine's transition system.
    pub fn check(
        &mut self,
        program: &Program,
        p: &Expr,
        q: &Expr,
    ) -> Result<LeadsToReport, McError> {
        p.check_pred(&program.vocab)?;
        q.check_pred(&program.vocab)?;
        into_result(check_leadsto_worklist(
            self.ts,
            &self.pred,
            &mut self.scratch,
            program,
            p,
            q,
            &self.par,
        ))
    }
}

/// The worklist liveness core: `¬q`-localized pooled Tarjan, trap
/// detection over flat component ranges, and backward trap-reachability
/// as a predecessor-row worklist. Returns the traversal report plus
/// the refutation, if any — callers that want `Result` convention use
/// [`into_result`]; the verifier keeps both so refuted checks still
/// carry their cost counters.
fn check_leadsto_worklist(
    ts: &TransitionSystem,
    pred: &PredIndex,
    scratch: &mut LivenessScratch,
    program: &Program,
    p: &Expr,
    q: &Expr,
    par: &ParConfig,
) -> (LeadsToReport, Option<McError>) {
    let n = ts.len();
    let mut not_q = ts.sat_vec_with(q, par);
    for b in &mut not_q {
        *b = !*b;
    }

    // SCCs of the ¬q-restricted graph, into the pooled scratch:
    // components are ranges of one flat order array, comp ids are dense.
    // Roots are seeded shard-by-shard (the sharded builder's memory
    // layout) — for sequential builds this is plain ascending order.
    let succ = |v: u32| ts.succ_row(v as usize);
    let LivenessScratch {
        scc,
        trap,
        dangerous,
        worklist,
    } = scratch;
    tarjan_scc_pooled_seeded(&not_q, succ, ts.scc_seed_order(), scc);

    // A trap: for every fair command d, some member state keeps its
    // d-successor inside the component. (Trivial SCCs — single state whose
    // d-successors all leave or all equal itself — qualify iff the
    // self-loop condition holds for all d; with D empty every SCC is a trap
    // because skip alone realizes a fair run.)
    trap.clear();
    let mut traps = 0usize;
    for cid in 0..scc.comp_count() {
        let members = scc.members(cid);
        let is_trap = ts.fair.iter().all(|&d| {
            members.iter().any(|&v| {
                let w = ts.succ_at(v as usize, d);
                not_q[w as usize] && scc.comp_of(w) == cid as u32
            })
        });
        trap.push(is_trap);
        traps += is_trap as usize;
    }

    // Which ¬q states can reach a trap through ¬q states? Seed the
    // worklist with the trap members and walk predecessor rows: each
    // state is pushed at most once, so the propagation costs the trap
    // region's in-edges, not whole-table rescans.
    dangerous.clear();
    dangerous.resize(n, false);
    worklist.clear();
    for (cid, &is_trap) in trap.iter().enumerate() {
        if is_trap {
            for &v in scc.members(cid) {
                dangerous[v as usize] = true;
                worklist.push(v);
            }
        }
    }
    let mut worklist_pushes = worklist.len();
    let mut pred_edges = 0usize;
    while let Some(v) = worklist.pop() {
        let row = pred.row(v);
        pred_edges += row.len();
        for &u in row {
            if not_q[u as usize] && !dangerous[u as usize] {
                dangerous[u as usize] = true;
                worklist.push(u);
                worklist_pushes += 1;
            }
        }
    }

    let build = ts.build_stats();
    let report = LeadsToReport {
        states: n,
        transitions: ts.transition_count(),
        sccs: scc.comp_count(),
        traps,
        scanned_states: scc.visited(),
        pred_edges,
        worklist_pushes,
        build_ms: build.build_ms,
        shards: build.shards,
        steals: build.steals,
        cross_shard_edges: build.cross_shard_edges,
    };

    // No trap ⇒ nothing is dangerous ⇒ no start state can exist: the
    // property holds without ever sweeping for `p`. (The common passing
    // case costs only the `q` sweep and the localized SCC pass.)
    if traps == 0 {
        return (report, None);
    }

    // A violation starts at any state satisfying p ∧ ¬q that is dangerous.
    // (p-states satisfying q are immediately fine.)
    let p_sat = ts.sat_vec_with(p, par);
    let start = (0..n).find(|&v| not_q[v] && dangerous[v] && p_sat[v]);

    match start {
        None => (report, None),
        Some(v0) => {
            let trap_member = |u: u32| not_q[u as usize] && trap[scc.comp_of(u) as usize];
            let (prefix_ids, target) = lasso_prefix(ts, &not_q, trap_member, v0 as u32);
            let trap_states: Vec<State> = match target {
                Some(t) => scc
                    .members(scc.comp_of(t) as usize)
                    .iter()
                    .map(|&v| ts.state(v))
                    .collect(),
                None => Vec::new(),
            };
            let err = refuted_leadsto(program, p, q, ts, prefix_ids, trap_states);
            (report, Some(err))
        }
    }
}

/// Collapses a core outcome back to the free functions' `Result`
/// convention.
fn into_result(outcome: (LeadsToReport, Option<McError>)) -> Result<LeadsToReport, McError> {
    match outcome {
        (report, None) => Ok(report),
        (_, Some(err)) => Err(err),
    }
}

/// Checks `p ↦ q` on a prebuilt transition system with the pre-worklist
/// formulation: per-check [`tarjan_scc`] materialization and the
/// whole-table backward `dangerous` fixpoint, rescanned until
/// quiescent. This is the `leadsto` engine under
/// [`ScanConfig::reference`]; the differential proptests (and the
/// `e20_leadsto` bench) pin the worklist engine against it.
pub fn check_leadsto_on_reference(
    ts: &TransitionSystem,
    program: &Program,
    p: &Expr,
    q: &Expr,
) -> Result<LeadsToReport, McError> {
    into_result(reference_outcome(ts, program, p, q))
}

/// The pre-worklist core in outcome form (report plus optional
/// refutation) — the shape the verifier consumes so refuted checks
/// keep their counters.
fn reference_outcome(
    ts: &TransitionSystem,
    program: &Program,
    p: &Expr,
    q: &Expr,
) -> (LeadsToReport, Option<McError>) {
    let n = ts.len();
    let not_q: Vec<bool> = ts.sat_vec(q).into_iter().map(|b| !b).collect();

    // SCCs of the ¬q-restricted graph.
    let succ = |v: u32| ts.succ_row(v as usize);
    let sccs = tarjan_scc(&not_q, succ);

    let mut comp_of: Vec<u32> = vec![u32::MAX; n];
    for (cid, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v as usize] = cid as u32;
        }
    }
    let is_trap = |comp: &[u32]| -> bool {
        ts.fair.iter().all(|&d| {
            comp.iter().any(|&v| {
                let w = ts.succ_at(v as usize, d);
                not_q[w as usize] && comp_of[w as usize] == comp_of[v as usize]
            })
        })
    };
    let trap_flags: Vec<bool> = sccs.iter().map(|c| is_trap(c)).collect();
    let traps = trap_flags.iter().filter(|&&t| t).count();

    // Which ¬q states can reach a trap through ¬q states? Propagate
    // backwards: mark trap members, then iterate successor scans over
    // the whole table until quiescent.
    let mut dangerous: Vec<bool> = vec![false; n];
    for (comp, &flag) in sccs.iter().zip(&trap_flags) {
        if flag {
            for &v in comp {
                dangerous[v as usize] = true;
            }
        }
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            if !not_q[v] || dangerous[v] {
                continue;
            }
            if ts.succ_row(v).iter().any(|&w| dangerous[w as usize]) {
                dangerous[v] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // A violation starts at any state satisfying p ∧ ¬q that is dangerous.
    let p_sat = ts.sat_vec(p);
    let start = (0..n).find(|&v| not_q[v] && dangerous[v] && p_sat[v]);

    let build = ts.build_stats();
    let report = LeadsToReport {
        states: n,
        transitions: ts.transition_count(),
        sccs: sccs.len(),
        traps,
        scanned_states: not_q.iter().filter(|&&b| b).count(),
        pred_edges: 0,
        worklist_pushes: 0,
        build_ms: build.build_ms,
        shards: build.shards,
        steals: build.steals,
        cross_shard_edges: build.cross_shard_edges,
    };

    match start {
        None => (report, None),
        Some(v0) => {
            let trap_member = |u: u32| {
                let cid = comp_of[u as usize];
                cid != u32::MAX && trap_flags[cid as usize]
            };
            let (prefix_ids, target) = lasso_prefix(ts, &not_q, trap_member, v0 as u32);
            let trap_states: Vec<State> = match target {
                // `comp_of` is already built — index it directly
                // instead of rescanning every component for membership.
                Some(t) => sccs[comp_of[t as usize] as usize]
                    .iter()
                    .map(|&v| ts.state(v))
                    .collect(),
                None => Vec::new(),
            };
            let err = refuted_leadsto(program, p, q, ts, prefix_ids, trap_states);
            (report, Some(err))
        }
    }
}

/// BFS from `v0` through `¬q` states to the nearest trap member (per
/// `trap_member`); returns the prefix state ids and the trap entry
/// point. Shared by both formulations so lassos are identical
/// witness-for-witness.
fn lasso_prefix(
    ts: &TransitionSystem,
    not_q: &[bool],
    trap_member: impl Fn(u32) -> bool,
    v0: u32,
) -> (Vec<u32>, Option<u32>) {
    let n = ts.len();
    let mut prev: Vec<Option<u32>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[v0 as usize] = true;
    queue.push_back(v0);
    let mut target = None;
    'bfs: while let Some(u) = queue.pop_front() {
        if trap_member(u) {
            target = Some(u);
            break 'bfs;
        }
        for &w in ts.succ_row(u as usize) {
            if not_q[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                prev[w as usize] = Some(u);
                queue.push_back(w);
            }
        }
    }
    let mut prefix_ids = Vec::new();
    if let Some(mut t) = target {
        loop {
            prefix_ids.push(t);
            match prev[t as usize] {
                Some(p) => t = p,
                None => break,
            }
        }
        prefix_ids.reverse();
    } else {
        prefix_ids.push(v0);
    }
    (prefix_ids, target)
}

/// Assembles the refutation error from decoded lasso pieces.
fn refuted_leadsto(
    program: &Program,
    p: &Expr,
    q: &Expr,
    ts: &TransitionSystem,
    prefix_ids: Vec<u32>,
    trap: Vec<State>,
) -> McError {
    McError::Refuted {
        property: format!(
            "{} leadsto {}",
            unity_core::expr::pretty::Render::new(p, &program.vocab),
            unity_core::expr::pretty::Render::new(q, &program.vocab)
        ),
        cex: Counterexample::LeadsTo {
            prefix: prefix_ids.into_iter().map(|v| ts.state(v)).collect(),
            trap,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    fn counter(k: i64, fair: bool) -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, k).unwrap()).unwrap();
        let b = Program::builder("counter", Arc::new(v)).init(eq(var(x), int(0)));
        let b = if fair {
            b.fair_command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
        } else {
            b.command("inc", lt(var(x), int(k)), vec![(x, add(var(x), int(1)))])
        };
        b.build().unwrap()
    }

    #[test]
    fn fair_counter_reaches_top() {
        let p = counter(4, true);
        let x = p.vocab.lookup("x").unwrap();
        let report = check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(4)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        assert_eq!(report.states, 5);
        assert_eq!(report.traps, 0);
        assert_eq!(report.scanned_states, 4, "only the ¬q chain is visited");
        assert_eq!(report.worklist_pushes, 0, "no traps, nothing to propagate");
        assert_eq!(report.pred_edges, 0);
    }

    #[test]
    fn unfair_counter_can_stall() {
        // Same program but `inc` not in D: skip-only runs are fair, so the
        // property fails.
        let p = counter(4, false);
        let x = p.vocab.lookup("x").unwrap();
        let err = check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(4)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::LeadsTo { prefix, trap },
                ..
            } => {
                assert!(!prefix.is_empty());
                assert!(!trap.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_counters_interleave_fairly() {
        // Both fair counters must each reach their bound.
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
        let p = Program::builder("two", Arc::new(v))
            .init(and2(eq(var(a), int(0)), eq(var(b), int(0))))
            .fair_command("ia", lt(var(a), int(2)), vec![(a, add(var(a), int(1)))])
            .fair_command("ib", lt(var(b), int(2)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &eq(var(a), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &eq(var(b), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &and2(eq(var(a), int(2)), eq(var(b), int(2))),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn oscillator_never_settles() {
        // x flips forever fairly: leadsto "x stays 1" fails, but
        // "eventually x == 1" holds.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let p = Program::builder("osc", Arc::new(v))
            .init(not(var(x)))
            .fair_command("flip", tt(), vec![(x, not(var(x)))])
            .build()
            .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &var(x),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        check_leadsto(
            &p,
            &tt(),
            &not(var(x)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        // But it never *stays*: false leadsto is about reaching, so to see
        // failure we ask for an unreachable target.
        let mut w = Vocabulary::new();
        w.declare("x", Domain::Bool).unwrap();
        let err = check_leadsto(
            &p,
            &tt(),
            &ff(),
            Universe::Reachable,
            &ScanConfig::default(),
        );
        assert!(err.is_err(), "nothing leads to false");
    }

    #[test]
    fn all_states_universe_is_stricter() {
        // From unreachable states the property may fail even if it holds
        // reachably: start at 3 with guard x < 2 (stuck below the target).
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("c", Arc::new(v))
            .init(eq(var(x), int(2)))
            .fair_command("inc", lt(var(x), int(2)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        // Reachable: only state 2; x == 2 already satisfies the target.
        check_leadsto(
            &p,
            &tt(),
            &ge(var(x), int(2)),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        // All states: from 0 we can only climb to 2 — fine; but target
        // x == 3 is unreachable from everywhere: fails in both universes.
        assert!(check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(3)),
            Universe::Reachable,
            &ScanConfig::default()
        )
        .is_err());
        // From state 3 itself the target x == 3 holds immediately, yet in
        // the AllStates universe state 1 can never exceed 2: still fails.
        assert!(check_leadsto(
            &p,
            &tt(),
            &eq(var(x), int(3)),
            Universe::AllStates,
            &ScanConfig::default()
        )
        .is_err());
    }

    #[test]
    fn worklist_and_reference_agree_on_the_counter_family() {
        // Spot check ahead of the property suite: identical verdicts,
        // trap counts and witnesses on the same transition system.
        for fair in [true, false] {
            let p = counter(4, fair);
            let x = p.vocab.lookup("x").unwrap();
            for universe in [Universe::Reachable, Universe::AllStates] {
                let ts = TransitionSystem::build(&p, universe, &ScanConfig::default()).unwrap();
                for q in [eq(var(x), int(4)), eq(var(x), int(2)), ff(), tt()] {
                    let fast = check_leadsto_on(&ts, &p, &tt(), &q);
                    let slow = check_leadsto_on_reference(&ts, &p, &tt(), &q);
                    match (fast, slow) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a.sccs, b.sccs);
                            assert_eq!(a.traps, b.traps);
                            assert_eq!(a.scanned_states, b.scanned_states);
                        }
                        (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
                        (a, b) => panic!("verdicts diverged: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn empty_fair_set_makes_every_scc_a_trap() {
        // D = ∅: skip alone is a fair run, so every ¬q SCC traps — in
        // both formulations.
        let p = counter(3, false);
        let x = p.vocab.lookup("x").unwrap();
        let ts = TransitionSystem::build(&p, Universe::Reachable, &ScanConfig::default()).unwrap();
        let q = eq(var(x), int(3));
        let fast = check_leadsto_on(&ts, &p, &tt(), &q).unwrap_err();
        let slow = check_leadsto_on_reference(&ts, &p, &tt(), &q).unwrap_err();
        assert_eq!(format!("{fast}"), format!("{slow}"));
    }

    #[test]
    fn refuted_leadsto_verdicts_keep_their_counters() {
        use unity_core::properties::Property;
        // The analysis runs in full before refuting: the verdict must
        // carry the traversal counters, on both engine stacks.
        let p = counter(4, false);
        let x = p.vocab.lookup("x").unwrap();
        for cfg in [ScanConfig::default(), ScanConfig::reference()] {
            let mut session = crate::verifier::Verifier::new(&p, cfg);
            let v = session.verify(&Property::LeadsTo(tt(), eq(var(x), int(4))));
            assert!(v.failed(), "{v:?}");
            match v.stats {
                crate::verifier::VerdictStats::Explicit {
                    states,
                    scanned_states,
                    ..
                } => {
                    assert!(states > 0);
                    assert!(scanned_states > 0);
                }
                ref other => panic!("refuted leadsto keeps explicit stats, got {other:?}"),
            }
        }
    }

    #[test]
    fn session_reuses_pred_index_and_scratch() {
        use unity_core::properties::Property;
        let p = counter(4, true);
        let x = p.vocab.lookup("x").unwrap();
        let mut session = crate::verifier::Verifier::new(&p, ScanConfig::default());
        for k in [4, 3, 2] {
            let v = session.verify(&Property::LeadsTo(tt(), ge(var(x), int(k))));
            assert!(v.passed(), "{v:?}");
        }
        // The pred index was built once and memoized.
        assert!(session.status().ts_reachable);
    }
}
