//! Property checkers and the proof-kernel discharger.
//!
//! All safety checks follow the paper's *inductive* semantics: they
//! quantify over **all** type-consistent states, never just reachable ones
//! (the paper explicitly avoids the substitution axiom). Reachability-aware
//! variants exist under explicit names for comparison experiments.
//!
//! Every public checker here is a **one-shot wrapper**: it opens a
//! throwaway engine cache and forwards to the cache-threaded `*_in`
//! form the [`Verifier`](crate::verifier::Verifier) session shares its
//! memoized artifacts through. Checking many properties of one program?
//! Use a session — same verdicts, one set of artifacts.

use std::collections::BTreeSet;
use std::sync::Arc;

use unity_core::command::Command;
use unity_core::expr::compile::{CompiledCommand, CompiledExpr, PackedLayout, Scratch};
use unity_core::expr::eval::eval_bool;
use unity_core::expr::{vars, Expr};
use unity_core::ident::VarId;
use unity_core::program::Program;
use unity_core::properties::Property;

use crate::compiled::{decode_witness, scan_packed};
use crate::space::{scan_for, ScanConfig};
use crate::trace::{Counterexample, McError};
use crate::transition::Universe;
use crate::verifier::EngineCache;
use crate::witness;

/// Compiled ingredients of a program-level check: the layout, compiled
/// commands, and any extra predicates lowered alongside. `None` when the
/// fast path does not apply (config opt-out, oversized vocabulary, or a
/// pathological expression the compiler rejects) — callers then use the
/// reference path. Layout and commands come from the session cache;
/// only the per-property predicates are compiled per call.
#[allow(clippy::type_complexity)]
fn compile_for_check(
    program: &Program,
    exprs: &[&Expr],
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<(
    Arc<PackedLayout>,
    Arc<Vec<CompiledCommand>>,
    Vec<CompiledExpr>,
)> {
    let (_, commands) = cache.compiled(program, cfg)?;
    let (layout, preds) = compile_preds(program, exprs, cfg, cache)?;
    Some((layout, commands, preds))
}

/// Like [`compile_for_check`] but for checks that never step commands
/// (`init`): only the predicates are lowered, so a pathological command
/// expression cannot disqualify the fast path.
fn compile_preds(
    program: &Program,
    exprs: &[&Expr],
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Option<(Arc<PackedLayout>, Vec<CompiledExpr>)> {
    let layout = cache.layout(program, cfg)?;
    let preds = exprs
        .iter()
        .map(|e| CompiledExpr::compile(e, &layout).ok())
        .collect::<Option<Vec<_>>>()?;
    Some((layout, preds))
}

/// The support of a command: variables its guard or right-hand sides read
/// plus its targets.
fn command_support(c: &Command, out: &mut BTreeSet<VarId>) {
    vars::collect(&c.guard, out);
    for (x, e) in &c.updates {
        out.insert(*x);
        vars::collect(e, out);
    }
}

/// Support of a program-level check over `exprs`: the expressions'
/// variables plus every command's support.
fn program_support(program: &Program, exprs: &[&Expr]) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    for e in exprs {
        vars::collect(e, &mut out);
    }
    for c in &program.commands {
        command_support(c, &mut out);
    }
    out
}

fn refuted(program: &Program, prop: &Property, cex: Counterexample) -> McError {
    McError::Refuted {
        property: format!("{} [{}]", prop.display(&program.vocab), program.name),
        cex,
    }
}

/// Checks `init p`: every state satisfying the `initially` predicate
/// satisfies `p`.
pub fn check_init(program: &Program, p: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_init_in(program, p, cfg, &mut EngineCache::default())
}

pub(crate) fn check_init_in(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    p.check_pred(&program.vocab)?;
    if crate::symbolic::wants(cfg) {
        if let Some(found) = crate::symbolic::try_check_init(program, p, cfg, cache) {
            return match found {
                None => Ok(()),
                Some(cex) => Err(refuted(program, &Property::Init(p.clone()), cex)),
            };
        }
    }
    let mut support = vars::free_vars(&program.init);
    vars::collect(p, &mut support);
    let vocab = &program.vocab;
    let found = 'found: {
        if let Some((layout, preds)) = compile_preds(program, &[&program.init, p], cfg, cache) {
            let (cinit, cp) = (&preds[0], &preds[1]);
            let word = scan_packed(vocab, &layout, Some(&support), cfg, || {
                let mut scratch = Scratch::new();
                move |w: u64| {
                    (cinit.eval_packed_bool(w, &mut scratch)
                        && !cp.eval_packed_bool(w, &mut scratch))
                    .then_some(w)
                }
            })?;
            break 'found word.map(|w| decode_witness(&layout, vocab, w));
        }
        scan_for(vocab, Some(&support), cfg, |s| {
            (program.satisfies_init(s) && !eval_bool(p, s)).then(|| s.clone())
        })?
    };
    match found {
        None => Ok(()),
        Some(state) => Err(refuted(
            program,
            &Property::Init(p.clone()),
            Counterexample::Init { state },
        )),
    }
}

/// Checks `p next q`: from every `p`-state, the implicit `skip` and every
/// command land in `q`.
pub fn check_next(program: &Program, p: &Expr, q: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_next_in(program, p, q, cfg, &mut EngineCache::default())
}

pub(crate) fn check_next_in(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    p.check_pred(&program.vocab)?;
    q.check_pred(&program.vocab)?;
    if crate::symbolic::wants(cfg) {
        if let Some(found) = crate::symbolic::try_check_next(program, p, q, cfg, cache) {
            return match found {
                None => Ok(()),
                Some(cex) => Err(refuted(program, &Property::Next(p.clone(), q.clone()), cex)),
            };
        }
    }
    let support = program_support(program, &[p, q]);
    let vocab = &program.vocab;
    // `stable p` arrives here as `p next p`: compile the predicate once.
    let pq = if p == q { vec![p] } else { vec![p, q] };
    // Both paths report the same raw witness — pre-state plus command
    // index — and the counterexample is assembled once, with the
    // post-state replayed on the reference semantics (`witness`).
    let found: Option<(unity_core::state::State, Option<usize>)> = 'found: {
        if let Some((layout, commands, preds)) = compile_for_check(program, &pq, cfg, cache) {
            let (cp, cq) = (&preds[0], preds.last().expect("at least one predicate"));
            let commands = &commands[..];
            let layout_ref = &*layout;
            let word = scan_packed(vocab, layout_ref, Some(&support), cfg, || {
                let mut scratch = Scratch::new();
                move |w: u64| {
                    if !cp.eval_packed_bool(w, &mut scratch) {
                        return None;
                    }
                    // Implicit skip: p-states must already satisfy q.
                    if !cq.eval_packed_bool(w, &mut scratch) {
                        return Some((w, None));
                    }
                    for (k, c) in commands.iter().enumerate() {
                        let after = c.step_packed(w, layout_ref, &mut scratch);
                        // A skipping command lands on w, where q already
                        // held — no need to re-evaluate.
                        if after != w && !cq.eval_packed_bool(after, &mut scratch) {
                            return Some((w, Some(k)));
                        }
                    }
                    None
                }
            })?;
            break 'found word.map(|(w, cmd)| (decode_witness(&layout, vocab, w), cmd));
        }
        scan_for(vocab, Some(&support), cfg, |s| {
            if !eval_bool(p, s) {
                return None;
            }
            // Implicit skip: p-states must already satisfy q.
            if !eval_bool(q, s) {
                return Some((s.clone(), None));
            }
            for (k, c) in program.commands.iter().enumerate() {
                let after = c.step(s, vocab);
                if !eval_bool(q, &after) {
                    return Some((s.clone(), Some(k)));
                }
            }
            None
        })?
    };
    match found {
        None => Ok(()),
        Some((state, cmd)) => Err(refuted(
            program,
            &Property::Next(p.clone(), q.clone()),
            witness::next_cex(program, state, cmd),
        )),
    }
}

/// Checks `p next q` *symbolically* via `wp`: `⊨ p ⇒ wp(c, q)` for every
/// command (plus `p ⇒ q` for the implicit skip). Must agree with
/// [`check_next`] — enforced by property tests.
pub fn check_next_wp(
    program: &Program,
    p: &Expr,
    q: &Expr,
    cfg: &ScanConfig,
) -> Result<(), McError> {
    use unity_core::expr::build::implies;
    crate::space::check_valid(&program.vocab, &implies(p.clone(), q.clone()), cfg)?;
    for c in &program.commands {
        let wp = c.wp(q, &program.vocab);
        crate::space::check_valid(&program.vocab, &implies(p.clone(), wp), cfg)?;
    }
    Ok(())
}

/// Checks `stable p` (= `p next p`).
pub fn check_stable(program: &Program, p: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_stable_in(program, p, cfg, &mut EngineCache::default())
}

pub(crate) fn check_stable_in(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    check_next_in(program, p, p, cfg, cache)
}

/// Checks `invariant p` (= `init p ∧ stable p` — the inductive definition).
pub fn check_invariant(program: &Program, p: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_invariant_in(program, p, cfg, &mut EngineCache::default())
}

pub(crate) fn check_invariant_in(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    if crate::symbolic::wants(cfg) {
        p.check_pred(&program.vocab)?;
        // One symbolic lowering decides both halves (the split call
        // below would lower the predicate twice).
        if let Some(found) = crate::symbolic::try_check_invariant(program, p, cfg, cache) {
            return match found {
                None => Ok(()),
                Some(cex) => Err(refuted(program, &Property::Invariant(p.clone()), cex)),
            };
        }
    }
    check_init_in(program, p, cfg, cache)?;
    check_stable_in(program, p, cfg, cache)
}

/// Checks `invariant p` over *reachable* states only (the
/// strongest-invariant reading the paper avoids). Provided for the
/// compositional-vs-monolithic comparison experiments.
pub fn check_invariant_reachable(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
) -> Result<(), McError> {
    p.check_pred(&program.vocab)?;
    crate::space::space_size(&program.vocab, cfg)?;
    // Exhaustive BFS (the budget cannot bind after the space_size guard),
    // so violations come back as shortest paths from an initial state.
    let bmc = crate::bmc::BmcConfig {
        max_depth: u32::MAX,
        max_states: usize::MAX,
        compiled: cfg.uses_compiled(),
        ..Default::default()
    };
    match crate::bmc::bounded_invariant(program, p, &bmc) {
        Ok(verdict) => {
            debug_assert!(verdict.is_complete());
            Ok(())
        }
        Err(McError::Refuted { cex, .. }) => {
            Err(refuted(program, &Property::Invariant(p.clone()), cex))
        }
        Err(other) => Err(other),
    }
}

/// Checks `unchanged e`: no command changes the value of `e` (the paper's
/// `⟨∀k :: stable (e = k)⟩` schema).
pub fn check_unchanged(program: &Program, e: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_unchanged_in(program, e, cfg, &mut EngineCache::default())
}

pub(crate) fn check_unchanged_in(
    program: &Program,
    e: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    e.infer_type(&program.vocab)?;
    if crate::symbolic::wants(cfg) {
        if let Some(found) = crate::symbolic::try_check_unchanged(program, e, cfg, cache) {
            return match found {
                None => Ok(()),
                Some(cex) => Err(refuted(program, &Property::Unchanged(e.clone()), cex)),
            };
        }
    }
    let support = program_support(program, &[e]);
    let vocab = &program.vocab;
    // Raw witness: pre-state plus offending command index; before/after
    // values are recomputed once by the shared constructor (`witness`).
    let found: Option<(unity_core::state::State, usize)> = 'found: {
        if let Some((layout, commands, preds)) = compile_for_check(program, &[e], cfg, cache) {
            let ce = &preds[0];
            let commands = &commands[..];
            let layout_ref = &*layout;
            let word = scan_packed(vocab, layout_ref, Some(&support), cfg, || {
                let mut scratch = Scratch::new();
                move |w: u64| {
                    let before = ce.eval_packed(w, &mut scratch);
                    for (k, c) in commands.iter().enumerate() {
                        let after_w = c.step_packed(w, layout_ref, &mut scratch);
                        if after_w == w {
                            continue; // skip step: e cannot have changed
                        }
                        let after = ce.eval_packed(after_w, &mut scratch);
                        if after != before {
                            return Some((w, k));
                        }
                    }
                    None
                }
            })?;
            break 'found word.map(|(w, k)| (decode_witness(&layout, vocab, w), k));
        }
        scan_for(vocab, Some(&support), cfg, |s| {
            let before = unity_core::expr::eval::eval(e, s);
            for (k, c) in program.commands.iter().enumerate() {
                let after_state = c.step(s, vocab);
                if unity_core::expr::eval::eval(e, &after_state) != before {
                    return Some((s.clone(), k));
                }
            }
            None
        })?
    };
    match found {
        None => Ok(()),
        Some((state, k)) => Err(refuted(
            program,
            &Property::Unchanged(e.clone()),
            witness::unchanged_cex(program, e, state, k),
        )),
    }
}

/// Checks `transient p`: some fair command falsifies `p` from *every*
/// `p`-state.
pub fn check_transient(program: &Program, p: &Expr, cfg: &ScanConfig) -> Result<(), McError> {
    check_transient_in(program, p, cfg, &mut EngineCache::default())
}

pub(crate) fn check_transient_in(
    program: &Program,
    p: &Expr,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    p.check_pred(&program.vocab)?;
    if crate::symbolic::wants(cfg) {
        if let Some(found) = crate::symbolic::try_check_transient(program, p, cfg, cache) {
            return match found {
                None => Ok(()),
                Some(cex) => Err(refuted(program, &Property::Transient(p.clone()), cex)),
            };
        }
    }
    let vocab = &program.vocab;
    // Session-cached commands when the whole program compiles; a
    // pathological command elsewhere only costs a per-command compile
    // here, never the fast path for the others.
    let cached_commands = cache.compiled(program, cfg).map(|(_, commands)| commands);
    let compiled = cache.layout(program, cfg).and_then(|layout| {
        let cp = CompiledExpr::compile(p, &layout).ok()?;
        Some((layout, cp))
    });
    let mut witnesses = Vec::new();
    for (idx, cmd) in program.fair_commands() {
        // Per-command support: p's variables plus this command's.
        let mut support = vars::free_vars(p);
        command_support(cmd, &mut support);
        let stuck = 'stuck: {
            if let Some((layout, cp)) = &compiled {
                let ccmd = match &cached_commands {
                    Some(commands) => Ok(commands[idx].clone()),
                    None => CompiledCommand::compile(cmd, layout),
                };
                if let Ok(ccmd) = ccmd {
                    let layout = &**layout;
                    let word = scan_packed(vocab, layout, Some(&support), cfg, || {
                        let (cp, ccmd) = (cp, &ccmd);
                        let mut scratch = Scratch::new();
                        move |w: u64| {
                            if !cp.eval_packed_bool(w, &mut scratch) {
                                return None;
                            }
                            let after = ccmd.step_packed(w, layout, &mut scratch);
                            // Skip step ⇒ still a p-state: stuck witness.
                            if after == w {
                                return Some(w);
                            }
                            cp.eval_packed_bool(after, &mut scratch).then_some(w)
                        }
                    })?;
                    break 'stuck word.map(|w| decode_witness(layout, vocab, w));
                }
            }
            scan_for(vocab, Some(&support), cfg, |s| {
                if !eval_bool(p, s) {
                    return None;
                }
                let after = cmd.step(s, vocab);
                eval_bool(p, &after).then(|| s.clone())
            })?
        };
        match stuck {
            None => return Ok(()), // this fair command is a witness
            Some(state) => witnesses.push((idx, state)),
        }
    }
    Err(refuted(
        program,
        &Property::Transient(p.clone()),
        witness::transient_cex(program, witnesses),
    ))
}

/// Checks any property on `program`. `leadsto` uses the given universe;
/// safety properties always use the inductive (all-states) semantics.
pub fn check_property(
    program: &Program,
    prop: &Property,
    universe: Universe,
    cfg: &ScanConfig,
) -> Result<(), McError> {
    check_property_in(program, prop, universe, cfg, &mut EngineCache::default())
}

pub(crate) fn check_property_in(
    program: &Program,
    prop: &Property,
    universe: Universe,
    cfg: &ScanConfig,
    cache: &mut EngineCache,
) -> Result<(), McError> {
    match prop {
        Property::Init(p) => check_init_in(program, p, cfg, cache),
        Property::Transient(p) => check_transient_in(program, p, cfg, cache),
        Property::Next(p, q) => check_next_in(program, p, q, cfg, cache),
        Property::Stable(p) => check_stable_in(program, p, cfg, cache),
        Property::Invariant(p) => check_invariant_in(program, p, cfg, cache),
        Property::Unchanged(e) => check_unchanged_in(program, e, cfg, cache),
        Property::LeadsTo(p, q) => {
            crate::fair::check_leadsto_in(program, p, q, universe, cfg, cache).map(|_| ())
        }
    }
}

/// A [`Discharger`](unity_core::proof::Discharger) backed by this model
/// checker: premises are checked semantically on the scoped program,
/// validity/equivalence side conditions by full-domain scans.
///
/// The discharger is a verification *session*: each scope (the system
/// and every component) keeps its own memoized engine artifacts across
/// premises, so a derivation with many obligations per scope pays for
/// the compiled pipeline / symbolic engine once per scope, not once per
/// premise.
pub struct McDischarger<'a> {
    /// The composed system providing component and system programs.
    pub system: &'a unity_core::compose::System,
    /// Universe for leadsto premises.
    pub universe: Universe,
    /// Scan configuration. Set it **before** the first discharge:
    /// artifacts already memoized by earlier premises were built under
    /// the configuration in effect at that time and are not rebuilt on
    /// a change.
    pub cfg: ScanConfig,
    /// Count of discharged obligations (reporting).
    pub discharged: usize,
    /// Memoized per-scope artifacts (`[system, components...]`).
    caches: Vec<EngineCache>,
}

impl<'a> McDischarger<'a> {
    /// Builds a discharger over `system` with default configuration.
    pub fn new(system: &'a unity_core::compose::System) -> Self {
        let caches = (0..=system.components.len())
            .map(|_| EngineCache::default())
            .collect();
        McDischarger {
            system,
            universe: Universe::Reachable,
            cfg: ScanConfig::default(),
            discharged: 0,
            caches,
        }
    }

    /// The scoped program plus its session cache.
    fn scope_session(
        &mut self,
        scope: &unity_core::proof::Scope,
    ) -> Result<(&'a Program, &mut EngineCache), unity_core::error::CoreError> {
        match scope {
            unity_core::proof::Scope::System => Ok((&self.system.composed, &mut self.caches[0])),
            unity_core::proof::Scope::Component(i) => {
                let program = self.system.components.get(*i).ok_or_else(|| {
                    unity_core::error::CoreError::Discharge {
                        obligation: format!("component {i}"),
                        reason: "no such component".into(),
                    }
                })?;
                Ok((program, &mut self.caches[i + 1]))
            }
        }
    }
}

fn to_core(e: McError) -> unity_core::error::CoreError {
    match e {
        McError::Core(c) => c,
        other => unity_core::error::CoreError::Discharge {
            obligation: "model-checking obligation".into(),
            reason: other.to_string(),
        },
    }
}

impl unity_core::proof::Discharger for McDischarger<'_> {
    fn discharge(
        &mut self,
        judgment: &unity_core::proof::Judgment,
    ) -> Result<(), unity_core::error::CoreError> {
        let universe = self.universe;
        let cfg = self.cfg.clone();
        let (program, cache) = self.scope_session(&judgment.scope)?;
        check_property_in(program, &judgment.prop, universe, &cfg, cache).map_err(to_core)?;
        self.discharged += 1;
        Ok(())
    }

    fn valid(&mut self, p: &Expr) -> Result<(), unity_core::error::CoreError> {
        let cfg = self.cfg.clone();
        // Side conditions range over the merged vocabulary — the system
        // scope's session (its symbolic engine, when configured) serves
        // them.
        crate::space::check_valid_in(&self.system.composed, p, &cfg, &mut self.caches[0])
            .map_err(to_core)?;
        self.discharged += 1;
        Ok(())
    }

    fn equivalent(&mut self, a: &Expr, b: &Expr) -> Result<(), unity_core::error::CoreError> {
        let cfg = self.cfg.clone();
        crate::space::check_equivalent_in(&self.system.composed, a, b, &cfg, &mut self.caches[0])
            .map_err(to_core)?;
        self.discharged += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn counter() -> Program {
        let mut v = Vocabulary::new();
        let c = v.declare("c", Domain::int_range(0, 3).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 3).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .local(c)
            .init(and2(eq(var(c), int(0)), eq(var(big), int(0))))
            .fair_command(
                "a",
                lt(var(c), int(3)),
                vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn init_checks() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        check_init(&p, &eq(var(c), var(big)), &ScanConfig::default()).unwrap();
        assert!(check_init(&p, &eq(var(c), int(1)), &ScanConfig::default()).is_err());
    }

    #[test]
    fn unchanged_difference() {
        // The paper's key component property: C - c never changes.
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        check_unchanged(&p, &sub(var(big), var(c)), &ScanConfig::default()).unwrap();
        // But C itself changes.
        assert!(check_unchanged(&p, &var(big), &ScanConfig::default()).is_err());
    }

    #[test]
    fn stable_and_next() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        check_stable(&p, &ge(var(c), int(1)), &ScanConfig::default()).unwrap();
        assert!(check_stable(&p, &le(var(c), int(1)), &ScanConfig::default()).is_err());
        check_next(
            &p,
            &eq(var(c), int(1)),
            &le(var(c), int(2)),
            &ScanConfig::default(),
        )
        .unwrap();
        // skip violation: p-state not in q.
        assert!(check_next(
            &p,
            &eq(var(c), int(2)),
            &eq(var(c), int(3)),
            &ScanConfig::default()
        )
        .is_err());
    }

    #[test]
    fn wp_check_agrees() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let cases = [
            (ge(var(c), int(1)), ge(var(c), int(1))),
            (le(var(c), int(1)), le(var(c), int(1))),
            (eq(var(c), int(1)), le(var(c), int(2))),
        ];
        for (pp, qq) in cases {
            let op = check_next(&p, &pp, &qq, &ScanConfig::default()).is_ok();
            let sym = check_next_wp(&p, &pp, &qq, &ScanConfig::default()).is_ok();
            assert_eq!(op, sym, "operational and wp-based next must agree");
        }
    }

    #[test]
    fn transient_needs_fairness_and_universality() {
        // Wrap-around counter: no domain blocking, so transience is clean.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("wrap", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("step", tt(), vec![(x, rem(add(var(x), int(1)), int(4)))])
            .build()
            .unwrap();
        // x == 1 is transient: the fair command always moves off it.
        check_transient(&p, &eq(var(x), int(1)), &ScanConfig::default()).unwrap();
        // x <= 1 is not: from x == 0 the step lands on 1, still inside.
        assert!(check_transient(&p, &le(var(x), int(1)), &ScanConfig::default()).is_err());
    }

    #[test]
    fn transient_defeated_by_domain_blocking() {
        // In the bounded toy component, `c == 1` is NOT transient under the
        // paper's all-states semantics: in the (unreachable) state
        // c = 1 ∧ C = 3 the shared counter is saturated, the update would
        // leave C's domain, and the command behaves as skip. This is
        // exactly why the §3 derivation never needs per-counter transience
        // — only the `unchanged`-style universal safety properties.
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let err = check_transient(&p, &eq(var(c), int(1)), &ScanConfig::default()).unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::Transient { witnesses },
                ..
            } => {
                assert_eq!(witnesses.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invariant_inductive_vs_reachable() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        let inv = eq(var(c), var(big));
        check_invariant(&p, &inv, &ScanConfig::default()).unwrap();
        check_invariant_reachable(&p, &inv, &ScanConfig::default()).unwrap();
        // A reachably-true but non-inductive predicate: C <= c is reachably
        // invariant (they're equal) but not stable from e.g. c=0, C=1?
        // c=0,C=1: command sets c=1, C=2: C<=c becomes 2<=1 false — wait
        // C<=c at (0,1) is 1<=0 false, so vacuous. Use c >= C: at state
        // (c=3, C=0) command blocked... use C < 3 => c < 3? At (c=0,C=2)
        // step → (1,3): C<3 ⇒ c<3 was true (2<3⇒0<3), after: 3<3 false ⇒
        // vacuous true. Simpler known split: "C == c" is inductive here, so
        // demonstrate divergence with "C + c is even":
        let even = eq(rem(add(var(big), var(c)), int(2)), int(0));
        // Reachably: C == c so C + c = 2c is always even — holds.
        check_invariant_reachable(&p, &even, &ScanConfig::default()).unwrap();
        // Inductively: from (c=0, C=1) the sum 1 is odd — init fails?
        // No: init pins both to 0. Stability fails? From (c=1, C=1): sum 2
        // even, step → (2,2) sum even. From (c=0,C=2): step → (1,3): 4
        // even. Parity of C+c is in fact preserved by +2 steps; but init
        // allows only (0,0) so inductive init holds; stability: sum parity
        // preserved. So it IS inductive. Use instead "c <= C":
        // from (c=2, C=0): step → (3,1): 3 <= 1 false, while 2 <= 0 was
        // false — vacuous. Hmm, use "c >= C": at (c=0,C=0) ok; from
        // (c=0, C=3): 0>=3 false — vacuous. From (c=3,C=2): 3>=2, guard
        // c<3 blocks, stays — fine. From (c=2,C=3): false vacuous. From
        // (c=2,C=2): step (3,3) ok. Also inductive!
        // The genuinely non-inductive one: "C != 1 || c == 1":
        let tricky = or2(ne(var(big), int(1)), eq(var(c), int(1)));
        check_invariant_reachable(&p, &tricky, &ScanConfig::default()).unwrap();
        let r = check_invariant(&p, &tricky, &ScanConfig::default());
        assert!(
            r.is_err(),
            "non-inductive predicate must fail the inductive check"
        );
    }

    #[test]
    fn discharger_discharges() {
        use unity_core::compose::{InitSatCheck, System};
        use unity_core::proof::{Discharger, Judgment, Scope};
        use unity_core::properties::Property;
        let sys = System::compose(vec![counter()], InitSatCheck::Exhaustive).unwrap();
        let mut d = McDischarger::new(&sys);
        let c = sys.vocab().lookup("c").unwrap();
        let big = sys.vocab().lookup("C").unwrap();
        d.discharge(&Judgment::new(
            Scope::Component(0),
            Property::Unchanged(sub(var(big), var(c))),
        ))
        .unwrap();
        d.discharge(&Judgment::new(
            Scope::System,
            Property::LeadsTo(tt(), eq(var(c), int(3))),
        ))
        .unwrap();
        assert!(d
            .discharge(&Judgment::new(Scope::System, Property::Init(ff())))
            .is_err());
        assert_eq!(d.discharged, 2);
        d.valid(&implies(eq(var(c), int(0)), le(var(c), int(3))))
            .unwrap();
        d.equivalent(&add(var(c), var(c)), &mul(int(2), var(c)))
            .unwrap();
        assert_eq!(d.discharged, 4);
    }
}
