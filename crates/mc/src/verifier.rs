//! The verifier session: one composed program, many properties.
//!
//! The paper's method is to pose *many* universal properties against one
//! composed program. The free functions in [`crate::check`] decide each
//! property from scratch — rebuilding the compiled pipeline, the
//! transition system and its reachable set, and the symbolic engine with
//! its tuned variable order on **every call**. [`Verifier`] is the
//! session form of the same checkers: it characterizes the composite
//! once — each per-engine artifact is built lazily on first use and
//! memoized — and every subsequent property is decided against those
//! shared artifacts. The free functions remain as thin one-shot wrappers
//! over a throwaway session, so both forms return identical verdicts
//! (pinned by the `prop_session` differential suite).
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_mc::prelude::*;
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
//! let p = Program::builder("count", Arc::new(v))
//!     .init(eq(var(x), int(0)))
//!     .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
//!     .build()
//!     .unwrap();
//!
//! let mut session = Verifier::new(&p, ScanConfig::default());
//! // Both checks share one set of engine artifacts.
//! let safe = session.verify(&Property::Invariant(le(var(x), int(3))));
//! assert!(safe.passed());
//! let live = session.verify(&Property::LeadsTo(tt(), eq(var(x), int(3))));
//! assert!(live.passed());
//! // A failing check carries its decoded, replayable witness.
//! let bad = session.verify(&Property::Invariant(le(var(x), int(2))));
//! assert!(bad.failed() && bad.counterexample().is_some());
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use unity_core::expr::compile::{CompiledCommand, PackedLayout};
use unity_core::expr::Expr;
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_symbolic::{OrderMode, SymStats, SymbolicProgram};

use crate::compiled::try_layout;
use crate::report::{CheckReport, Report};
use crate::space::{Engine, ScanConfig};
use crate::trace::{Counterexample, McError};
use crate::transition::{TransitionSystem, Universe};

/// One named property check — the unit of [`Verifier::verify_all`] and
/// the shape `.unity` spec lines parse into.
#[derive(Debug, Clone)]
pub struct NamedCheck {
    /// Check label (`check<k>` when the spec line had no label).
    pub name: String,
    /// The property to check.
    pub property: Property,
    /// 1-based source line for diagnostics (0 = not from a file).
    pub line: usize,
}

/// Lazily built, memoized per-engine artifacts shared by every check of
/// one session. Inner `None` marks an engine that *cannot* serve this
/// program (vocabulary beyond 64 packed bits, uncompilable expression,
/// value-partition explosion) — the fallback is then also memoized, so
/// repeated checks don't retry a doomed build.
#[derive(Default)]
pub(crate) struct EngineCache {
    /// `try_layout` result.
    layout: Option<Option<Arc<PackedLayout>>>,
    /// Compiled commands over `layout`.
    commands: Option<Option<Arc<Vec<CompiledCommand>>>>,
    /// The symbolic engine, with its partitioned transition relations,
    /// tuned variable order, and memoized reachable set.
    sym: Option<Option<Box<SymbolicProgram>>>,
    /// Transition system + reachable set per universe
    /// (`[Reachable, AllStates]`).
    ts: [Option<Arc<TransitionSystem>>; 2],
    /// CSR predecessor index per universe, inverted once from the
    /// memoized transition system (the `leadsto` worklist walks it).
    pred: [Option<Arc<crate::pred::PredIndex>>; 2],
    /// Pooled buffers for the worklist liveness engine (Tarjan scratch,
    /// trap/danger marks, worklist) — reused across `leadsto` checks.
    pub(crate) liveness: crate::fair::LivenessScratch,
    /// Whether the last check was decided symbolically (set by the
    /// bridge in [`crate::symbolic`], read back into the verdict).
    pub(crate) sym_decided: bool,
}

impl EngineCache {
    /// The packed layout, or `None` when the fast path is off/oversized.
    pub(crate) fn layout(
        &mut self,
        program: &Program,
        cfg: &ScanConfig,
    ) -> Option<Arc<PackedLayout>> {
        self.layout
            .get_or_insert_with(|| try_layout(&program.vocab, cfg).map(Arc::new))
            .clone()
    }

    /// Layout plus compiled commands, or `None` when any command fails
    /// to compile (callers fall back to the reference path).
    #[allow(clippy::type_complexity)]
    pub(crate) fn compiled(
        &mut self,
        program: &Program,
        cfg: &ScanConfig,
    ) -> Option<(Arc<PackedLayout>, Arc<Vec<CompiledCommand>>)> {
        let layout = self.layout(program, cfg)?;
        let commands = self
            .commands
            .get_or_insert_with(|| {
                program
                    .commands
                    .iter()
                    .map(|c| CompiledCommand::compile(c, &layout).ok())
                    .collect::<Option<Vec<_>>>()
                    .map(Arc::new)
            })
            .clone()?;
        Some((layout, commands))
    }

    /// The symbolic engine, built on first use; `None` when the program
    /// cannot be lowered (callers fall back to the explicit engines).
    pub(crate) fn symbolic(
        &mut self,
        program: &Program,
        cfg: &ScanConfig,
    ) -> Option<&mut SymbolicProgram> {
        self.sym
            .get_or_insert_with(|| {
                SymbolicProgram::build_with(program, &cfg.symbolic)
                    .ok()
                    .map(Box::new)
            })
            .as_deref_mut()
    }

    /// The transition system over `universe`, built on first use.
    pub(crate) fn transition_system(
        &mut self,
        program: &Program,
        universe: Universe,
        cfg: &ScanConfig,
    ) -> Result<Arc<TransitionSystem>, McError> {
        let slot = match universe {
            Universe::Reachable => &mut self.ts[0],
            Universe::AllStates => &mut self.ts[1],
        };
        if let Some(ts) = slot {
            return Ok(ts.clone());
        }
        let ts = Arc::new(TransitionSystem::build(program, universe, cfg)?);
        *slot = Some(ts.clone());
        Ok(ts)
    }

    /// The CSR predecessor index of `ts` over `universe`, inverted on
    /// first use (in parallel when `par` allows) and memoized alongside
    /// the transition system.
    pub(crate) fn pred_index(
        &mut self,
        ts: &TransitionSystem,
        universe: Universe,
        par: &crate::parallel::ParConfig,
    ) -> Arc<crate::pred::PredIndex> {
        let slot = match universe {
            Universe::Reachable => &mut self.pred[0],
            Universe::AllStates => &mut self.pred[1],
        };
        slot.get_or_insert_with(|| Arc::new(crate::pred::PredIndex::build_with(ts, par)))
            .clone()
    }

    /// Whether a layout derivation was attempted at all (distinguishes
    /// "not yet tried" from "tried and unavailable" in
    /// [`EngineCache::status`]'s first component).
    pub(crate) fn layout_attempted(&self) -> bool {
        self.layout.is_some()
    }

    /// Whether each artifact has been built (and succeeded):
    /// `(layout, compiled commands, symbolic engine, ts-reachable,
    /// ts-all-states, pred-reachable, pred-all-states)`. Introspection
    /// for tests, tuning, and the artifact store's hit/miss accounting.
    pub(crate) fn status(&self) -> (bool, bool, bool, bool, bool, bool, bool) {
        (
            matches!(self.layout, Some(Some(_))),
            matches!(self.commands, Some(Some(_))),
            matches!(self.sym, Some(Some(_))),
            self.ts[0].is_some(),
            self.ts[1].is_some(),
            self.pred[0].is_some(),
            self.pred[1].is_some(),
        )
    }
}

/// A portable snapshot of the session artifacts worth persisting: the
/// transition systems and predecessor indexes per universe
/// (`[Reachable, AllStates]`) plus the symbolic engine's tuned field
/// order. This is what `unity-serve`'s content-hashed store saves after
/// a cold run and seeds back before a warm one — a seeded session skips
/// `TransitionSystem::build` and `PredIndex::build` entirely and starts
/// the BDD at the previously tuned order.
///
/// Artifacts are program-specific: seed a session only with a snapshot
/// exported from a session over the *same* program (the store keys
/// snapshots by spec content hash to guarantee this).
#[derive(Debug, Clone, Default)]
pub struct SessionArtifacts {
    /// Transition systems per universe (`[Reachable, AllStates]`).
    pub ts: [Option<Arc<TransitionSystem>>; 2],
    /// Predecessor indexes per universe (`[Reachable, AllStates]`).
    pub pred: [Option<Arc<crate::pred::PredIndex>>; 2],
    /// The symbolic engine's field order (a permutation of
    /// `0..vocab.len()`), exported after sifting settled.
    pub field_order: Option<Vec<usize>>,
}

impl SessionArtifacts {
    /// Whether the snapshot carries nothing.
    pub fn is_empty(&self) -> bool {
        self.ts.iter().all(Option::is_none)
            && self.pred.iter().all(Option::is_none)
            && self.field_order.is_none()
    }
}

/// Which artifacts a [`Verifier`] session has materialized so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStatus {
    /// Packed layout derived.
    pub layout: bool,
    /// Commands compiled to bytecode.
    pub compiled: bool,
    /// Symbolic engine built.
    pub symbolic: bool,
    /// Transition system over the reachable universe built.
    pub ts_reachable: bool,
    /// Transition system over the all-states universe built.
    pub ts_all_states: bool,
    /// Predecessor index over the reachable universe built.
    pub pred_reachable: bool,
    /// Predecessor index over the all-states universe built.
    pub pred_all_states: bool,
}

/// Outcome of one property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The property holds.
    Pass,
    /// The property is refuted, with a decoded, replayable witness.
    Fail {
        /// The counterexample.
        cex: Counterexample,
    },
    /// The check could not be decided (space bound, typing error, …).
    Error {
        /// The underlying error.
        error: McError,
    },
}

/// Engine cost counters attached to a [`Verdict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictStats {
    /// No counters available for this check.
    Unmeasured,
    /// Enumerating engines: `states` the deciding scan quantified over
    /// (projected onto the property's support) and, for `leadsto`,
    /// the `transitions` of the underlying transition system plus the
    /// worklist engine's traversal counters (all 0 for pure scans).
    Explicit {
        /// States the scan quantified over.
        states: u64,
        /// Transitions computed (0 for pure scans).
        transitions: u64,
        /// `¬q` states the leadsto SCC pass actually visited.
        scanned_states: u64,
        /// Predecessor edges walked by the leadsto worklist.
        pred_edges: u64,
        /// States pushed onto the leadsto worklist (trap seeds
        /// included).
        worklist_pushes: u64,
        /// Wall-clock milliseconds the transition-system build took
        /// (0 for pure scans, which build no system).
        build_ms: u64,
        /// Shards the build's exploration ran with (1 = sequential,
        /// 0 for pure scans).
        shards: u32,
        /// Work-stealing services of non-owned shards during the build.
        steals: u64,
        /// Successor edges crossing shard boundaries during the build.
        cross_shard_edges: u64,
    },
    /// Symbolic engine: a snapshot of the session's cumulative arena
    /// counters at check completion.
    Symbolic {
        /// The engine counters.
        stats: SymStats,
    },
}

/// Machine-readable provenance of a compositional discharge: which
/// assume-guarantee rule closed the obligation, over which components,
/// and whether the supporting facts came from the certificate cache.
/// Attached to a [`Verdict`] only by
/// [`CompositionalVerifier`](crate::compositional::CompositionalVerifier)
/// sessions — flat sessions leave it `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DischargeInfo {
    /// The closing rule's name: `lift-universal`, `lift-existential`,
    /// `cone-of-influence`, or `product-fallback`.
    pub rule: String,
    /// The component indices the rule's evidence came from (empty for
    /// `lift-universal`, which rests on every component, and for the
    /// product fallback, whose evidence is the product space itself).
    pub components: Vec<usize>,
    /// Whether every supporting component fact was answered from the
    /// certificate cache (no component check ran).
    pub cached: bool,
}

/// The structured result of one property check: pass/fail with witness,
/// the engine that decided it, cost counters, and wall time.
///
/// Replaces the free functions' `Result<(), McError>` convention;
/// [`Verdict::into_result`] recovers it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a verdict carries the check's outcome; inspect or convert it"]
pub struct Verdict {
    /// The checked property, rendered with variable names.
    pub property: String,
    /// Pass, fail (with counterexample), or error.
    pub outcome: Outcome,
    /// The engine that (primarily) decided the check. `leadsto` always
    /// reports an enumerating engine — the symbolic backend does not
    /// implement it and falls back.
    pub engine: Engine,
    /// Cost counters.
    pub stats: VerdictStats,
    /// Wall-clock time of this check.
    pub elapsed: Duration,
    /// How a compositional session discharged this obligation (`None`
    /// for flat sessions).
    pub discharge: Option<DischargeInfo>,
}

impl Verdict {
    /// Whether the property holds.
    pub fn passed(&self) -> bool {
        matches!(self.outcome, Outcome::Pass)
    }

    /// Whether the property was refuted (errors are *not* failures).
    pub fn failed(&self) -> bool {
        matches!(self.outcome, Outcome::Fail { .. })
    }

    /// The counterexample of a failed check.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            Outcome::Fail { cex } => Some(cex),
            _ => None,
        }
    }

    /// The error of an undecidable check.
    pub fn error(&self) -> Option<&McError> {
        match &self.outcome {
            Outcome::Error { error } => Some(error),
            _ => None,
        }
    }

    /// Converts back to the free functions' `Result` convention.
    pub fn into_result(self) -> Result<(), McError> {
        match self.outcome {
            Outcome::Pass => Ok(()),
            Outcome::Fail { cex } => Err(McError::Refuted {
                property: self.property,
                cex,
            }),
            Outcome::Error { error } => Err(error),
        }
    }
}

/// A verification session over one program: build the semantic artifacts
/// once, decide every property by its relation to them.
///
/// See the [module docs](crate::verifier) for a quick-start example.
/// The session is single-threaded (`&mut self` per check); the scans a
/// check runs are themselves chunk-parallel per [`ScanConfig::par`].
pub struct Verifier<'p> {
    program: &'p Program,
    cfg: ScanConfig,
    universe: Universe,
    pub(crate) cache: EngineCache,
}

impl<'p> Verifier<'p> {
    /// Opens a session on `program`. Nothing is built until the first
    /// check needs it.
    pub fn new(program: &'p Program, cfg: ScanConfig) -> Self {
        Verifier {
            program,
            cfg,
            universe: Universe::Reachable,
            cache: EngineCache::default(),
        }
    }

    /// Sets the universe `leadsto` checks quantify over (safety checks
    /// always use the paper's inductive all-states semantics). Default:
    /// [`Universe::Reachable`].
    pub fn with_universe(mut self, universe: Universe) -> Self {
        self.universe = universe;
        self
    }

    /// The program under verification.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The session's scan configuration.
    pub fn cfg(&self) -> &ScanConfig {
        &self.cfg
    }

    /// The universe `leadsto` checks run in.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Which artifacts have been materialized so far.
    pub fn status(&self) -> SessionStatus {
        let (layout, compiled, symbolic, ts_reachable, ts_all_states, pred_reachable, pred_all) =
            self.cache.status();
        SessionStatus {
            layout,
            compiled,
            symbolic,
            ts_reachable,
            ts_all_states,
            pred_reachable,
            pred_all_states: pred_all,
        }
    }

    /// Exports the session's shareable artifacts: every memoized
    /// transition system and predecessor index, plus the symbolic
    /// engine's current field order. Arc-cloned, not copied — cheap to
    /// call after every run.
    pub fn artifacts(&self) -> SessionArtifacts {
        SessionArtifacts {
            ts: self.cache.ts.clone(),
            pred: self.cache.pred.clone(),
            field_order: match &self.cache.sym {
                Some(Some(sym)) => Some(sym.field_order()),
                _ => None,
            },
        }
    }

    /// Seeds the session with previously exported artifacts (see
    /// [`SessionArtifacts`]). Seeded slots satisfy the first build
    /// request instead of running the explorer / CSR inversion, and a
    /// seeded field order starts the BDD at the tuned permutation
    /// (skipping the sifting warm-up).
    ///
    /// Snapshots that plainly disagree with the program — wrong state
    /// arity for the universe, a field order that is not a permutation
    /// of the vocabulary — are ignored slot by slot rather than
    /// installed: a stale or corrupt artifact must never influence a
    /// verdict. Already-built slots are kept (seeding is first-wins).
    pub fn seed(&mut self, artifacts: SessionArtifacts) {
        for (k, slot) in artifacts.ts.into_iter().enumerate() {
            let Some(ts) = slot else { continue };
            if ts.n_commands != self.program.commands.len()
                || ts.vocab().len() != self.program.vocab.len()
            {
                continue;
            }
            if self.cache.ts[k].is_none() {
                self.cache.ts[k] = Some(ts);
            }
        }
        for (k, slot) in artifacts.pred.into_iter().enumerate() {
            let Some(pred) = slot else { continue };
            // A predecessor index only makes sense next to the matching
            // transition system; require the shape to line up.
            let fits = self.cache.ts[k].as_ref().is_some_and(|ts| {
                pred.len() == ts.len() && pred.edge_count() == ts.transition_count()
            });
            if fits && self.cache.pred[k].is_none() {
                self.cache.pred[k] = Some(pred);
            }
        }
        if let Some(order) = artifacts.field_order {
            let n = self.program.vocab.len();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let is_perm = sorted == (0..n).collect::<Vec<_>>();
            // Install only before the engine exists — a built engine's
            // order is already at least as good as the snapshot.
            if is_perm && self.cache.sym.is_none() {
                self.cfg.symbolic.order = OrderMode::Fields(order);
            }
        }
    }

    /// The memoized transition system over `universe` (builds it on
    /// first use). This *is* the reachable set when `universe` is
    /// [`Universe::Reachable`].
    pub fn transition_system(
        &mut self,
        universe: Universe,
    ) -> Result<Arc<TransitionSystem>, McError> {
        self.cache
            .transition_system(self.program, universe, &self.cfg)
    }

    /// The memoized symbolic engine, or `None` when the program cannot
    /// be lowered. Built on first use regardless of the configured
    /// engine — callers wanting symbolic-only behaviour should check
    /// `cfg().engine` themselves.
    pub fn symbolic(&mut self) -> Option<&mut SymbolicProgram> {
        self.cache.symbolic(self.program, &self.cfg)
    }

    /// Checks one property, sharing every memoized artifact with the
    /// session's other checks.
    pub fn verify(&mut self, prop: &Property) -> Verdict {
        let rendered = prop.display(&self.program.vocab).to_string();
        let t0 = Instant::now();
        self.cache.sym_decided = false;
        let (result, stats) = match prop {
            Property::LeadsTo(p, q) => {
                let result = crate::fair::check_leadsto_outcome_in(
                    self.program,
                    p,
                    q,
                    self.universe,
                    &self.cfg,
                    &mut self.cache,
                );
                match result {
                    // Refuted checks keep their counters: the analysis
                    // ran in full either way.
                    Ok((report, refutation)) => (
                        match refutation {
                            None => Ok(()),
                            Some(e) => Err(e),
                        },
                        VerdictStats::Explicit {
                            states: report.states as u64,
                            transitions: report.transitions as u64,
                            scanned_states: report.scanned_states as u64,
                            pred_edges: report.pred_edges as u64,
                            worklist_pushes: report.worklist_pushes as u64,
                            build_ms: report.build_ms,
                            shards: report.shards,
                            steals: report.steals,
                            cross_shard_edges: report.cross_shard_edges,
                        },
                    ),
                    Err(e) => (Err(e), VerdictStats::Unmeasured),
                }
            }
            _ => {
                let result = crate::check::check_property_in(
                    self.program,
                    prop,
                    self.universe,
                    &self.cfg,
                    &mut self.cache,
                );
                let stats = if matches!(result, Err(ref e) if !matches!(e, McError::Refuted { .. }))
                {
                    // The check aborted before scanning (space bound,
                    // typing error): no work to account for.
                    VerdictStats::Unmeasured
                } else if self.cache.sym_decided {
                    match &mut self.cache.sym {
                        Some(Some(sym)) => VerdictStats::Symbolic { stats: sym.stats() },
                        _ => VerdictStats::Unmeasured,
                    }
                } else {
                    match scan_domain(self.program, prop, &self.cfg) {
                        Some(states) => VerdictStats::Explicit {
                            states,
                            transitions: 0,
                            scanned_states: 0,
                            pred_edges: 0,
                            worklist_pushes: 0,
                            build_ms: 0,
                            shards: 0,
                            steals: 0,
                            cross_shard_edges: 0,
                        },
                        None => VerdictStats::Unmeasured,
                    }
                };
                (result, stats)
            }
        };
        self.finish(rendered, result, stats, t0)
    }

    /// The engine that (primarily) decided the last check: symbolic when
    /// the bridge recorded a symbolic decision; the reference tree-walk
    /// when it was requested *or* when the compiled fast path never
    /// materialized (oversized vocabulary — the scans then ran on the
    /// reference evaluator); the compiled scans otherwise.
    fn engine_used(&self) -> Engine {
        if self.cache.sym_decided {
            return Engine::Symbolic;
        }
        match self.cfg.engine {
            Engine::Reference => Engine::Reference,
            // The symbolic engine either decided above or fell back to
            // the compiled scans, which themselves fall back to the
            // reference evaluator when no layout exists.
            Engine::Compiled | Engine::Symbolic => match self.cache.status() {
                (false, ..) if self.cache.layout_attempted() => Engine::Reference,
                _ => Engine::Compiled,
            },
        }
    }

    /// Assembles a [`Verdict`] from a check result (shared by
    /// [`Verifier::verify`] and the side-condition checks).
    fn finish(
        &self,
        property: String,
        result: Result<(), McError>,
        stats: VerdictStats,
        t0: Instant,
    ) -> Verdict {
        let engine = self.engine_used();
        let outcome = match result {
            Ok(()) => Outcome::Pass,
            Err(McError::Refuted { cex, .. }) => Outcome::Fail { cex },
            Err(error) => Outcome::Error { error },
        };
        Verdict {
            property,
            outcome,
            engine,
            stats,
            elapsed: t0.elapsed(),
            discharge: None,
        }
    }

    /// Checks `⊨ p` over every type-consistent state (kernel validity
    /// side conditions), through the session's symbolic engine when one
    /// is configured and available.
    pub fn valid(&mut self, p: &Expr) -> Verdict {
        let rendered = format!(
            "valid {}",
            unity_core::expr::pretty::Render::new(p, &self.program.vocab)
        );
        self.side_condition(rendered, |session| {
            crate::space::check_valid_in(session.program, p, &session.cfg, &mut session.cache)
        })
    }

    /// Checks `⊨ a = b` (kernel equivalence side conditions), through
    /// the session's symbolic engine when one is configured and
    /// available.
    pub fn equivalent(&mut self, a: &Expr, b: &Expr) -> Verdict {
        let rendered = format!(
            "equivalent {} = {}",
            unity_core::expr::pretty::Render::new(a, &self.program.vocab),
            unity_core::expr::pretty::Render::new(b, &self.program.vocab)
        );
        self.side_condition(rendered, |session| {
            crate::space::check_equivalent_in(
                session.program,
                a,
                b,
                &session.cfg,
                &mut session.cache,
            )
        })
    }

    fn side_condition(
        &mut self,
        rendered: String,
        run: impl FnOnce(&mut Self) -> Result<(), McError>,
    ) -> Verdict {
        let t0 = Instant::now();
        self.cache.sym_decided = false;
        let result = run(self);
        self.finish(rendered, result, VerdictStats::Unmeasured, t0)
    }

    /// Checks every named property and assembles the machine-readable
    /// [`Report`] — the single backend behind `unity-check` (including
    /// `--json`), `--mutate`, `--synthesize` and the proof-kernel
    /// dischargers.
    pub fn verify_all(&mut self, checks: &[NamedCheck]) -> Report {
        let t0 = Instant::now();
        let results: Vec<CheckReport> = checks
            .iter()
            .map(|c| CheckReport {
                name: c.name.clone(),
                line: c.line,
                verdict: self.verify(&c.property),
            })
            .collect();
        Report {
            program: self.program.name.clone(),
            vars: self
                .program
                .vocab
                .iter()
                .map(|(_, decl)| decl.name.clone())
                .collect(),
            engine: self.cfg.engine,
            universe: self.universe,
            checks: results,
            sim: Vec::new(),
            elapsed: t0.elapsed(),
        }
    }
}

/// The number of states the dominant explicit scan of `prop` quantifies
/// over: the projection of the space onto the property's support (the
/// full product when projection is off). `None` when the size overflows
/// or the property has no scan (informational only).
fn scan_domain(program: &Program, prop: &Property, cfg: &ScanConfig) -> Option<u64> {
    use unity_core::expr::vars;
    let mut support = std::collections::BTreeSet::new();
    let program_wide = |support: &mut std::collections::BTreeSet<unity_core::ident::VarId>| {
        for c in &program.commands {
            vars::collect(&c.guard, support);
            for (x, e) in &c.updates {
                support.insert(*x);
                vars::collect(e, support);
            }
        }
    };
    match prop {
        Property::Init(p) => {
            vars::collect(&program.init, &mut support);
            vars::collect(p, &mut support);
        }
        Property::Next(p, q) => {
            vars::collect(p, &mut support);
            vars::collect(q, &mut support);
            program_wide(&mut support);
        }
        Property::Stable(p) | Property::Transient(p) => {
            vars::collect(p, &mut support);
            program_wide(&mut support);
        }
        Property::Invariant(p) => {
            vars::collect(&program.init, &mut support);
            vars::collect(p, &mut support);
            program_wide(&mut support);
        }
        Property::Unchanged(e) => {
            vars::collect(e, &mut support);
            program_wide(&mut support);
        }
        Property::LeadsTo(..) => return None,
    }
    if cfg.projection && (support.len() as u64) < program.vocab.len() as u64 {
        let mut size: u64 = 1;
        for &v in &support {
            size = size.checked_mul(program.vocab.domain(v).size())?;
        }
        Some(size)
    } else {
        program.vocab.space_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn counter() -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        Program::builder("count", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn session_memoizes_the_transition_system() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let mut s = Verifier::new(&p, ScanConfig::default());
        assert!(!s.status().ts_reachable);
        let v1 = s.verify(&Property::LeadsTo(tt(), eq(var(x), int(3))));
        assert!(v1.passed(), "{v1:?}");
        assert!(s.status().ts_reachable, "leadsto built the ts");
        let ts = s.transition_system(Universe::Reachable).unwrap();
        let again = s.transition_system(Universe::Reachable).unwrap();
        assert!(Arc::ptr_eq(&ts, &again), "memoized, not rebuilt");
    }

    #[test]
    fn session_memoizes_the_symbolic_engine() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let mut s = Verifier::new(&p, ScanConfig::symbolic());
        let v = s.verify(&Property::Invariant(le(var(x), int(3))));
        assert!(v.passed());
        assert_eq!(v.engine, Engine::Symbolic);
        assert!(matches!(v.stats, VerdictStats::Symbolic { .. }));
        assert!(s.status().symbolic);
        // Second check reuses the engine (still one build).
        let v2 = s.verify(&Property::Stable(ge(var(x), int(1))));
        assert!(v2.passed());
    }

    #[test]
    fn verdicts_match_the_free_functions() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let props = [
            Property::Invariant(le(var(x), int(3))),
            Property::Invariant(le(var(x), int(2))),
            Property::Stable(ge(var(x), int(2))),
            Property::Transient(eq(var(x), int(0))),
            Property::LeadsTo(tt(), eq(var(x), int(3))),
        ];
        for cfg in [
            ScanConfig::default(),
            ScanConfig::reference(),
            ScanConfig::symbolic(),
        ] {
            let mut s = Verifier::new(&p, cfg.clone());
            for prop in &props {
                let session = s.verify(prop);
                let oneshot = crate::check::check_property(&p, prop, Universe::Reachable, &cfg);
                assert_eq!(session.passed(), oneshot.is_ok(), "{prop:?}");
                if let (Some(cex), Err(McError::Refuted { cex: expect, .. })) =
                    (session.counterexample(), &oneshot)
                {
                    assert_eq!(cex, expect, "witness identical: {prop:?}");
                }
            }
        }
    }

    #[test]
    fn errors_become_error_verdicts() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let cfg = ScanConfig {
            max_states: 1,
            ..Default::default()
        };
        let mut s = Verifier::new(&p, cfg);
        let v = s.verify(&Property::Invariant(le(var(x), int(3))));
        assert!(v.error().is_some());
        // No scan ran, so no scan is accounted for.
        assert_eq!(v.stats, VerdictStats::Unmeasured);
        assert!(matches!(
            v.into_result(),
            Err(McError::SpaceTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_vocabulary_is_attributed_to_the_reference_engine() {
        // 80 packed bits: no layout, the compiled request falls back to
        // the tree-walk — and the verdict says so.
        let mut v = Vocabulary::new();
        for i in 0..10 {
            v.declare(&format!("v{i}"), Domain::int_range(0, 255).unwrap())
                .unwrap();
        }
        let x = v.lookup("v0").unwrap();
        let p = Program::builder("wide", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("inc", lt(var(x), int(255)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let mut s = Verifier::new(&p, ScanConfig::default());
        let verdict = s.verify(&Property::Init(le(var(x), int(255))));
        assert!(verdict.passed());
        assert_eq!(verdict.engine, Engine::Reference);
    }

    #[test]
    fn seeded_sessions_reuse_exported_artifacts() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let prop = Property::LeadsTo(tt(), eq(var(x), int(3)));
        // Cold session: builds ts + pred, then exports them.
        let mut cold = Verifier::new(&p, ScanConfig::default());
        let v1 = cold.verify(&prop);
        assert!(v1.passed());
        let snapshot = cold.artifacts();
        assert!(snapshot.ts[0].is_some(), "reachable ts exported");
        assert!(snapshot.pred[0].is_some(), "pred exported");
        // Warm session: the seeded Arcs are served back, not rebuilt.
        let mut warm = Verifier::new(&p, ScanConfig::default());
        warm.seed(snapshot.clone());
        assert!(warm.status().ts_reachable, "seed shows up in status");
        assert!(warm.status().pred_reachable);
        let seeded_ts = warm.transition_system(Universe::Reachable).unwrap();
        assert!(
            Arc::ptr_eq(&seeded_ts, snapshot.ts[0].as_ref().unwrap()),
            "same allocation, no rebuild"
        );
        let v2 = warm.verify(&prop);
        assert!(v2.passed());
        assert_eq!(
            v1.counterexample(),
            v2.counterexample(),
            "warm verdict identical"
        );
        // Restored-system accounting: the warm check reports the
        // seeded system's (zero-cost) build, proving no explorer ran.
        match v2.stats {
            VerdictStats::Explicit { states, .. } => assert_eq!(states, 4),
            ref other => panic!("expected explicit stats, got {other:?}"),
        }
    }

    #[test]
    fn seed_rejects_mismatched_artifacts() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let mut donor = Verifier::new(&p, ScanConfig::default());
        let _ = donor.verify(&Property::LeadsTo(tt(), eq(var(x), int(3))));
        let snapshot = donor.artifacts();

        // A different program shape must not accept the snapshot.
        let mut v = Vocabulary::new();
        let y = v.declare("y", Domain::int_range(0, 7).unwrap()).unwrap();
        let q = Program::builder("other", Arc::new(v))
            .init(eq(var(y), int(0)))
            .fair_command("a", lt(var(y), int(7)), vec![(y, add(var(y), int(1)))])
            .fair_command("b", tt(), vec![(y, int(0))])
            .build()
            .unwrap();
        let mut s = Verifier::new(&q, ScanConfig::default());
        s.seed(snapshot);
        assert!(!s.status().ts_reachable, "mismatched ts ignored");
        assert!(!s.status().pred_reachable);
        // The session still verifies correctly from scratch.
        assert!(s
            .verify(&Property::LeadsTo(tt(), eq(var(y), int(7))))
            .failed());
    }

    #[test]
    fn seeded_field_order_feeds_the_symbolic_engine() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        let mut donor = Verifier::new(&p, ScanConfig::symbolic());
        assert!(donor
            .verify(&Property::Invariant(le(var(x), int(3))))
            .passed());
        let snapshot = donor.artifacts();
        let order = snapshot.field_order.clone().expect("engine built");

        let mut warm = Verifier::new(&p, ScanConfig::symbolic());
        warm.seed(snapshot);
        assert!(warm
            .verify(&Property::Invariant(le(var(x), int(3))))
            .passed());
        let sym = warm.symbolic().expect("lowerable");
        assert_eq!(sym.field_order(), order, "tuned order restored");

        // A non-permutation order is ignored, not installed (it would
        // panic inside the engine otherwise).
        let mut bad = Verifier::new(&p, ScanConfig::symbolic());
        bad.seed(SessionArtifacts {
            field_order: Some(vec![0, 0]),
            ..Default::default()
        });
        assert!(bad
            .verify(&Property::Invariant(le(var(x), int(3))))
            .passed());
    }

    #[test]
    fn side_conditions_run_in_session() {
        let p = counter();
        let x = p.vocab.lookup("x").unwrap();
        for cfg in [ScanConfig::default(), ScanConfig::symbolic()] {
            let mut s = Verifier::new(&p, cfg);
            assert!(s.valid(&le(var(x), int(3))).passed());
            assert!(s.valid(&le(var(x), int(2))).failed());
            assert!(s
                .equivalent(&add(var(x), var(x)), &mul(int(2), var(x)))
                .passed());
            assert!(s.equivalent(&add(var(x), int(1)), &var(x)).failed());
        }
    }
}
