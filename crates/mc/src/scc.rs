//! Strongly connected components (iterative Tarjan) over masked subgraphs.
//!
//! Two forms: [`tarjan_scc`] materializes one `Vec` per component (the
//! original interface, kept for the reference liveness path), and
//! [`tarjan_scc_pooled`] writes into reusable [`SccScratch`] buffers —
//! components become ranges into one flat order array, so a hot caller
//! (the `leadsto` trap search runs once per property) performs no
//! per-component allocation at all. Both must produce identical
//! partitions in identical order; the unit tests below pin that.

/// Reusable buffers for [`tarjan_scc_pooled`]. Sized to the graph on
/// first use and reused across runs (pooled in the verifier session's
/// `EngineCache`): repeated runs cost index resets, not allocations.
#[derive(Debug, Clone, Default)]
pub struct SccScratch {
    /// Tarjan visit index per node (`u32::MAX` = unvisited).
    index: Vec<u32>,
    /// Lowlink per node.
    low: Vec<u32>,
    /// Whether a node is on the component stack.
    on_stack: Vec<bool>,
    /// The component stack.
    stack: Vec<u32>,
    /// Iterative DFS frames: (node, next successor position).
    work: Vec<(u32, u32)>,
    /// All visited nodes, grouped by component (each component's
    /// members are contiguous, in the same order [`tarjan_scc`] lists
    /// them).
    order: Vec<u32>,
    /// End offset into `order` of each component, in component order.
    comp_ends: Vec<u32>,
    /// Component id per node (`u32::MAX` for nodes outside the mask).
    comp_of: Vec<u32>,
}

impl SccScratch {
    /// Number of components found by the last run.
    pub fn comp_count(&self) -> usize {
        self.comp_ends.len()
    }

    /// Number of nodes visited by the last run (the mask's population).
    pub fn visited(&self) -> usize {
        self.order.len()
    }

    /// Members of component `cid`, in [`tarjan_scc`]'s member order.
    pub fn members(&self, cid: usize) -> &[u32] {
        let lo = if cid == 0 {
            0
        } else {
            self.comp_ends[cid - 1] as usize
        };
        &self.order[lo..self.comp_ends[cid] as usize]
    }

    /// Component id of node `v` (`u32::MAX` when `v` was outside the
    /// mask of the last run).
    pub fn comp_of(&self, v: u32) -> u32 {
        self.comp_of[v as usize]
    }
}

/// [`tarjan_scc`] with pooled scratch and flat component storage: same
/// traversal, same component order, same member order — but the output
/// lives in `scratch` as ranges into one order array instead of a
/// `Vec<Vec<u32>>`, and every auxiliary array is reused across runs.
pub fn tarjan_scc_pooled<'a>(
    mask: &[bool],
    succ: impl Fn(u32) -> &'a [u32] + Copy,
    scratch: &mut SccScratch,
) {
    tarjan_scc_pooled_seeded(mask, succ, 0..mask.len() as u32, scratch)
}

/// [`tarjan_scc_pooled`] with an explicit DFS **root order**: `seeds`
/// enumerates every node id (each masked node must appear at least
/// once; extra or unmasked ids are skipped), and roots are tried in
/// that order. The sharded explorer lays states out shard-major, so
/// seeding each `¬q` region from the shard that owns it walks the
/// order array with the same locality the build wrote it in. The
/// *partition* (set of components, membership) is independent of the
/// seed order; component enumeration order follows the seeds.
pub fn tarjan_scc_pooled_seeded<'a>(
    mask: &[bool],
    succ: impl Fn(u32) -> &'a [u32] + Copy,
    seeds: impl IntoIterator<Item = u32>,
    scratch: &mut SccScratch,
) {
    let n = mask.len();
    const UNVISITED: u32 = u32::MAX;
    let s = scratch;
    s.index.clear();
    s.index.resize(n, UNVISITED);
    s.low.clear();
    s.low.resize(n, 0);
    s.on_stack.clear();
    s.on_stack.resize(n, false);
    s.comp_of.clear();
    s.comp_of.resize(n, UNVISITED);
    s.stack.clear();
    s.work.clear();
    s.order.clear();
    s.comp_ends.clear();
    let mut next_index: u32 = 0;

    for start in seeds {
        if !mask[start as usize] || s.index[start as usize] != UNVISITED {
            continue;
        }
        s.index[start as usize] = next_index;
        s.low[start as usize] = next_index;
        next_index += 1;
        s.stack.push(start);
        s.on_stack[start as usize] = true;
        s.work.push((start, 0));
        while let Some(&(v, pos)) = s.work.last() {
            let succs = succ(v);
            if (pos as usize) < succs.len() {
                s.work.last_mut().expect("frame just read").1 = pos + 1;
                let w = succs[pos as usize];
                if !mask[w as usize] {
                    continue; // successors outside the mask are ignored
                }
                if s.index[w as usize] == UNVISITED {
                    s.index[w as usize] = next_index;
                    s.low[w as usize] = next_index;
                    next_index += 1;
                    s.stack.push(w);
                    s.on_stack[w as usize] = true;
                    s.work.push((w, 0));
                } else if s.on_stack[w as usize] {
                    s.low[v as usize] = s.low[v as usize].min(s.index[w as usize]);
                }
            } else {
                // All successors done: close v.
                s.work.pop();
                if s.low[v as usize] == s.index[v as usize] {
                    let cid = s.comp_ends.len() as u32;
                    loop {
                        let w = s.stack.pop().expect("tarjan stack underflow");
                        s.on_stack[w as usize] = false;
                        s.comp_of[w as usize] = cid;
                        s.order.push(w);
                        if w == v {
                            break;
                        }
                    }
                    s.comp_ends.push(s.order.len() as u32);
                }
                // Propagate lowlink to parent (if any).
                if let Some(&(parent, _)) = s.work.last() {
                    let p = parent as usize;
                    s.low[p] = s.low[p].min(s.low[v as usize]);
                }
            }
        }
    }
}

/// Computes the strongly connected components of the subgraph of
/// `0..mask.len()` induced by `mask`, with successors given by `succ`
/// (successors outside the mask are ignored).
///
/// Returns the components in reverse topological order (Tarjan's natural
/// output); each component lists its member node ids.
pub fn tarjan_scc<'a>(mask: &[bool], succ: impl Fn(u32) -> &'a [u32] + Copy) -> Vec<Vec<u32>> {
    let n = mask.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<u32>> = Vec::new();

    // Iterative DFS frame: (node, successor slice, next successor position).
    enum Frame<'a> {
        Enter(u32),
        Resume(u32, &'a [u32], usize),
    }

    for start in 0..n as u32 {
        if !mask[start as usize] || index[start as usize] != UNVISITED {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    work.push(Frame::Resume(v, succ(v), 0));
                }
                Frame::Resume(v, succs, mut pos) => {
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        pos += 1;
                        if !mask[w as usize] {
                            continue; // successors outside the mask are ignored
                        }
                        if index[w as usize] == UNVISITED {
                            work.push(Frame::Resume(v, succs, pos));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: close v.
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // Propagate lowlink to parent (if any).
                    if let Some(Frame::Resume(parent, _, _)) = work.last() {
                        let p = *parent as usize;
                        low[p] = low[p].min(low[v as usize]);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b);
        }
        adj
    }

    #[test]
    fn single_cycle() {
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]);
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 1);
        let mut c = sccs[0].clone();
        c.sort();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn dag_gives_singletons() {
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (0, 2)]);
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        // Reverse topological: sinks first.
        assert_eq!(sccs[0], vec![2]);
    }

    #[test]
    fn two_components_with_bridge() {
        // 0 <-> 1 -> 2 <-> 3
        let adj = adjacency(4, &[(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let mask = vec![true; 4];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
        let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn mask_excludes_nodes() {
        // Cycle 0 -> 1 -> 2 -> 0 broken by masking 2.
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]);
        let mask = vec![true, true, false];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-node chain: iterative DFS must not overflow.
        let n = 100_000u32;
        let mask = vec![true; n as usize];
        let adj = adjacency(
            n as usize,
            &(0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>(),
        );
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), n as usize);
    }

    #[test]
    fn self_loop_is_component() {
        let adj = adjacency(2, &[(0u32, 0u32), (0, 1)]);
        let mask = vec![true; 2];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
    }

    /// Collects the pooled output back into the `Vec<Vec<u32>>` shape
    /// for exact comparison against [`tarjan_scc`].
    fn pooled_components(
        mask: &[bool],
        adj: &[Vec<u32>],
        scratch: &mut SccScratch,
    ) -> Vec<Vec<u32>> {
        tarjan_scc_pooled(mask, |v| adj[v as usize].as_slice(), scratch);
        (0..scratch.comp_count())
            .map(|cid| scratch.members(cid).to_vec())
            .collect()
    }

    /// A deterministic pseudo-random graph (xorshift edges).
    fn random_graph(n: usize, edges: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..edges {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            adj[a as usize].push(b);
        }
        adj
    }

    #[test]
    fn pooled_matches_original_on_full_graphs() {
        // Full mask, structured and pseudo-random graphs: the pooled
        // form must reproduce the `Vec<Vec>` partition exactly —
        // component order and member order included.
        let cases: Vec<Vec<Vec<u32>>> = vec![
            adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]),
            adjacency(3, &[(0u32, 1u32), (1, 2), (0, 2)]),
            adjacency(4, &[(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2)]),
            adjacency(2, &[(0u32, 0u32), (0, 1)]),
            random_graph(200, 600, 0xfeed),
            random_graph(97, 97, 42),
            random_graph(50, 400, 7),
        ];
        let mut scratch = SccScratch::default();
        for adj in &cases {
            let mask = vec![true; adj.len()];
            let expect = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
            let got = pooled_components(&mask, adj, &mut scratch);
            assert_eq!(got, expect);
            assert_eq!(scratch.visited(), adj.len());
            // comp_of agrees with membership.
            for (cid, comp) in expect.iter().enumerate() {
                for &v in comp {
                    assert_eq!(scratch.comp_of(v), cid as u32);
                }
            }
        }
    }

    #[test]
    fn pooled_matches_original_under_masks() {
        let adj = random_graph(120, 500, 0xabcd);
        let mut scratch = SccScratch::default();
        for seed in 1u64..6 {
            let mut x = seed;
            let mask: Vec<bool> = (0..adj.len())
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 33) & 1 == 0
                })
                .collect();
            let expect = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
            let got = pooled_components(&mask, &adj, &mut scratch);
            assert_eq!(got, expect, "masked partition diverged (seed {seed})");
            // Unvisited nodes keep the sentinel.
            for (v, &m) in mask.iter().enumerate() {
                if !m {
                    assert_eq!(scratch.comp_of(v as u32), u32::MAX);
                }
            }
        }
    }

    #[test]
    fn pooled_scratch_reuse_is_clean() {
        // A big run followed by a small one: stale state from the first
        // must not leak into the second.
        let big = random_graph(300, 900, 3);
        let small = adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]);
        let mut scratch = SccScratch::default();
        let _ = pooled_components(&vec![true; 300], &big, &mut scratch);
        let got = pooled_components(&[true; 3], &small, &mut scratch);
        let expect = tarjan_scc(&[true; 3], |v| small[v as usize].as_slice());
        assert_eq!(got, expect);
        assert_eq!(scratch.comp_count(), 1);
    }

    #[test]
    fn seeded_roots_keep_the_partition() {
        // Any seed permutation yields the same component *partition*
        // (sets of members); only enumeration order may differ. Seeding
        // with `0..n` reproduces the unseeded run exactly.
        let adj = random_graph(150, 550, 0xbeef);
        let n = adj.len() as u32;
        let mask: Vec<bool> = (0..n).map(|v| v % 7 != 3).collect();
        let mut scratch = SccScratch::default();
        tarjan_scc_pooled(&mask, |v| adj[v as usize].as_slice(), &mut scratch);
        let baseline: Vec<u32> = (0..n).map(|v| scratch.comp_of(v)).collect();
        let base_count = scratch.comp_count();

        // Identity seeds: bit-identical output.
        let mut scratch2 = SccScratch::default();
        tarjan_scc_pooled_seeded(&mask, |v| adj[v as usize].as_slice(), 0..n, &mut scratch2);
        assert_eq!(scratch2.comp_count(), base_count);
        for v in 0..n {
            assert_eq!(scratch2.comp_of(v), scratch.comp_of(v));
        }

        // Permuted seeds (reversed, strided, with duplicates): same
        // partition up to component renaming.
        let perms: Vec<Vec<u32>> = vec![
            (0..n).rev().collect(),
            (0..n).map(|v| (v * 37) % n).collect(),
            (0..n).chain(0..n).collect(),
        ];
        for seeds in perms {
            let mut sc = SccScratch::default();
            tarjan_scc_pooled_seeded(
                &mask,
                |v| adj[v as usize].as_slice(),
                seeds.iter().copied(),
                &mut sc,
            );
            assert_eq!(sc.comp_count(), base_count);
            for a in 0..n {
                for b in 0..n {
                    if mask[a as usize] && mask[b as usize] {
                        assert_eq!(
                            baseline[a as usize] == baseline[b as usize],
                            sc.comp_of(a) == sc.comp_of(b),
                            "partition differs on ({a}, {b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pooled_deep_chain_no_stack_overflow() {
        let n = 100_000u32;
        let mask = vec![true; n as usize];
        let adj = adjacency(
            n as usize,
            &(0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>(),
        );
        let mut scratch = SccScratch::default();
        tarjan_scc_pooled(&mask, |v| adj[v as usize].as_slice(), &mut scratch);
        assert_eq!(scratch.comp_count(), n as usize);
    }
}
