//! Strongly connected components (iterative Tarjan) over masked subgraphs.

/// Computes the strongly connected components of the subgraph of
/// `0..mask.len()` induced by `mask`, with successors given by `succ`
/// (successors outside the mask are ignored).
///
/// Returns the components in reverse topological order (Tarjan's natural
/// output); each component lists its member node ids.
pub fn tarjan_scc<'a>(mask: &[bool], succ: impl Fn(u32) -> &'a [u32] + Copy) -> Vec<Vec<u32>> {
    let n = mask.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<u32>> = Vec::new();

    // Iterative DFS frame: (node, successor slice, next successor position).
    enum Frame<'a> {
        Enter(u32),
        Resume(u32, &'a [u32], usize),
    }

    for start in 0..n as u32 {
        if !mask[start as usize] || index[start as usize] != UNVISITED {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    work.push(Frame::Resume(v, succ(v), 0));
                }
                Frame::Resume(v, succs, mut pos) => {
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        pos += 1;
                        if !mask[w as usize] {
                            continue; // successors outside the mask are ignored
                        }
                        if index[w as usize] == UNVISITED {
                            work.push(Frame::Resume(v, succs, pos));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: close v.
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // Propagate lowlink to parent (if any).
                    if let Some(Frame::Resume(parent, _, _)) = work.last() {
                        let p = *parent as usize;
                        low[p] = low[p].min(low[v as usize]);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b);
        }
        adj
    }

    #[test]
    fn single_cycle() {
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]);
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 1);
        let mut c = sccs[0].clone();
        c.sort();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn dag_gives_singletons() {
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (0, 2)]);
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        // Reverse topological: sinks first.
        assert_eq!(sccs[0], vec![2]);
    }

    #[test]
    fn two_components_with_bridge() {
        // 0 <-> 1 -> 2 <-> 3
        let adj = adjacency(4, &[(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let mask = vec![true; 4];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
        let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn mask_excludes_nodes() {
        // Cycle 0 -> 1 -> 2 -> 0 broken by masking 2.
        let adj = adjacency(3, &[(0u32, 1u32), (1, 2), (2, 0)]);
        let mask = vec![true, true, false];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-node chain: iterative DFS must not overflow.
        let n = 100_000u32;
        let mask = vec![true; n as usize];
        let adj = adjacency(
            n as usize,
            &(0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>(),
        );
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), n as usize);
    }

    #[test]
    fn self_loop_is_component() {
        let adj = adjacency(2, &[(0u32, 0u32), (0, 1)]);
        let mask = vec![true; 2];
        let sccs = tarjan_scc(&mask, |v| adj[v as usize].as_slice());
        assert_eq!(sccs.len(), 2);
    }
}
