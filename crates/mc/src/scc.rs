//! Strongly connected components (iterative Tarjan) over masked subgraphs.

/// Computes the strongly connected components of the subgraph of
/// `0..mask.len()` induced by `mask`, with successors given by `succ`
/// (successors outside the mask are ignored).
///
/// Returns the components in reverse topological order (Tarjan's natural
/// output); each component lists its member node ids.
pub fn tarjan_scc(
    mask: &[bool],
    succ: impl Fn(u32) -> Vec<u32> + Copy,
) -> Vec<Vec<u32>> {
    let n = mask.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<u32>> = Vec::new();

    // Iterative DFS frame: (node, successor list, next successor position).
    enum Frame {
        Enter(u32),
        Resume(u32, Vec<u32>, usize),
    }

    for start in 0..n as u32 {
        if !mask[start as usize] || index[start as usize] != UNVISITED {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    let succs: Vec<u32> = succ(v)
                        .into_iter()
                        .filter(|&w| mask[w as usize])
                        .collect();
                    work.push(Frame::Resume(v, succs, 0));
                }
                Frame::Resume(v, succs, mut pos) => {
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        pos += 1;
                        if index[w as usize] == UNVISITED {
                            work.push(Frame::Resume(v, succs, pos));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: close v.
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // Propagate lowlink to parent (if any).
                    if let Some(Frame::Resume(parent, _, _)) = work.last() {
                        let p = *parent as usize;
                        low[p] = low[p].min(low[v as usize]);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn succ_from(edges: &[(u32, u32)]) -> impl Fn(u32) -> Vec<u32> + Copy + '_ {
        move |v| {
            edges
                .iter()
                .filter(|&&(a, _)| a == v)
                .map(|&(_, b)| b)
                .collect()
        }
    }

    #[test]
    fn single_cycle() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, succ_from(&edges));
        assert_eq!(sccs.len(), 1);
        let mut c = sccs[0].clone();
        c.sort();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn dag_gives_singletons() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2)];
        let mask = vec![true; 3];
        let sccs = tarjan_scc(&mask, succ_from(&edges));
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        // Reverse topological: sinks first.
        assert_eq!(sccs[0], vec![2]);
    }

    #[test]
    fn two_components_with_bridge() {
        // 0 <-> 1 -> 2 <-> 3
        let edges = [(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2)];
        let mask = vec![true; 4];
        let sccs = tarjan_scc(&mask, succ_from(&edges));
        assert_eq!(sccs.len(), 2);
        let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn mask_excludes_nodes() {
        // Cycle 0 -> 1 -> 2 -> 0 broken by masking 2.
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let mask = vec![true, true, false];
        let sccs = tarjan_scc(&mask, succ_from(&edges));
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-node chain: iterative DFS must not overflow.
        let n = 100_000u32;
        let mask = vec![true; n as usize];
        let succ = move |v: u32| if v + 1 < n { vec![v + 1] } else { vec![] };
        let sccs = tarjan_scc(&mask, succ);
        assert_eq!(sccs.len(), n as usize);
    }

    #[test]
    fn self_loop_is_component() {
        let edges = [(0u32, 0u32), (0, 1)];
        let mask = vec![true; 2];
        let sccs = tarjan_scc(&mask, succ_from(&edges));
        assert_eq!(sccs.len(), 2);
    }
}
