//! Sharded work-stealing exploration of the reachable packed space.
//!
//! State words are partitioned by [`shard_of_word`] into a power-of-two
//! number of shards, each holding a local intern table, a local LIFO
//! frontier, and per-shard successor rows in a **local** id space.
//! Workers service the shards they own by affinity (`shard % threads`)
//! and steal any other shard whose lock they can grab when their own
//! run dry. Cross-shard successors travel as word batches through one
//! [`Mailbox`] per destination shard; a Chandy–Misra-style
//! [`Quiescence`] counter of in-flight work (frontier entries plus
//! undelivered batches) decides termination without a confirmation
//! wave, because every increment for derived work happens before the
//! decrement of the work that produced it.
//!
//! After the workers join, per-shard segments are stitched into the one
//! flat row-major `succ` table the rest of the checker expects: global
//! id = shard base (prefix sum of shard sizes) + local id, and the
//! `PENDING`-tagged cross-shard entries resolve through the owning
//! shard's intern table in a segment-parallel remap. The resulting
//! arrays are bit-identical *in shape* to the sequential builder's —
//! only the id permutation differs — so every downstream consumer
//! (`PredIndex`, the Tarjan sweeps, witness replay) works unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use unity_core::expr::compile::Scratch;
use unity_core::program::Program;

use crate::compiled::CompiledProgram;
use crate::hasher::{hash_word, shard_of_word, FxHashMap};
use crate::parallel::{par_find_ranges, Mailbox, ParConfig, Quiescence};
use crate::stats::BuildStats;

/// Tag bit marking a successor entry as a cross-shard placeholder: the
/// low 31 bits then index the shard's `pending` word list instead of
/// naming a local state. Local id spaces are asserted below this bit.
const PENDING_BIT: u32 = 1 << 31;

/// Slots in the per-shard direct-mapped "already mailed" filter. The
/// filter only suppresses duplicate mail (the owner's intern table is
/// the real dedup), so collisions cost bandwidth, never correctness.
const SENT_SLOTS: usize = 1 << 12;

/// Frontier states expanded per shard service, bounding how long one
/// worker keeps a stealable shard locked.
const BATCH: usize = 128;

/// One hash partition of the state space.
struct Shard {
    /// word → local id.
    index: FxHashMap<u64, u32>,
    /// local id → word.
    words: Vec<u64>,
    /// Local ids interned but not yet expanded.
    frontier: Vec<u32>,
    /// Successor rows in local ids (stride = command count), grown with
    /// placeholder zeros and written in place like the sequential path.
    succ: Vec<u32>,
    /// Words of cross-shard successors, indexed by `PENDING` entries.
    pending: Vec<u64>,
    /// Direct-mapped filter of words already mailed (`u64::MAX` =
    /// empty; the word `u64::MAX` itself is simply always mailed).
    sent: Vec<u64>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: FxHashMap::default(),
            words: Vec::new(),
            frontier: Vec::new(),
            succ: Vec::new(),
            pending: Vec::new(),
            sent: vec![u64::MAX; SENT_SLOTS],
        }
    }

    /// Interns `w`, crediting a newly discovered state to the frontier
    /// and the quiescence counter.
    fn intern(&mut self, w: u64, quiescence: &Quiescence) -> u32 {
        if let Some(&id) = self.index.get(&w) {
            return id;
        }
        let id = self.words.len() as u32;
        assert!(id < PENDING_BIT, "shard exceeds 2^31 states");
        self.words.push(w);
        self.index.insert(w, id);
        self.frontier.push(id);
        quiescence.add(1);
        id
    }
}

/// The stitched result of a sharded exploration, ready to drop into a
/// `TransitionSystem`.
pub(crate) struct ShardedBuild {
    /// Global id → packed word, concatenated in shard order.
    pub words: Vec<u64>,
    /// Flat row-major successor table over global ids.
    pub succ: Vec<u32>,
    /// Global ids of initial states, sorted and deduplicated.
    pub init: Vec<u32>,
    /// Global-id base of each shard (ascending, starting at 0).
    pub bases: Vec<u32>,
    /// Exploration counters (`build_ms` is stamped by the caller).
    pub stats: BuildStats,
}

/// Collects the packed words satisfying the compiled init predicate, in
/// canonical (ascending flat id) order, scanning the full domain
/// product chunk-parallel. Sequential configurations degrade to exactly
/// the old single-cursor sweep.
pub(crate) fn collect_init_words(
    program: &Program,
    cp: &CompiledProgram,
    par: &ParConfig,
) -> Vec<u64> {
    let layout = &cp.layout;
    let Some(total) = program.vocab.space_size() else {
        return Vec::new();
    };
    let all_vars: Vec<_> = program.vocab.ids().collect();
    let chunks: Mutex<Vec<(u64, Vec<u64>)>> = Mutex::new(Vec::new());
    let witness = par_find_ranges(total, par, |lo, hi| {
        let mut scratch = Scratch::new();
        let mut cursor = layout
            .support_cursor(&all_vars, lo)
            .expect("space_size checked by caller");
        let mut found = Vec::new();
        for _ in lo..hi {
            let w = cursor.word();
            if cp.init.eval_packed_bool(w, &mut scratch) {
                found.push(w);
            }
            cursor.advance(layout);
        }
        if !found.is_empty() {
            chunks.lock().push((lo, found));
        }
        None::<()>
    });
    debug_assert!(witness.is_none(), "total sweep never early-exits");
    let mut chunks = chunks.into_inner();
    chunks.sort_unstable_by_key(|&(lo, _)| lo);
    chunks.into_iter().flat_map(|(_, ws)| ws).collect()
}

/// Services one shard: delivers inbound mail, expands up to [`BATCH`]
/// frontier states, and flushes outbound batches — keeping the
/// quiescence invariant that derived work is registered before the
/// work that produced it retires. Returns whether anything was done.
#[allow(clippy::too_many_arguments)]
fn service(
    s: usize,
    shard: &mut Shard,
    cp: &CompiledProgram,
    nc: usize,
    shard_count: u32,
    inboxes: &[Mailbox<u64>],
    quiescence: &Quiescence,
    cross: &AtomicU64,
    scratch: &mut Scratch,
    out_buf: &mut [Vec<u64>],
) -> bool {
    let layout = &cp.layout;
    let mut did_work = false;

    // Deliver mail: duplicates collapse in the intern table.
    let batches = inboxes[s].drain();
    let delivered = batches.len() as i64;
    if delivered > 0 {
        did_work = true;
        for batch in batches {
            for w in batch {
                shard.intern(w, quiescence);
            }
        }
        quiescence.sub(delivered);
    }

    // Expand a bounded batch of frontier states.
    let mut popped = 0i64;
    while popped < BATCH as i64 {
        let Some(id) = shard.frontier.pop() else {
            break;
        };
        popped += 1;
        let w = shard.words[id as usize];
        let at = id as usize * nc;
        if shard.succ.len() < at + nc {
            shard.succ.resize(at + nc, 0);
        }
        for (c, cc) in cp.commands.iter().enumerate() {
            let nw = cc.step_packed(w, layout, scratch);
            let owner = shard_of_word(nw, shard_count) as usize;
            if owner == s {
                let nid = shard.intern(nw, quiescence);
                shard.succ[at + c] = nid;
            } else {
                let pidx = shard.pending.len() as u32;
                assert!(pidx < PENDING_BIT, "pending table exceeds 2^31 entries");
                shard.pending.push(nw);
                shard.succ[at + c] = PENDING_BIT | pidx;
                cross.fetch_add(1, Ordering::Relaxed);
                let slot = hash_word(nw) as usize & (SENT_SLOTS - 1);
                if nw == u64::MAX || shard.sent[slot] != nw {
                    shard.sent[slot] = nw;
                    out_buf[owner].push(nw);
                }
            }
        }
    }
    if popped > 0 {
        did_work = true;
        // Register derived work before retiring the states that
        // produced it: the counter must never dip to zero while
        // successors are still in flight.
        for (dest, buf) in out_buf.iter_mut().enumerate() {
            if !buf.is_empty() {
                quiescence.add(1);
                inboxes[dest].post(std::mem::take(buf));
            }
        }
        quiescence.sub(popped);
    }
    did_work
}

/// Explores the reachable packed space with `par.threads` workers over
/// hash shards and stitches the result into global arrays. The state
/// *set*, init *set*, and successor *relation* are identical to the
/// sequential builder's up to the id permutation induced by shard
/// bases and discovery order.
pub(crate) fn explore(program: &Program, cp: &CompiledProgram, par: &ParConfig) -> ShardedBuild {
    let nc = program.commands.len();
    let threads = par.threads.max(2);
    let shard_count = (threads * 4).next_power_of_two().min(256);
    let shards: Vec<Mutex<Shard>> = (0..shard_count).map(|_| Mutex::new(Shard::new())).collect();
    let inboxes: Vec<Mailbox<u64>> = (0..shard_count).map(|_| Mailbox::default()).collect();
    let quiescence = Quiescence::default();
    let steals = AtomicU64::new(0);
    let cross = AtomicU64::new(0);

    // Seed initial states into their owning shards before any worker
    // starts, so the in-flight counter is exact from the first instant.
    let init_words = collect_init_words(program, cp, par);
    for &w in &init_words {
        let s = shard_of_word(w, shard_count as u32) as usize;
        shards[s].lock().intern(w, &quiescence);
    }

    crossbeam::scope(|scope| {
        for t in 0..threads {
            let shards = &shards;
            let inboxes = &inboxes;
            let quiescence = &quiescence;
            let steals = &steals;
            let cross = &cross;
            scope.spawn(move |_| {
                let mut scratch = Scratch::new();
                let mut out_buf: Vec<Vec<u64>> = (0..shard_count).map(|_| Vec::new()).collect();
                loop {
                    let mut did_work = false;
                    // Home pass: the shards this worker owns by affinity.
                    for s in (t..shard_count).step_by(threads) {
                        if let Some(mut shard) = shards[s].try_lock() {
                            did_work |= service(
                                s,
                                &mut shard,
                                cp,
                                nc,
                                shard_count as u32,
                                inboxes,
                                quiescence,
                                cross,
                                &mut scratch,
                                &mut out_buf,
                            );
                        }
                    }
                    if !did_work {
                        // Steal pass: any peer shard whose lock is free.
                        for (s, slot) in shards.iter().enumerate() {
                            if s % threads == t {
                                continue;
                            }
                            if let Some(mut shard) = slot.try_lock() {
                                if service(
                                    s,
                                    &mut shard,
                                    cp,
                                    nc,
                                    shard_count as u32,
                                    inboxes,
                                    quiescence,
                                    cross,
                                    &mut scratch,
                                    &mut out_buf,
                                ) {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    did_work = true;
                                }
                            }
                        }
                    }
                    if !did_work {
                        if quiescence.quiescent() {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("exploration worker panicked");

    // Stitch: global id = shard base + local id.
    let shards: Vec<Shard> = shards.into_iter().map(Mutex::into_inner).collect();
    let mut bases: Vec<u32> = Vec::with_capacity(shard_count);
    let mut total: u64 = 0;
    for sh in &shards {
        assert!(total <= u32::MAX as u64, "state count exceeds u32 ids");
        bases.push(total as u32);
        total += sh.words.len() as u64;
    }
    assert!(total <= u32::MAX as u64, "state count exceeds u32 ids");
    let n = total as usize;

    let mut words: Vec<u64> = Vec::with_capacity(n);
    for sh in &shards {
        words.extend_from_slice(&sh.words);
    }

    // Segment-parallel remap of per-shard rows into the flat table:
    // local entries shift by the shard base, `PENDING` entries resolve
    // through the owning shard's intern table (guaranteed populated —
    // every cross-shard word was mailed and delivered before
    // quiescence). Segments are disjoint slices of the one allocation.
    let mut succ = vec![0u32; n * nc];
    {
        let mut segments: Vec<(usize, &mut [u32])> = Vec::with_capacity(shard_count);
        let mut rest: &mut [u32] = &mut succ;
        for (s, sh) in shards.iter().enumerate() {
            let (seg, tail) = rest.split_at_mut(sh.words.len() * nc);
            segments.push((s, seg));
            rest = tail;
        }
        let jobs: Mutex<Vec<(usize, &mut [u32])>> = Mutex::new(segments);
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(shard_count) {
                let jobs = &jobs;
                let shards = &shards;
                let bases = &bases;
                scope.spawn(move |_| loop {
                    let job = jobs.lock().pop();
                    let Some((s, seg)) = job else { return };
                    let sh = &shards[s];
                    for (k, out) in seg.iter_mut().enumerate() {
                        let e = sh.succ[k];
                        *out = if e & PENDING_BIT != 0 {
                            let w = sh.pending[(e & !PENDING_BIT) as usize];
                            let owner = shard_of_word(w, shard_count as u32) as usize;
                            bases[owner]
                                + *shards[owner]
                                    .index
                                    .get(&w)
                                    .expect("cross-shard successor interned by its owner")
                        } else {
                            bases[s] + e
                        };
                    }
                });
            }
        })
        .expect("remap worker panicked");
    }

    let mut init: Vec<u32> = init_words
        .iter()
        .map(|&w| {
            let s = shard_of_word(w, shard_count as u32) as usize;
            bases[s] + shards[s].index[&w]
        })
        .collect();
    init.sort_unstable();
    init.dedup();

    ShardedBuild {
        words,
        succ,
        init,
        bases,
        stats: BuildStats {
            build_ms: 0,
            shards: shard_count as u32,
            steals: steals.into_inner(),
            cross_shard_edges: cross.into_inner(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    fn grid() -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 31).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 31).unwrap()).unwrap();
        Program::builder("grid", Arc::new(v))
            .init(and2(eq(var(x), int(0)), eq(var(y), int(0))))
            .fair_command("ix", lt(var(x), int(31)), vec![(x, add(var(x), int(1)))])
            .fair_command("iy", lt(var(y), int(31)), vec![(y, add(var(y), int(1)))])
            .build()
            .unwrap()
    }

    /// Reference BFS over packed words, independent of both builders.
    fn reference_reachable(program: &Program, cp: &CompiledProgram) -> Vec<u64> {
        let mut scratch = Scratch::new();
        let mut seen: std::collections::HashSet<u64> =
            collect_init_words(program, cp, &ParConfig::sequential())
                .into_iter()
                .collect();
        let mut frontier: Vec<u64> = seen.iter().copied().collect();
        while let Some(w) = frontier.pop() {
            for cc in &cp.commands {
                let nw = cc.step_packed(w, &cp.layout, &mut scratch);
                if seen.insert(nw) {
                    frontier.push(nw);
                }
            }
        }
        let mut out: Vec<u64> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn sharded_explore_matches_reference_bfs() {
        let p = grid();
        let cfg = crate::space::ScanConfig::default();
        let cp = CompiledProgram::try_compile(&p, &cfg).expect("compilable");
        let expected = reference_reachable(&p, &cp);
        for threads in [2usize, 4, 8] {
            let sb = explore(&p, &cp, &ParConfig::with_threads(threads));
            assert_eq!(sb.stats.shards as usize, (threads * 4).next_power_of_two());

            // Same state set.
            let mut got = sb.words.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "state set differs at {threads} threads");

            // Same successor relation, checked word-for-word against
            // the compiled step function.
            let mut scratch = Scratch::new();
            let nc = p.commands.len();
            for (id, &w) in sb.words.iter().enumerate() {
                for (c, cc) in cp.commands.iter().enumerate() {
                    let nw = cc.step_packed(w, &cp.layout, &mut scratch);
                    let nid = sb.succ[id * nc + c] as usize;
                    assert_eq!(sb.words[nid], nw, "wrong successor at ({id}, {c})");
                }
            }

            // Init states decode back to the init predicate's words.
            let init_words: Vec<u64> = sb.init.iter().map(|&i| sb.words[i as usize]).collect();
            let mut expected_init = collect_init_words(&p, &cp, &ParConfig::sequential());
            expected_init.sort_unstable();
            let mut got_init = init_words;
            got_init.sort_unstable();
            assert_eq!(got_init, expected_init);

            // Shard bases are an ascending partition of the id space.
            assert_eq!(sb.bases[0], 0);
            assert!(sb.bases.windows(2).all(|p| p[0] <= p[1]));
            // Every word actually lives in the shard that owns it.
            for (s, win) in sb.bases.windows(2).enumerate() {
                for &w in &sb.words[win[0] as usize..win[1] as usize] {
                    assert_eq!(shard_of_word(w, sb.stats.shards) as usize, s);
                }
            }
        }
    }

    #[test]
    fn empty_init_is_an_empty_system() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 7).unwrap()).unwrap();
        let p = Program::builder("void", Arc::new(v))
            .init(ff())
            .fair_command("ix", lt(var(x), int(7)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let cfg = crate::space::ScanConfig::default();
        let cp = CompiledProgram::try_compile(&p, &cfg).expect("compilable");
        let sb = explore(&p, &cp, &ParConfig::with_threads(4));
        assert!(sb.words.is_empty());
        assert!(sb.succ.is_empty());
        assert!(sb.init.is_empty());
    }
}
