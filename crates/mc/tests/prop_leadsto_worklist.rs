//! Differential tests of the worklist liveness engine: on random small
//! programs and predicates, the predecessor-CSR worklist formulation
//! (`check_leadsto_on`) must agree with the pre-worklist quiescence
//! formulation (`check_leadsto_on_reference`) — verdict, SCC/trap
//! counts, and the lasso witness itself, state-for-state — across both
//! universes and every fairness shape (`D = ∅`, partial, all-fair).
//! Witnesses are additionally replayed on the reference semantics.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_mc::prelude::*;
use unity_mc::trace::Counterexample;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(ff()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| or2(a, b)),
        ]
    })
}

/// Small random programs over the fixed vocabulary. Each command's
/// fairness is drawn independently, so the suite covers `D = ∅`
/// (skip-only fair runs: every `¬q` SCC traps), partial fairness
/// (stalls), and the all-fair case.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        arb_pred(),
        0i64..=2,
        1i64..=2,
        any::<bool>(),
        any::<bool>(),
        arb_pred(),
    )
        .prop_map(|(guard1, y0, dx, fair1, fair2, guard2)| {
            let v = vocab();
            let builder =
                Program::builder("rand", v).init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))));
            let cx_guard = and2(guard1, lt(var(X), int(3)));
            let cx_updates = vec![(X, add(var(X), int(dx)))];
            let builder = if fair1 {
                builder.fair_command("cx", cx_guard, cx_updates)
            } else {
                builder.command("cx", cx_guard, cx_updates)
            };
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        })
}

/// A lasso witness must genuinely refute `p ↦ q` on the reference
/// semantics: the prefix starts in a `p ∧ ¬q` state, every hop replays
/// as some command step, every visited state avoids `q`, and the trap
/// is a non-empty set of `¬q` states.
fn assert_replayable(program: &Program, p: &Expr, q: &Expr, cex: &Counterexample) {
    let Counterexample::LeadsTo { prefix, trap } = cex else {
        panic!("leadsto must produce a lasso, got {cex:?}");
    };
    let vocab = &program.vocab;
    assert!(!prefix.is_empty(), "prefix holds at least the start state");
    assert!(!trap.is_empty(), "a refutation names its trap");
    let start = &prefix[0];
    assert!(eval_bool(p, start), "lasso starts in a p-state");
    for s in prefix.iter().chain(trap.iter()) {
        assert!(!eval_bool(q, s), "lasso never visits q");
    }
    for pair in prefix.windows(2) {
        let stepped = program
            .commands
            .iter()
            .any(|c| c.step(&pair[0], vocab) == pair[1]);
        assert!(stepped, "prefix hop replays as a command step: {pair:?}");
    }
    // The trap entry point is the last prefix state.
    let entry = prefix.last().expect("non-empty");
    assert!(trap.contains(entry), "prefix ends inside the trap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Worklist ≡ quiescence on the same transition system:
    /// verdict, SCC partition size, trap count, scanned region, and the
    /// lasso witness itself.
    #[test]
    fn worklist_equals_reference_propagation(
        program in arb_program(),
        p in arb_pred(),
        q in arb_pred(),
    ) {
        for universe in [Universe::Reachable, Universe::AllStates] {
            let ts = TransitionSystem::build(&program, universe, &ScanConfig::default()).unwrap();
            let fast = check_leadsto_on(&ts, &program, &p, &q);
            let slow = check_leadsto_on_reference(&ts, &program, &p, &q);
            match (fast, slow) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.states, b.states);
                    prop_assert_eq!(a.transitions, b.transitions);
                    prop_assert_eq!(a.sccs, b.sccs, "SCC count parity");
                    prop_assert_eq!(a.traps, b.traps, "trap count parity");
                    prop_assert_eq!(a.scanned_states, b.scanned_states,
                                    "both visit exactly the ¬q region");
                }
                (Err(McError::Refuted { property: pa, cex: ca }),
                 Err(McError::Refuted { property: pb, cex: cb })) => {
                    prop_assert_eq!(pa, pb);
                    prop_assert_eq!(&ca, &cb, "witness identity, state-for-state");
                    assert_replayable(&program, &p, &q, &ca);
                }
                (a, b) => panic!("verdicts diverged under {universe:?}: {a:?} vs {b:?}"),
            }
        }
    }

    /// Full-stack parity: the default engine (packed transition system,
    /// session cache, worklist) and `ScanConfig::reference()` (explicit
    /// states, quiescence propagation) return the same verdicts.
    #[test]
    fn engine_stacks_agree_on_verdicts(
        program in arb_program(),
        p in arb_pred(),
        q in arb_pred(),
    ) {
        for universe in [Universe::Reachable, Universe::AllStates] {
            let fast = check_leadsto(&program, &p, &q, universe, &ScanConfig::default());
            let slow = check_leadsto(&program, &p, &q, universe, &ScanConfig::reference());
            prop_assert_eq!(fast.is_ok(), slow.is_ok(),
                            "verdict parity under {:?}", universe);
            if let (Err(McError::Refuted { cex, .. }), Err(McError::Refuted { cex: expect, .. }))
                = (&fast, &slow)
            {
                prop_assert_eq!(cex, expect, "witness parity across engine stacks");
                assert_replayable(&program, &p, &q, cex);
            }
        }
    }

    /// Session-cached checks answer exactly like one-shot worklist
    /// checks, and repeating them over the pooled scratch changes
    /// nothing.
    #[test]
    fn session_scratch_reuse_is_sound(
        program in arb_program(),
        p in arb_pred(),
        q in arb_pred(),
    ) {
        use unity_core::properties::Property;
        let mut session = Verifier::new(&program, ScanConfig::default());
        let props = [
            Property::LeadsTo(p.clone(), q.clone()),
            Property::LeadsTo(tt(), q.clone()),
            Property::LeadsTo(q.clone(), p.clone()),
        ];
        let first: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
        let second: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
        for ((prop, a), b) in props.iter().zip(&first).zip(&second) {
            prop_assert_eq!(a.passed(), b.passed(), "idempotent: {:?}", prop);
            prop_assert_eq!(a.counterexample(), b.counterexample());
            let oneshot = check_leadsto(
                &program,
                match prop { Property::LeadsTo(p, _) => p, _ => unreachable!() },
                match prop { Property::LeadsTo(_, q) => q, _ => unreachable!() },
                Universe::Reachable,
                &ScanConfig::default(),
            );
            prop_assert_eq!(a.passed(), oneshot.is_ok());
        }
    }
}

/// `D = ∅`: with no fairness obligations, skip-only runs are fair, so
/// `p ↦ q` collapses to "every reachable `p`-state already satisfies
/// `q`" — both formulations must implement exactly that.
#[test]
fn empty_fair_set_edge_case() {
    let v = vocab();
    let program = Program::builder("unfair", v)
        .init(and2(eq(var(X), int(0)), eq(var(Y), int(0))))
        .command("cx", lt(var(X), int(3)), vec![(X, add(var(X), int(1)))])
        .build()
        .unwrap();
    for universe in [Universe::Reachable, Universe::AllStates] {
        let ts = TransitionSystem::build(&program, universe, &ScanConfig::default()).unwrap();
        // p ⇒ q reachably: holds (trivially, every SCC is a trap but no
        // p ∧ ¬q state exists).
        check_leadsto_on(&ts, &program, &eq(var(X), int(1)), &ge(var(X), int(1))).unwrap();
        check_leadsto_on_reference(&ts, &program, &eq(var(X), int(1)), &ge(var(X), int(1)))
            .unwrap();
        // Any genuine progress claim fails, and every ¬q SCC is a trap.
        let fast = check_leadsto_on(&ts, &program, &tt(), &eq(var(X), int(3)));
        let slow = check_leadsto_on_reference(&ts, &program, &tt(), &eq(var(X), int(3)));
        let (Err(McError::Refuted { cex: a, .. }), Err(McError::Refuted { cex: b, .. })) =
            (fast, slow)
        else {
            panic!("skip-stuttering refutes progress when D = ∅");
        };
        assert_eq!(a, b);
    }
    let ts =
        TransitionSystem::build(&program, Universe::Reachable, &ScanConfig::default()).unwrap();
    let report = check_leadsto_on(&ts, &program, &ff(), &ff()).unwrap();
    assert_eq!(
        report.sccs, report.traps,
        "with D = ∅ every ¬q SCC is a trap"
    );
}

/// All-fair edge case on a deterministic cycle: circulation holds and
/// the worklist never fires (no traps).
#[test]
fn all_fair_cycle_edge_case() {
    let mut v = Vocabulary::new();
    let t = v.declare("t", Domain::int_range(0, 4).unwrap()).unwrap();
    let program = Program::builder("cycle", Arc::new(v))
        .init(eq(var(t), int(0)))
        .fair_command("step", tt(), vec![(t, rem(add(var(t), int(1)), int(5)))])
        .build()
        .unwrap();
    for universe in [Universe::Reachable, Universe::AllStates] {
        let ts = TransitionSystem::build(&program, universe, &ScanConfig::default()).unwrap();
        for i in 0..5i64 {
            let p = eq(var(t), int(i));
            let q = eq(var(t), int((i + 1) % 5));
            let fast = check_leadsto_on(&ts, &program, &p, &q).unwrap();
            let slow = check_leadsto_on_reference(&ts, &program, &p, &q).unwrap();
            assert_eq!(fast.traps, 0);
            assert_eq!(slow.traps, 0);
            assert_eq!(fast.worklist_pushes, 0, "no trap seeds, no propagation");
            assert_eq!(fast.sccs, slow.sccs);
        }
    }
}
