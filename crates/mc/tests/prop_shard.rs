//! Differential tests of the sharded work-stealing explorer: on random
//! small programs the parallel builder must produce the *same system*
//! as the sequential reference builder — identical state set, initial
//! set, and successor relation — merely under a different (shard-major)
//! state numbering. Verdicts must be identical across 1/2/4/8 threads
//! and both universes; witnesses must be semantically interchangeable
//! (each replays on the reference semantics), and at `--threads 1` the
//! engine is the exact pre-existing sequential path, so the witness is
//! identical state-for-state.
//!
//! The thread-count sweep deliberately exceeds the shard gate: the
//! configs below use [`ParConfig::with_threads`], whose zero
//! `sequential_cutoff` forces the sharded path even on these tiny
//! spaces, so every case exercises interning, mailboxes, stealing, and
//! the stitch.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_core::state::State;
use unity_mc::prelude::*;
use unity_mc::trace::Counterexample;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(ff()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| or2(a, b)),
        ]
    })
}

/// Small random programs over the fixed vocabulary, with independently
/// drawn fairness so verdict parity is exercised across `D = ∅`,
/// partial, and all-fair shapes.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        arb_pred(),
        0i64..=2,
        1i64..=2,
        any::<bool>(),
        any::<bool>(),
        arb_pred(),
    )
        .prop_map(|(guard1, y0, dx, fair1, fair2, guard2)| {
            let v = vocab();
            let builder =
                Program::builder("rand", v).init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))));
            let cx_guard = and2(guard1, lt(var(X), int(3)));
            let cx_updates = vec![(X, add(var(X), int(dx)))];
            let builder = if fair1 {
                builder.fair_command("cx", cx_guard, cx_updates)
            } else {
                builder.command("cx", cx_guard, cx_updates)
            };
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        })
}

/// Sequential packed build: one thread, cutoff at infinity — the exact
/// pre-sharding code path.
fn sequential_cfg() -> ScanConfig {
    ScanConfig {
        par: ParConfig::sequential(),
        ..Default::default()
    }
}

/// Sharded build at `threads` workers, cutoff zero so even tiny spaces
/// take the parallel path.
fn sharded_cfg(threads: usize) -> ScanConfig {
    ScanConfig {
        par: ParConfig::with_threads(threads),
        ..Default::default()
    }
}

/// A system rendered as a renumbering-independent value: state set,
/// initial-state set, successor relation keyed by (pre-state, command
/// index) — ids erased by resolving them to full [`State`]s.
type Canonical = (
    BTreeSet<State>,
    BTreeSet<State>,
    BTreeMap<(State, usize), State>,
);

fn canonical(ts: &TransitionSystem, n_commands: usize) -> Canonical {
    let mut states = BTreeSet::new();
    let mut rel = BTreeMap::new();
    for id in 0..ts.len() as u32 {
        let s = ts.state(id);
        for c in 0..n_commands {
            let succ = ts.state(ts.succ_at(id as usize, c));
            rel.insert((s.clone(), c), succ);
        }
        states.insert(s);
    }
    let init = ts.init.iter().map(|&id| ts.state(id)).collect();
    (states, init, rel)
}

/// A lasso witness must genuinely refute `p ↦ q` on the reference
/// semantics, whatever numbering produced it.
fn assert_replayable(program: &Program, p: &Expr, q: &Expr, cex: &Counterexample) {
    let Counterexample::LeadsTo { prefix, trap } = cex else {
        panic!("leadsto must produce a lasso, got {cex:?}");
    };
    let vocab = &program.vocab;
    assert!(!prefix.is_empty(), "prefix holds at least the start state");
    assert!(!trap.is_empty(), "a refutation names its trap");
    assert!(eval_bool(p, &prefix[0]), "lasso starts in a p-state");
    for s in prefix.iter().chain(trap.iter()) {
        assert!(!eval_bool(q, s), "lasso never visits q");
    }
    for pair in prefix.windows(2) {
        let stepped = program
            .commands
            .iter()
            .any(|c| c.step(&pair[0], vocab) == pair[1]);
        assert!(stepped, "prefix hop replays as a command step: {pair:?}");
    }
    let entry = prefix.last().expect("non-empty");
    assert!(trap.contains(entry), "prefix ends inside the trap");
}

/// A safety witness must be semantically valid for its property; state
/// numbering may legitimately pick a different (equally valid) one.
fn assert_safety_witness(program: &Program, prop: &Property, cex: &Counterexample) {
    match (prop, cex) {
        (Property::Invariant(p), Counterexample::Init { state }) => {
            assert!(!eval_bool(p, state), "init witness violates p");
        }
        (
            Property::Invariant(p) | Property::Stable(p),
            Counterexample::Next { state, after, .. },
        ) => {
            assert!(eval_bool(p, state), "stable witness starts inside p");
            assert!(!eval_bool(p, after), "stable witness steps out of p");
            let vocab = &program.vocab;
            let stepped = program
                .commands
                .iter()
                .any(|c| &c.step(state, vocab) == after);
            assert!(stepped, "witness hop replays as a command step");
        }
        other => panic!("unexpected safety witness shape: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded builder constructs *the same transition system* as
    /// the sequential reference builder at every thread count — state
    /// set, init set, and successor relation all agree once ids are
    /// resolved back to states.
    #[test]
    fn sharded_build_equals_sequential_build(program in arb_program()) {
        let nc = program.commands.len();
        for universe in [Universe::Reachable, Universe::AllStates] {
            let seq = TransitionSystem::build(&program, universe, &sequential_cfg()).unwrap();
            let (states, init, rel) = canonical(&seq, nc);
            for threads in [2usize, 4, 8] {
                let par =
                    TransitionSystem::build(&program, universe, &sharded_cfg(threads)).unwrap();
                prop_assert_eq!(par.len(), seq.len(), "state count at {} threads", threads);
                prop_assert_eq!(
                    par.transition_count(), seq.transition_count(),
                    "transition count at {} threads", threads
                );
                let (p_states, p_init, p_rel) = canonical(&par, nc);
                prop_assert_eq!(&p_states, &states, "state set at {} threads", threads);
                prop_assert_eq!(&p_init, &init, "init set at {} threads", threads);
                prop_assert_eq!(&p_rel, &rel, "successor relation at {} threads", threads);
            }
        }
    }

    /// Safety and liveness verdicts are identical across 1/2/4/8
    /// threads and both universes. Witnesses from the sharded engine
    /// replay on the reference semantics; at one thread the engine is
    /// the exact sequential path, so the witness is identical
    /// state-for-state.
    #[test]
    fn verdicts_agree_across_thread_counts(
        program in arb_program(),
        p in arb_pred(),
        q in arb_pred(),
    ) {
        let props = [
            Property::Invariant(p.clone()),
            Property::Stable(p.clone()),
            Property::LeadsTo(p.clone(), q.clone()),
        ];
        for universe in [Universe::Reachable, Universe::AllStates] {
            let mut base = Verifier::new(&program, sequential_cfg()).with_universe(universe);
            let expect: Vec<_> = props.iter().map(|pr| base.verify(pr)).collect();
            for threads in [1usize, 2, 4, 8] {
                let mut session =
                    Verifier::new(&program, sharded_cfg(threads)).with_universe(universe);
                for (prop, want) in props.iter().zip(&expect) {
                    let got = session.verify(prop);
                    prop_assert_eq!(
                        got.passed(), want.passed(),
                        "verdict parity for {:?} at {} threads under {:?}",
                        prop, threads, universe
                    );
                    match (got.counterexample(), want.counterexample()) {
                        (None, None) => {}
                        (Some(cex), Some(expect_cex)) => {
                            if threads == 1 {
                                // One worker is the sequential engine:
                                // bit-identical numbering, same witness.
                                prop_assert_eq!(cex, expect_cex, "witness identity at 1 thread");
                            }
                            match prop {
                                Property::LeadsTo(p, q) => {
                                    assert_replayable(&program, p, q, cex);
                                    assert_replayable(&program, p, q, expect_cex);
                                }
                                _ => assert_safety_witness(&program, prop, cex),
                            }
                        }
                        (a, b) => panic!(
                            "witness presence diverged for {prop:?} at {threads} threads: \
                             {a:?} vs {b:?}"
                        ),
                    }
                }
            }
        }
    }

    /// A Verifier session over the sharded system is idempotent: asking
    /// the same questions twice returns the same verdicts and the same
    /// witnesses, and both agree with a one-shot sequential check.
    #[test]
    fn sharded_session_is_idempotent(
        program in arb_program(),
        p in arb_pred(),
        q in arb_pred(),
    ) {
        let mut session = Verifier::new(&program, sharded_cfg(4));
        let props = [
            Property::Invariant(p.clone()),
            Property::LeadsTo(p.clone(), q.clone()),
            Property::LeadsTo(tt(), q.clone()),
        ];
        let first: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
        let second: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
        for ((prop, a), b) in props.iter().zip(&first).zip(&second) {
            prop_assert_eq!(a.passed(), b.passed(), "idempotent: {:?}", prop);
            prop_assert_eq!(a.counterexample(), b.counterexample(), "same witness on replay");
        }
        let oneshot = check_leadsto(&program, &p, &q, Universe::Reachable, &sequential_cfg());
        prop_assert_eq!(first[1].passed(), oneshot.is_ok(),
                        "session verdict matches one-shot sequential check");
    }
}

/// An unsatisfiable init predicate must yield the same empty system on
/// every path: no states, no init ids, zero transitions.
#[test]
fn empty_init_is_empty_everywhere() {
    let v = vocab();
    let program = Program::builder("void", v)
        .init(ff())
        .fair_command("cx", lt(var(X), int(3)), vec![(X, add(var(X), int(1)))])
        .build()
        .unwrap();
    let seq = TransitionSystem::build(&program, Universe::Reachable, &sequential_cfg()).unwrap();
    assert!(seq.is_empty());
    for threads in [2usize, 4, 8] {
        let par =
            TransitionSystem::build(&program, Universe::Reachable, &sharded_cfg(threads)).unwrap();
        assert!(par.is_empty(), "empty at {threads} threads");
        assert!(par.init.is_empty());
        assert_eq!(par.transition_count(), 0);
    }
}
