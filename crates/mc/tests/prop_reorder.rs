//! Order-independence of the symbolic engine: a BDD variable order is
//! an *internal encoding choice*, so on random programs every safety
//! verdict, the reachable-state count, and the replayability of every
//! counterexample must be identical under the declaration order, the
//! static dependency order, dynamic sifting, and arbitrary random field
//! permutations — and all of them must agree with the compiled explicit
//! engine (itself pinned against the tree-walking reference by
//! `prop_compiled_scan.rs`).

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_mc::trace::Counterexample;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
        (0i64..=3).prop_map(|k| eq(rem(add(var(X), var(Y)), int(2)), int(k % 2))),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| implies(a, b)),
        ]
    })
}

/// The `prop_symbolic.rs` program distribution, reused so every order
/// strategy sees the same programs the engine-parity suite pins.
fn arb_program() -> impl Strategy<Value = Program> {
    (arb_pred(), 0i64..=2, 1i64..=2, any::<bool>(), arb_pred()).prop_map(
        |(guard1, y0, dx, fair2, guard2)| {
            let v = vocab();
            let builder = Program::builder("rand", v)
                .init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))))
                .fair_command(
                    "cx",
                    and2(guard1, lt(var(X), int(3))),
                    vec![(X, add(var(X), int(dx)))],
                );
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        },
    )
}

/// All 6 permutations of the 3-variable vocabulary.
const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// The order strategies under test: the three `--order` modes plus a
/// random field permutation, with one low-watermark variant that forces
/// the dynamic-sifting machinery to actually run on these small
/// arenas.
fn order_configs(perm: usize) -> Vec<(&'static str, SymbolicOptions)> {
    vec![
        ("declaration", SymbolicOptions::declaration()),
        ("static", SymbolicOptions::static_order()),
        ("sift", SymbolicOptions::sifting()),
        (
            "sift-forced",
            SymbolicOptions {
                order: OrderMode::Sifting,
                sift_threshold: 1,
            },
        ),
        (
            "permuted",
            SymbolicOptions {
                order: OrderMode::Fields(PERMS[perm].to_vec()),
                ..Default::default()
            },
        ),
    ]
}

/// A symbolic counterexample must be a genuine violation on the
/// reference semantics, whatever order produced it.
fn assert_replays(program: &Program, prop: &Property, cex: &Counterexample, mode: &str) {
    let vocab = &program.vocab;
    match (prop, cex) {
        (Property::Init(p), Counterexample::Init { state }) => {
            assert!(state.in_domains(vocab), "[{mode}] type-consistent");
            assert!(program.satisfies_init(state), "[{mode}] satisfies init");
            assert!(!eval_bool(p, state), "[{mode}] falsifies p");
        }
        (Property::Invariant(p), Counterexample::Init { state }) => {
            assert!(
                program.satisfies_init(state) && !eval_bool(p, state),
                "[{mode}] init half of invariant replays"
            );
        }
        (
            Property::Stable(p) | Property::Invariant(p),
            Counterexample::Next { state, command, .. },
        ) => {
            assert!(eval_bool(p, state), "[{mode}] pre-state satisfies p");
            let cmd = command.as_ref().expect("stable violations step a command");
            let c = program.commands.iter().find(|c| &c.name == cmd).unwrap();
            assert!(
                !eval_bool(p, &c.step(state, vocab)),
                "[{mode}] post-state violates p"
            );
        }
        (Property::Next(p, q), Counterexample::Next { state, command, .. }) => {
            assert!(eval_bool(p, state), "[{mode}] pre-state satisfies p");
            let after = match command {
                None => state.clone(),
                Some(name) => {
                    let c = program.commands.iter().find(|c| &c.name == name).unwrap();
                    c.step(state, vocab)
                }
            };
            assert!(!eval_bool(q, &after), "[{mode}] post-state violates q");
        }
        (Property::Transient(p), Counterexample::Transient { witnesses }) => {
            for (name, state) in witnesses {
                let c = program.commands.iter().find(|c| &c.name == name).unwrap();
                assert!(eval_bool(p, state), "[{mode}] stuck witness satisfies p");
                assert!(
                    eval_bool(p, &c.step(state, vocab)),
                    "[{mode}] command leaves the witness inside p"
                );
            }
        }
        (Property::Unchanged(e), Counterexample::Unchanged { state, command, .. }) => {
            let c = program
                .commands
                .iter()
                .find(|c| &c.name == command)
                .unwrap();
            assert_ne!(
                unity_core::expr::eval::eval(e, state),
                unity_core::expr::eval::eval(e, &c.step(state, vocab)),
                "[{mode}] command really changes the expression"
            );
        }
        (prop, cex) => panic!("[{mode}] unexpected counterexample for {prop:?}: {cex:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Safety verdicts are order-independent and agree with the
    /// explicit engine; every refutation replays on the reference
    /// semantics under every order.
    #[test]
    fn verdicts_are_order_independent(
        prog in arb_program(), p in arb_pred(), q in arb_pred(), perm in 0usize..6
    ) {
        let explicit = ScanConfig::default();
        for prop in [
            Property::Init(p.clone()),
            Property::Stable(p.clone()),
            Property::Invariant(p.clone()),
            Property::Next(p.clone(), q.clone()),
            Property::Transient(p.clone()),
            Property::Unchanged(add(var(X), var(Y))),
        ] {
            let expect = check_property(&prog, &prop, Universe::AllStates, &explicit).is_ok();
            for (mode, opts) in order_configs(perm) {
                let cfg = ScanConfig { symbolic: opts, ..ScanConfig::symbolic() };
                let got = check_property(&prog, &prop, Universe::AllStates, &cfg);
                prop_assert_eq!(
                    got.is_ok(), expect,
                    "order `{}` flips the verdict on {:?}: {:?}", mode, prop, got
                );
                if let Err(McError::Refuted { cex, .. }) = &got {
                    assert_replays(&prog, &prop, cex, mode);
                }
            }
        }
    }

    /// The exact reachable-state count is identical under every order
    /// strategy (and matches the explicit transition system).
    #[test]
    fn reachable_counts_are_order_independent(prog in arb_program(), perm in 0usize..6) {
        let ts = TransitionSystem::build(&prog, Universe::Reachable, &ScanConfig::default())
            .unwrap();
        for (mode, opts) in order_configs(perm) {
            let count = reachable_count_with(&prog, &opts).expect("vocabulary fits");
            prop_assert_eq!(
                count, ts.len() as u128,
                "order `{}` changes the reachable count", mode
            );
        }
    }
}

/// The order-hostile mirrored-rings workload: identical counts and
/// verdicts across all order modes — including the reversed blocked
/// permutation, the worst order expressible via `Fields` — at a size
/// where the declaration order is already orders of magnitude more
/// expensive.
#[test]
fn mirrored_rings_agree_across_orders() {
    use unity_systems::mirror::mirrored_rings;
    let sys = mirrored_rings(8).unwrap();
    let reversed: Vec<usize> = (0..16).rev().collect();
    let configs = [
        ("declaration", SymbolicOptions::declaration()),
        ("static", SymbolicOptions::static_order()),
        ("sift", SymbolicOptions::sifting()),
        (
            "reversed",
            SymbolicOptions {
                order: OrderMode::Fields(reversed),
                ..Default::default()
            },
        ),
    ];
    for (mode, opts) in configs {
        let count = reachable_count_with(&sys.program, &opts).unwrap();
        assert_eq!(count, 1 << 8, "order `{mode}`");
        let cfg = ScanConfig {
            symbolic: opts,
            ..ScanConfig::symbolic()
        };
        check_property(
            &sys.program,
            &sys.mirror_invariant(),
            Universe::AllStates,
            &cfg,
        )
        .unwrap();
    }
}

/// On the *opaque* mirror variant the co-occurrence graph is complete,
/// so the static heuristic degenerates to the declaration order and
/// the transition relations themselves blow up — the build-time
/// watermark sift must engage, discover the pairing, and leave every
/// result unchanged.
#[test]
fn watermark_sifting_rescues_the_opaque_workload() {
    use unity_systems::mirror::mirrored_rings_opaque;
    let n = 10usize;
    let sys = mirrored_rings_opaque(n).unwrap();
    let mut sifted =
        SymbolicProgram::build_with(&sys.program, &SymbolicOptions::sifting()).unwrap();
    let reach = sifted.reachable();
    assert_eq!(reach.count, 1 << n);
    let stats = sifted.stats();
    assert!(stats.bdd.sift_passes > 0, "sifting engaged: {stats}");
    assert!(stats.bdd.swaps > 0, "levels actually moved: {stats}");
    assert!(stats.bdd.gc_runs > 0, "generational sweeps ran: {stats}");

    // Same verdict and count without any reordering, at exponential
    // cost the sifted run avoids: peak arena pressure must be far
    // (≥ 4×) below the declaration-order run's.
    let mut plain =
        SymbolicProgram::build_with(&sys.program, &SymbolicOptions::declaration()).unwrap();
    assert_eq!(plain.reachable().count, 1 << n);
    let plain_stats = plain.stats();
    assert!(
        stats.bdd.peak_nodes * 4 <= plain_stats.bdd.peak_nodes,
        "sifting caps the arena: {} vs declaration {}",
        stats.bdd.peak_nodes,
        plain_stats.bdd.peak_nodes
    );
}
