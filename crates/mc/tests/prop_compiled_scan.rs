//! Differential tests of the compiled scan pipeline: every checker must
//! return the **same verdict** (and refute the same properties) under
//! the compiled engine and the tree-walking reference engine, on random
//! programs and predicates — plus fixed regressions on the paper's two
//! systems (toy counters, priority ring) pinning projection + packing
//! agreement.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_mc::prelude::*;
use unity_mc::space::Engine;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| implies(a, b)),
        ]
    })
}

/// Small random programs over the fixed vocabulary.
fn arb_program() -> impl Strategy<Value = Program> {
    (arb_pred(), 0i64..=2, 1i64..=2, any::<bool>(), arb_pred()).prop_map(
        |(guard1, y0, dx, fair2, guard2)| {
            let v = vocab();
            let builder = Program::builder("rand", v)
                .init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))))
                .fair_command(
                    "cx",
                    and2(guard1, lt(var(X), int(3))),
                    vec![(X, add(var(X), int(dx)))],
                );
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        },
    )
}

/// Verdict (+ counterexample kind) must agree between engines.
fn agree<T: std::fmt::Debug, E: std::fmt::Debug>(a: &Result<T, E>, b: &Result<T, E>) -> bool {
    a.is_ok() == b.is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_verdicts_agree(p in arb_pred()) {
        let v = vocab();
        let compiled = ScanConfig::default();
        let reference = ScanConfig::reference();
        prop_assert!(agree(
            &check_valid(&v, &p, &compiled),
            &check_valid(&v, &p, &reference),
        ));
        let sat_c = find_satisfying(&v, &p, &compiled).unwrap();
        let sat_r = find_satisfying(&v, &p, &reference).unwrap();
        prop_assert_eq!(sat_c.is_some(), sat_r.is_some());
    }

    #[test]
    fn property_check_verdicts_agree(prog in arb_program(), p in arb_pred(), q in arb_pred()) {
        let compiled = ScanConfig::default();
        let reference = ScanConfig::reference();
        for prop in [
            unity_core::properties::Property::Init(p.clone()),
            unity_core::properties::Property::Stable(p.clone()),
            unity_core::properties::Property::Invariant(p.clone()),
            unity_core::properties::Property::Next(p.clone(), q.clone()),
            unity_core::properties::Property::Transient(p.clone()),
            unity_core::properties::Property::Unchanged(add(var(X), var(Y))),
        ] {
            let c = check_property(&prog, &prop, Universe::AllStates, &compiled);
            let r = check_property(&prog, &prop, Universe::AllStates, &reference);
            prop_assert!(agree(&c, &r), "engines disagree on {:?}: {:?} vs {:?}", prop, c, r);
        }
    }

    #[test]
    fn transition_systems_agree(prog in arb_program()) {
        for universe in [Universe::Reachable, Universe::AllStates] {
            let c = TransitionSystem::build(&prog, universe, &ScanConfig::default()).unwrap();
            let r = TransitionSystem::build(&prog, universe, &ScanConfig::reference()).unwrap();
            prop_assert_eq!(c.len(), r.len());
            prop_assert_eq!(c.transition_count(), r.transition_count());
            prop_assert_eq!(&c.init, &r.init);
            // Identical interning order: state-by-state equality.
            for id in 0..c.len() as u32 {
                prop_assert_eq!(c.state(id), r.state(id));
                prop_assert_eq!(c.succ_row(id as usize), r.succ_row(id as usize));
            }
        }
    }

    #[test]
    fn leadsto_and_bounded_agree(prog in arb_program(), p in arb_pred(), q in arb_pred()) {
        let c = check_leadsto(&prog, &p, &q, Universe::Reachable, &ScanConfig::default());
        let r = check_leadsto(&prog, &p, &q, Universe::Reachable, &ScanConfig::reference());
        prop_assert!(agree(&c, &r), "leadsto engines disagree: {:?} vs {:?}", c, r);
        // Bounded invariant: the packed BFS against the reference BFS
        // (explicitly pinned engines), cross-checked against the exact
        // reachable checker.
        let bounded_c = bounded_invariant(&prog, &p, &BmcConfig::default());
        let bounded_r = bounded_invariant(
            &prog,
            &p,
            &BmcConfig {
                compiled: false,
                ..Default::default()
            },
        );
        prop_assert_eq!(bounded_c.is_ok(), bounded_r.is_ok());
        let exact = check_invariant_reachable(&prog, &p, &ScanConfig::reference());
        prop_assert_eq!(bounded_c.is_ok(), exact.is_ok());
    }
}

/// Regression: projection and packing agree on the toy-counter system —
/// the projected (component-support) scans and the full-product scans
/// reach the same verdicts under both engines.
#[test]
fn toy_counter_projection_and_packing_agree() {
    use unity_systems::toy_counter::{toy_system, ToySpec};
    for n in [2usize, 3] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        // Component-scope properties on component 0 (it shares the big
        // composed vocabulary, so projection actually engages) and the
        // system invariant on the composition.
        let checks: [(
            &unity_core::program::Program,
            unity_core::properties::Property,
        ); 3] = [
            (&toy.system.composed, toy.system_invariant()),
            (&toy.system.components[0], toy.spec_unchanged(0)),
            (&toy.system.components[0], toy.spec_init(0)),
        ];
        let configs = [
            ScanConfig::default(),
            ScanConfig::reference(),
            ScanConfig::without_projection(),
            ScanConfig {
                engine: Engine::Reference,
                ..ScanConfig::without_projection()
            },
        ];
        for (program, prop) in &checks {
            let verdicts: Vec<bool> = configs
                .iter()
                .map(|cfg| check_property(program, prop, Universe::AllStates, cfg).is_ok())
                .collect();
            assert!(
                verdicts.iter().all(|&v| v == verdicts[0]),
                "configs disagree on {prop:?}: {verdicts:?}"
            );
            assert!(
                verdicts[0],
                "paper properties hold on the toy system: {prop:?}"
            );
        }
    }
}

/// Regression: the priority ring's safety invariant and liveness agree
/// across engines, and the packed transition system matches the
/// reference one state for state.
#[test]
fn priority_ring_packing_agrees() {
    use unity_systems::priority::PrioritySystem;
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(4))).unwrap();
    let program = &sys.system.composed;
    for cfg in [ScanConfig::default(), ScanConfig::reference()] {
        check_property(program, &sys.safety_invariant(), Universe::AllStates, &cfg).unwrap();
    }
    let c = TransitionSystem::build(program, Universe::AllStates, &ScanConfig::default()).unwrap();
    let r =
        TransitionSystem::build(program, Universe::AllStates, &ScanConfig::reference()).unwrap();
    assert_eq!(c.len(), r.len());
    for id in 0..c.len() as u32 {
        assert_eq!(c.state(id), r.state(id));
        assert_eq!(c.succ_row(id as usize), r.succ_row(id as usize));
    }
    // Exact fair liveness agrees too (it consumes the packed system).
    let goal = sys.priority_expr(2);
    let lc = check_leadsto(
        program,
        &tt(),
        &goal,
        Universe::Reachable,
        &ScanConfig::default(),
    );
    let lr = check_leadsto(
        program,
        &tt(),
        &goal,
        Universe::Reachable,
        &ScanConfig::reference(),
    );
    assert_eq!(lc.is_ok(), lr.is_ok());
}
