//! Property-based tests for proof synthesis and mutation testing.
//!
//! * Synthesis soundness/completeness against the exact fair checker on
//!   random programs: whenever the synthesizer produces a derivation, the
//!   kernel accepts it with every premise model-checked, and the exact
//!   checker agrees the property holds. (The converse — ensures chains
//!   always exist when `p ↦ q` holds — is *not* a theorem for arbitrary
//!   goals, so no completeness assertion is made; a weaker shape is
//!   checked: refusal implies the fair checker either refutes the
//!   property or the proof needs a non-ensures argument.)
//! * Mutation audit invariants on random programs: equivalence detection
//!   agrees with a transition-relation comparison by construction;
//!   killed + survivors + equivalent partitions the mutant set; a spec
//!   that accepts everything kills nothing.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_mc::prelude::*;
use unity_mc::synth::{synthesize_and_check, synthesize_leadsto, SynthConfig, SynthError};

const A: VarId = VarId(0);
const B: VarId = VarId(1);
const F: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_guard() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(tt()),
        Just(var(F)),
        Just(not(var(F))),
        (0i64..=2).prop_map(|k| lt(var(A), int(k))),
        (0i64..=2).prop_map(|k| le(var(B), int(k))),
    ]
}

fn arb_update() -> impl Strategy<Value = (VarId, Expr)> {
    prop_oneof![
        Just((A, add(var(A), int(1)))),
        Just((A, int(0))),
        Just((B, add(var(B), int(1)))),
        Just((B, var(A))),
        Just((F, not(var(F)))),
        Just((F, tt())),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec((arb_guard(), arb_update(), any::<bool>()), 1..4).prop_map(|cmds| {
        let mut b = Program::builder("r", vocab()).init(and(vec![
            eq(var(A), int(0)),
            eq(var(B), int(0)),
            not(var(F)),
        ]));
        for (i, (g, up, fair)) in cmds.into_iter().enumerate() {
            b = if fair {
                b.fair_command(format!("c{i}"), g, vec![up])
            } else {
                b.command(format!("c{i}"), g, vec![up])
            };
        }
        b.build().expect("pool is well-typed")
    })
}

fn arb_goal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..=2).prop_map(|k| eq(var(A), int(k))),
        (0i64..=2).prop_map(|k| ge(var(B), int(k))),
        Just(var(F)),
        Just(and2(var(F), ge(var(A), int(1)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Synthesized derivations are sound: the kernel accepts them with MC
    /// premises and the exact fair checker confirms the property.
    #[test]
    fn synthesis_is_sound(prog in arb_program(), goal in arb_goal()) {
        let cfg = SynthConfig::default();
        let scan = ScanConfig::default();
        match synthesize_and_check(&prog, &tt(), &goal, &cfg, &scan) {
            Ok((synth, stats)) => {
                prop_assert!(stats.rules > 0);
                prop_assert!(synth.reachable_states > 0);
                // Independent confirmation by the exact checker.
                let verdict = check_leadsto(&prog, &tt(), &goal, Universe::Reachable, &scan);
                prop_assert!(verdict.is_ok(),
                    "kernel-checked synthesis but fair MC refutes: {verdict:?}");
            }
            Err(SynthError::NotLive { .. }) => {
                // Either genuinely not live, or beyond ensures chains.
                // (No assertion possible in general; see module docs.)
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        }
    }

    /// When the exact checker *refutes* `true ↦ goal`, synthesis must not
    /// produce a derivation (soundness in the contrapositive).
    #[test]
    fn synthesis_never_proves_refuted_goals(prog in arb_program(), goal in arb_goal()) {
        let scan = ScanConfig::default();
        if check_leadsto(&prog, &tt(), &goal, Universe::Reachable, &scan).is_err() {
            let r = synthesize_leadsto(&prog, &tt(), &goal, &SynthConfig::default(), &scan);
            prop_assert!(
                matches!(r, Err(SynthError::NotLive { .. })),
                "synthesizer fabricated a proof of a refuted property"
            );
        }
    }

    /// Mutation-audit bookkeeping invariants on random programs.
    #[test]
    fn mutation_partition_is_exact(prog in arb_program()) {
        // Specs: a tautology (kills nothing) and reachable-invariant true
        // (also kills nothing) — so killed must be 0 and the partition
        // must be total over equivalents + survivors.
        let always = |_: &Program| true;
        let report = mutation_audit(&prog, &[("taut", &always)]).unwrap();
        prop_assert_eq!(report.killed(), 0);
        prop_assert_eq!(
            report.total(),
            report.equivalent() + report.survivors().len()
        );
        // Equivalence flags agree with same_behavior recomputed.
        for (m, o) in mutants(&prog).iter().zip(report.outcomes.iter()) {
            prop_assert_eq!(same_behavior(&prog, &m.program), o.equivalent);
        }
    }

    /// A spec that exactly pins the transition relation kills every
    /// non-equivalent mutant (kill ratio 1.0).
    #[test]
    fn exact_spec_kills_everything(prog in arb_program()) {
        let reference = prog.clone();
        let exact = move |p: &Program| same_behavior(&reference, p);
        let report = mutation_audit(&prog, &[("exact", &exact)]).unwrap();
        prop_assert!(report.survivors().is_empty());
        prop_assert_eq!(report.kill_ratio(), 1.0);
    }
}
