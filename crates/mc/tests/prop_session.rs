//! Differential tests of the verifier session: on random small programs
//! and properties, a [`Verifier`] session's verdicts must be
//! **identical** to the stateless one-shot wrappers — across all three
//! engines and both universes, including the counterexample witnesses —
//! even though the session decides everything against one memoized set
//! of artifacts and the wrappers rebuild per call. Witnesses are
//! additionally replayed on the reference semantics.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_mc::trace::Counterexample;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| or2(a, b)),
        ]
    })
}

/// Small random programs over the fixed vocabulary (the distribution the
/// other differential suites use).
fn arb_program() -> impl Strategy<Value = Program> {
    (arb_pred(), 0i64..=2, 1i64..=2, any::<bool>(), arb_pred()).prop_map(
        |(guard1, y0, dx, fair2, guard2)| {
            let v = vocab();
            let builder = Program::builder("rand", v)
                .init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))))
                .fair_command(
                    "cx",
                    and2(guard1, lt(var(X), int(3))),
                    vec![(X, add(var(X), int(dx)))],
                );
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        },
    )
}

/// The property battery posed against every generated program — one of
/// each kind, exercising every cached artifact in one session.
fn battery(p: &Expr, q: &Expr) -> Vec<Property> {
    vec![
        Property::Init(p.clone()),
        Property::Stable(p.clone()),
        Property::Invariant(p.clone()),
        Property::Next(p.clone(), q.clone()),
        Property::Transient(p.clone()),
        Property::Unchanged(sub(var(X), var(Y))),
        Property::LeadsTo(p.clone(), q.clone()),
    ]
}

/// A witness must refute its property on the reference semantics.
fn assert_genuine(program: &Program, prop: &Property, cex: &Counterexample) {
    let vocab = &program.vocab;
    match (prop, cex) {
        (Property::Init(p) | Property::Invariant(p), Counterexample::Init { state }) => {
            assert!(state.in_domains(vocab));
            assert!(program.satisfies_init(state));
            assert!(!eval_bool(p, state));
        }
        (
            Property::Stable(p) | Property::Invariant(p),
            Counterexample::Next {
                state,
                command,
                after,
            },
        ) => {
            assert!(eval_bool(p, state) && !eval_bool(p, after));
            replay(program, state, command.as_deref(), after);
        }
        (
            Property::Next(p, q),
            Counterexample::Next {
                state,
                command,
                after,
            },
        ) => {
            assert!(eval_bool(p, state) && !eval_bool(q, after));
            replay(program, state, command.as_deref(), after);
        }
        (Property::Transient(p), Counterexample::Transient { witnesses }) => {
            for (name, state) in witnesses {
                assert!(eval_bool(p, state), "stuck witness satisfies p");
                let cmd = program
                    .commands
                    .iter()
                    .find(|c| &c.name == name)
                    .expect("named command exists");
                let after = cmd.step(state, vocab);
                assert!(eval_bool(p, &after), "command fails to leave p");
            }
        }
        (Property::Unchanged(e), Counterexample::Unchanged { state, command, .. }) => {
            let cmd = program
                .commands
                .iter()
                .find(|c| &c.name == command)
                .expect("named command exists");
            let after = cmd.step(state, vocab);
            assert_ne!(
                unity_core::expr::eval::eval(e, state),
                unity_core::expr::eval::eval(e, &after)
            );
        }
        (Property::LeadsTo(..), Counterexample::LeadsTo { prefix, trap }) => {
            assert!(!prefix.is_empty() && !trap.is_empty());
        }
        (prop, cex) => panic!("mismatched witness {cex:?} for {prop:?}"),
    }
}

fn replay(
    program: &Program,
    state: &unity_core::state::State,
    command: Option<&str>,
    after: &unity_core::state::State,
) {
    match command {
        None => assert_eq!(state, after, "skip step"),
        Some(name) => {
            let cmd = program
                .commands
                .iter()
                .find(|c| c.name == name)
                .expect("named command exists");
            assert_eq!(&cmd.step(state, &program.vocab), after, "step replays");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Session-cached verdicts ≡ one-shot wrappers, witness-for-witness,
    /// across all three engines and both universes.
    #[test]
    fn session_equals_oneshot(program in arb_program(), p in arb_pred(), q in arb_pred()) {
        let props = battery(&p, &q);
        for engine in [Engine::Compiled, Engine::Reference, Engine::Symbolic] {
            let cfg = ScanConfig { engine, ..Default::default() };
            for universe in [Universe::Reachable, Universe::AllStates] {
                let mut session = Verifier::new(&program, cfg.clone()).with_universe(universe);
                for prop in &props {
                    let verdict = session.verify(prop);
                    let oneshot = check_property(&program, prop, universe, &cfg);
                    prop_assert_eq!(
                        verdict.passed(),
                        oneshot.is_ok(),
                        "verdict parity for {:?} under {:?}/{:?}",
                        prop, engine, universe
                    );
                    match (&verdict.counterexample(), &oneshot) {
                        (Some(cex), Err(McError::Refuted { cex: expect, .. })) => {
                            prop_assert_eq!(*cex, expect, "witness identity for {:?}", prop);
                            assert_genuine(&program, prop, cex);
                        }
                        (None, Ok(())) => {}
                        (got, want) => panic!("outcome mismatch: {got:?} vs {want:?}"),
                    }
                }
            }
        }
    }

    /// Repeating the whole battery on one session changes nothing: the
    /// memoized artifacts answer exactly like the first pass.
    #[test]
    fn session_is_idempotent(program in arb_program(), p in arb_pred(), q in arb_pred()) {
        let props = battery(&p, &q);
        for engine in [Engine::Compiled, Engine::Symbolic] {
            let cfg = ScanConfig { engine, ..Default::default() };
            let mut session = Verifier::new(&program, cfg);
            let first: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
            let second: Vec<_> = props.iter().map(|pr| session.verify(pr)).collect();
            for (a, b) in first.iter().zip(&second) {
                prop_assert_eq!(a.passed(), b.passed());
                prop_assert_eq!(a.counterexample(), b.counterexample());
            }
        }
    }

    /// `verify_all` reports round-trip through the JSON schema with the
    /// serialized form unchanged.
    #[test]
    fn reports_round_trip(program in arb_program(), p in arb_pred(), q in arb_pred()) {
        let checks: Vec<NamedCheck> = battery(&p, &q)
            .into_iter()
            .enumerate()
            .map(|(k, property)| NamedCheck {
                name: format!("c{k}"),
                property,
                line: k + 1,
            })
            .collect();
        let mut session = Verifier::new(&program, ScanConfig::default());
        let report = session.verify_all(&checks);
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        prop_assert_eq!(back.to_json(), json);
        prop_assert_eq!(back.all_passed(), report.all_passed());
    }
}
