//! The differential suite behind the assume-guarantee mode's core
//! promise: on random multi-component programs, the compositional
//! verdict **and witness** equal the flat product verdict, check for
//! check, under every engine — and every obligation names the rule
//! that closed it.
//!
//! Components are generated with honest locality (component `i` writes
//! only its own variable, guards may read anything), so the full
//! discharge surface is exercised: existential lifts, universal lifts,
//! cone slices, and — whenever a guard couples components or a
//! property straddles them — the product fallback, whose verdicts are
//! flat verdicts by construction.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_mc::prelude::*;

const A: VarId = VarId(0);
const B: VarId = VarId(1);
const F: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    Arc::new(v)
}

/// Guards may read any variable — cross-component reads are what make
/// cone slices nontrivial and occasionally force the product.
fn arb_guard() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(tt()),
        Just(var(F)),
        Just(not(var(F))),
        (0i64..=2).prop_map(|k| lt(var(A), int(k))),
        (0i64..=2).prop_map(|k| eq(var(B), int(k))),
        (0i64..=2).prop_map(|k| ge(add(var(A), var(B)), int(k))),
    ]
}

/// Updates for the variable component `i` owns (locality: nobody else
/// writes it).
fn arb_update(own: VarId) -> impl Strategy<Value = Expr> {
    match own {
        A => prop_oneof![
            Just(add(var(A), int(1))),
            Just(sub(var(A), int(1))),
            Just(int(0)),
            Just(var(B)),
        ]
        .boxed(),
        B => prop_oneof![Just(add(var(B), int(1))), Just(var(A)), Just(int(2)),].boxed(),
        _ => prop_oneof![Just(not(var(F))), Just(tt()), Just(ff())].boxed(),
    }
}

/// A random component owning `own`: 1–2 commands, each writing only
/// `own`, with its own initial condition on `own`.
fn arb_component(name: &'static str, own: VarId, init: Expr) -> impl Strategy<Value = Program> {
    prop::collection::vec((arb_guard(), arb_update(own), any::<bool>()), 1..3).prop_map(
        move |cmds| {
            let mut builder = Program::builder(name, vocab())
                .local(own)
                .init(init.clone());
            for (i, (g, up, fair)) in cmds.into_iter().enumerate() {
                builder = if fair {
                    builder.fair_command(format!("{name}_c{i}"), g, vec![(own, up)])
                } else {
                    builder.command(format!("{name}_c{i}"), g, vec![(own, up)])
                };
            }
            builder.build().expect("pool commands are well-typed")
        },
    )
}

/// A random 2- or 3-component system with honest locality.
fn arb_system() -> impl Strategy<Value = System> {
    (
        arb_component("P", A, eq(var(A), int(0))),
        arb_component("Q", B, eq(var(B), int(0))),
        arb_component("R", F, not(var(F))),
        any::<bool>(),
    )
        .prop_map(|(p, q, r, third)| {
            let mut components = vec![p, q];
            if third {
                components.push(r);
            }
            System::compose(components, InitSatCheck::Exhaustive).expect("inits are satisfiable")
        })
}

/// A small pool of predicates.
fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..=2).prop_map(|k| eq(var(A), int(k))),
        (0i64..=2).prop_map(|k| le(var(B), int(k))),
        Just(var(F)),
        Just(and2(var(F), ge(var(A), int(1)))),
        (0i64..=4).prop_map(|k| eq(add(var(A), var(B)), int(k))),
        Just(or2(not(var(F)), eq(var(A), var(B)))),
    ]
}

/// One check of every property kind over random predicates — the full
/// row of the paper's §2 table, existential through neither.
fn arb_checks() -> impl Strategy<Value = Vec<NamedCheck>> {
    (arb_pred(), arb_pred()).prop_map(|(p, q)| {
        let props = [
            ("init", Property::Init(p.clone())),
            ("transient", Property::Transient(p.clone())),
            ("next", Property::Next(p.clone(), q.clone())),
            ("stable", Property::Stable(p.clone())),
            ("invariant", Property::Invariant(p.clone())),
            ("unchanged", Property::Unchanged(add(var(A), var(B)))),
            ("leadsto", Property::LeadsTo(p, q)),
        ];
        props
            .into_iter()
            .enumerate()
            .map(|(line, (name, property))| NamedCheck {
                name: name.to_string(),
                property,
                line,
            })
            .collect()
    })
}

const RULES: [&str; 4] = [
    "lift-existential",
    "lift-universal",
    "cone-of-influence",
    "product-fallback",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline equivalence: compositional ≡ flat, verdict and
    /// witness, on every engine — with every obligation carrying the
    /// name of the rule that closed it.
    #[test]
    fn compositional_equals_flat_on_every_engine(
        system in arb_system(), checks in arb_checks()
    ) {
        for engine in [Engine::Compiled, Engine::Reference, Engine::Symbolic] {
            let cfg = ScanConfig { engine, ..Default::default() };
            let (comp, stats) = Verifier::verify_compositional(
                &system, &checks, cfg.clone(), Universe::Reachable);
            let flat = Verifier::new(&system.composed, cfg)
                .with_universe(Universe::Reachable)
                .verify_all(&checks);
            prop_assert_eq!(stats.obligations, checks.len() as u64);
            for (c, f) in comp.checks.iter().zip(&flat.checks) {
                prop_assert_eq!(
                    &c.verdict.outcome, &f.verdict.outcome,
                    "{} under {:?}", c.name, engine
                );
                let d = c.verdict.discharge.as_ref();
                prop_assert!(d.is_some(), "{}: no provenance", c.name);
                let rule = d.unwrap().rule.as_str();
                prop_assert!(RULES.contains(&rule), "{}: unknown rule {rule}", c.name);
            }
        }
    }

    /// Same equivalence under the all-states inductive universe (the
    /// stabilization semantics), on the default engine.
    #[test]
    fn compositional_equals_flat_under_all_states(
        system in arb_system(), checks in arb_checks()
    ) {
        let cfg = ScanConfig::default();
        let (comp, _) = Verifier::verify_compositional(
            &system, &checks, cfg.clone(), Universe::AllStates);
        let flat = Verifier::new(&system.composed, cfg)
            .with_universe(Universe::AllStates)
            .verify_all(&checks);
        for (c, f) in comp.checks.iter().zip(&flat.checks) {
            prop_assert_eq!(
                &c.verdict.outcome, &f.verdict.outcome,
                "{}", c.name
            );
        }
    }

    /// Certificates must never change an answer: a second session
    /// seeded with the first session's store returns identical
    /// verdicts while re-running no component checks for cached
    /// obligations.
    #[test]
    fn seeded_certificates_preserve_verdicts(
        system in arb_system(), checks in arb_checks()
    ) {
        let cfg = ScanConfig::default();
        let mut first = CompositionalVerifier::new(&system, cfg.clone());
        let cold = first.verify_all(&checks);
        let mut store = unity_ag::cert::CertStore::new();
        for (k, pass) in first.certs().iter() {
            store.seed(k.clone(), pass);
        }
        let mut second = CompositionalVerifier::new(&system, cfg).with_certs(store);
        let warm = second.verify_all(&checks);
        prop_assert_eq!(second.stats().cert_misses, 0, "everything was seeded");
        for (c, w) in cold.checks.iter().zip(&warm.checks) {
            prop_assert_eq!(&c.verdict.outcome, &w.verdict.outcome, "{}", c.name);
        }
    }
}
