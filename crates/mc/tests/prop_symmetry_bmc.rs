//! Property-based cross-validation of the bounded checker ([`unity_mc::bmc`])
//! against the exact reachable checker, and of the symmetry quotient
//! ([`unity_mc::symmetry`]) against plain reachability — on *random
//! programs* (for BMC) and *randomly generated symmetric programs* (for
//! the quotient).

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::state::StateSpaceIter;
use unity_mc::prelude::*;
use unity_mc::symmetry::SymmetrySpec;

const A: VarId = VarId(0);
const B: VarId = VarId(1);
const F: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_guard() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(tt()),
        Just(var(F)),
        Just(not(var(F))),
        (0i64..=2).prop_map(|k| lt(var(A), int(k))),
        (0i64..=2).prop_map(|k| eq(var(B), int(k))),
    ]
}

fn arb_update() -> impl Strategy<Value = (VarId, Expr)> {
    prop_oneof![
        Just((A, add(var(A), int(1)))),
        Just((A, int(0))),
        Just((B, add(var(B), int(1)))),
        Just((B, var(A))),
        Just((F, not(var(F)))),
    ]
}

fn arb_program(name: &'static str) -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (arb_guard(), prop::collection::vec(arb_update(), 1..3)),
        1..4,
    )
    .prop_map(move |cmds| {
        let v = vocab();
        let mut builder = Program::builder(name, v).init(and(vec![
            eq(var(A), int(0)),
            eq(var(B), int(0)),
            not(var(F)),
        ]));
        for (i, (g, mut ups)) in cmds.into_iter().enumerate() {
            ups.sort_by_key(|(x, _)| *x);
            ups.dedup_by_key(|(x, _)| *x);
            builder = builder.fair_command(format!("{name}_c{i}"), g, ups);
        }
        builder.build().expect("pool commands are well-typed")
    })
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..=2).prop_map(|k| le(var(A), int(k))),
        (0i64..=2).prop_map(|k| lt(add(var(A), var(B)), int(k))),
        Just(not(var(F))),
        Just(or2(var(F), le(var(B), int(1)))),
    ]
}

/// Checks that `path` is a genuine execution of `prog`: starts in an
/// initial state, each adjacent pair is one command step, only the final
/// state violates `p`.
fn assert_real_violation(
    prog: &Program,
    p: &Expr,
    path: &[unity_core::state::State],
) -> Result<(), TestCaseError> {
    prop_assert!(!path.is_empty());
    prop_assert!(prog.satisfies_init(&path[0]), "path must start initial");
    for w in path.windows(2) {
        let ok = prog
            .commands
            .iter()
            .any(|c| c.step(&w[0], &prog.vocab) == w[1]);
        prop_assert!(ok, "path step is not a command step");
    }
    for s in &path[..path.len() - 1] {
        prop_assert!(eval_bool(p, s), "only the final state may violate");
    }
    prop_assert!(!eval_bool(p, path.last().unwrap()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive bounded BFS and the exact reachable checker must agree
    /// on every (program, predicate) pair; refutations must be genuine.
    #[test]
    fn bounded_bfs_agrees_with_exact_reachable(prog in arb_program("r"), p in arb_pred()) {
        let exact = check_invariant_reachable(&prog, &p, &ScanConfig::default());
        let bounded = bounded_invariant(&prog, &p, &BmcConfig::default());
        match (&exact, &bounded) {
            (Ok(()), Ok(v)) => prop_assert!(v.is_complete()),
            (Err(_), Err(McError::Refuted { cex: Counterexample::Reach { path }, .. })) => {
                assert_real_violation(&prog, &p, path)?;
            }
            other => prop_assert!(false, "verdicts diverge: {other:?}"),
        }
    }

    /// Random walks never refute a property the exact checker proves, and
    /// any refutation they do produce is a genuine execution.
    #[test]
    fn random_walks_are_sound(prog in arb_program("w"), p in arb_pred(), seed in any::<u64>()) {
        let cfg = BmcConfig { seed, walks: 16, walk_len: 64, ..Default::default() };
        match random_walk_invariant(&prog, &p, &cfg) {
            Ok(_) => {}
            Err(McError::Refuted { cex: Counterexample::Reach { path }, .. }) => {
                assert_real_violation(&prog, &p, &path)?;
                prop_assert!(
                    check_invariant_reachable(&prog, &p, &ScanConfig::default()).is_err(),
                    "walk refuted a true invariant"
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Symmetric-by-construction programs for quotient validation.
// ---------------------------------------------------------------------

/// Command templates over (own-block variable `x`, shared variable `s`).
#[derive(Debug, Clone, Copy)]
enum Template {
    /// `x < 2 -> x := x + 1, s := s + 1`
    IncBoth,
    /// `s == k -> x := 0`
    ResetOnShared(i64),
    /// `x == k -> s := x`
    PushToShared(i64),
    /// `true -> x := x + 1` (may saturate via skip semantics)
    IncOwn,
}

fn arb_template() -> impl Strategy<Value = Template> {
    prop_oneof![
        Just(Template::IncBoth),
        (0i64..=2).prop_map(Template::ResetOnShared),
        (0i64..=2).prop_map(Template::PushToShared),
        Just(Template::IncOwn),
    ]
}

/// Instantiates the templates for `n` interchangeable blocks over a fresh
/// vocabulary `x0..x_{n-1}, s` — symmetric by construction.
fn symmetric_program(templates: &[Template], n: usize) -> (Program, SymmetrySpec) {
    let mut v = Vocabulary::new();
    let xs: Vec<VarId> = (0..n)
        .map(|i| {
            v.declare(&format!("x{i}"), Domain::int_range(0, 2).unwrap())
                .unwrap()
        })
        .collect();
    let s = v.declare("s", Domain::int_range(0, 2).unwrap()).unwrap();
    let vocab = Arc::new(v);
    let mut init = eq(var(s), int(0));
    for &x in &xs {
        init = and2(init, eq(var(x), int(0)));
    }
    let mut b = Program::builder("sym", vocab.clone()).init(init);
    for (t_idx, t) in templates.iter().enumerate() {
        for (i, &x) in xs.iter().enumerate() {
            let (guard, ups): (Expr, Vec<(VarId, Expr)>) = match t {
                Template::IncBoth => (
                    lt(var(x), int(2)),
                    vec![(x, add(var(x), int(1))), (s, add(var(s), int(1)))],
                ),
                Template::ResetOnShared(k) => (eq(var(s), int(*k)), vec![(x, int(0))]),
                Template::PushToShared(k) => (eq(var(x), int(*k)), vec![(s, var(x))]),
                Template::IncOwn => (tt(), vec![(x, add(var(x), int(1)))]),
            };
            b = b.fair_command(format!("t{t_idx}_b{i}"), guard, ups);
        }
    }
    let p = b.build().expect("templates are well-typed");
    let spec = SymmetrySpec::new(xs.iter().map(|&x| vec![x]).collect(), &p.vocab).unwrap();
    (p, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Symmetric-by-construction programs pass validation, and the
    /// quotient's orbit arithmetic reproduces the plain reachable count.
    #[test]
    fn quotient_orbit_arithmetic_matches_reachability(
        templates in prop::collection::vec(arb_template(), 1..4),
        n in 2usize..4,
    ) {
        let (prog, spec) = symmetric_program(&templates, n);
        prop_assert!(spec.validate_program(&prog, 256, 3).is_ok());
        // A symmetric, trivially-true predicate to drive the exploration.
        let stats = check_invariant_symmetric(&prog, &tt(), &spec, 1 << 20).unwrap();
        let ts = TransitionSystem::build(&prog, Universe::Reachable, &ScanConfig::default())
            .unwrap();
        prop_assert_eq!(stats.full_states, ts.len() as u128);
        // Distinct canonical forms of the reachable set = quotient size.
        let mut canon = std::collections::BTreeSet::new();
        ts.for_each_state(|_, s| {
            canon.insert(spec.canonicalize(s));
        });
        prop_assert_eq!(canon.len(), stats.quotient_states);
    }

    /// Canonicalization is an idempotent retraction constant on orbits,
    /// and orbit sizes count distinct permutation images.
    #[test]
    fn canonicalization_laws(
        templates in prop::collection::vec(arb_template(), 1..3),
        n in 2usize..4,
    ) {
        let (prog, spec) = symmetric_program(&templates, n);
        for s in StateSpaceIter::new(&prog.vocab) {
            let c = spec.canonicalize(&s);
            prop_assert_eq!(spec.canonicalize(&c), c.clone(), "idempotent");
            // Constant on the orbit: swapping any adjacent pair first
            // does not change the representative.
            for b in 0..n - 1 {
                let t = spec.swap_adjacent(&s, b);
                prop_assert_eq!(spec.canonicalize(&t), c.clone(), "orbit-constant");
            }
            // Orbit size counts distinct images over all permutations
            // (n ≤ 3 here, so enumerate them directly).
            let perms: Vec<Vec<usize>> = match n {
                2 => vec![vec![0, 1], vec![1, 0]],
                3 => vec![
                    vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2],
                    vec![1, 2, 0], vec![2, 0, 1], vec![2, 1, 0],
                ],
                _ => unreachable!(),
            };
            let distinct: std::collections::BTreeSet<_> =
                perms.iter().map(|perm| spec.apply(&s, perm)).collect();
            prop_assert_eq!(spec.orbit_size(&s), distinct.len() as u128);
        }
    }
}
