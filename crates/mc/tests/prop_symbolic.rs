//! Differential tests of the symbolic BDD engine: on random small
//! programs, every safety verdict and the reachable-state count must be
//! **identical** under `Engine::Symbolic` and the compiled explicit
//! engine (which the existing `prop_compiled_scan.rs` suite already
//! pins against the tree-walking reference). Additionally, every
//! symbolic counterexample must be accepted as a genuine violation by
//! the reference evaluator — symbolic witnesses are replayable facts,
//! not artifacts of the encoding.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_mc::trace::Counterexample;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const B: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        Just(tt()),
        Just(var(B)),
        (0i64..=3).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        (0i64..=5).prop_map(|k| lt(add(var(X), var(Y)), int(k))),
        (0i64..=3).prop_map(|k| eq(rem(add(var(X), var(Y)), int(2)), int(k % 2))),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| implies(a, b)),
        ]
    })
}

/// Small random programs over the fixed vocabulary (the
/// `prop_compiled_scan.rs` generator, reused so all three engines are
/// exercised on the same program distribution).
fn arb_program() -> impl Strategy<Value = Program> {
    (arb_pred(), 0i64..=2, 1i64..=2, any::<bool>(), arb_pred()).prop_map(
        |(guard1, y0, dx, fair2, guard2)| {
            let v = vocab();
            let builder = Program::builder("rand", v)
                .init(and2(eq(var(X), int(0)), eq(var(Y), int(y0))))
                .fair_command(
                    "cx",
                    and2(guard1, lt(var(X), int(3))),
                    vec![(X, add(var(X), int(dx)))],
                );
            let cy_updates = vec![(Y, rem(add(var(Y), int(1)), int(3))), (B, not(var(B)))];
            let builder = if fair2 {
                builder.fair_command("cy", guard2, cy_updates)
            } else {
                builder.command("cy", guard2, cy_updates)
            };
            builder.build().unwrap()
        },
    )
}

/// Replays a symbolic counterexample on the reference evaluator: the
/// witness must genuinely violate the property it refutes.
fn assert_genuine(program: &Program, prop: &Property, cex: &Counterexample) {
    let vocab = &program.vocab;
    match (prop, cex) {
        (Property::Init(p), Counterexample::Init { state }) => {
            assert!(state.in_domains(vocab), "witness is type-consistent");
            assert!(program.satisfies_init(state), "witness satisfies init");
            assert!(!eval_bool(p, state), "witness falsifies p");
        }
        (Property::Invariant(p), Counterexample::Init { state }) => {
            assert!(program.satisfies_init(state) && !eval_bool(p, state));
        }
        (
            Property::Stable(p) | Property::Invariant(p),
            Counterexample::Next {
                state,
                command,
                after,
            },
        ) => {
            assert!(state.in_domains(vocab));
            assert!(eval_bool(p, state), "pre-state satisfies p");
            assert!(!eval_bool(p, after), "post-state violates p");
            let cmd = command.as_ref().expect("stable violations step a command");
            let c = program
                .commands
                .iter()
                .find(|c| &c.name == cmd)
                .expect("named command exists");
            assert_eq!(&c.step(state, vocab), after, "step replays");
        }
        (
            Property::Next(p, q),
            Counterexample::Next {
                state,
                command,
                after,
            },
        ) => {
            assert!(eval_bool(p, state));
            assert!(!eval_bool(q, after));
            match command {
                None => assert_eq!(state, after, "skip violation stays put"),
                Some(name) => {
                    let c = program.commands.iter().find(|c| &c.name == name).unwrap();
                    assert_eq!(&c.step(state, vocab), after);
                }
            }
        }
        (Property::Transient(p), Counterexample::Transient { witnesses }) => {
            assert_eq!(
                witnesses.len(),
                program.fair.len(),
                "one stuck witness per fair command"
            );
            for (name, state) in witnesses {
                let c = program.commands.iter().find(|c| &c.name == name).unwrap();
                assert!(eval_bool(p, state), "stuck witness satisfies p");
                assert!(
                    eval_bool(p, &c.step(state, vocab)),
                    "command leaves the witness inside p"
                );
            }
        }
        (Property::Unchanged(e), Counterexample::Unchanged { state, command, .. }) => {
            let c = program
                .commands
                .iter()
                .find(|c| &c.name == command)
                .unwrap();
            let after = c.step(state, vocab);
            assert_ne!(
                unity_core::expr::eval::eval(e, state),
                unity_core::expr::eval::eval(e, &after),
                "command really changes the expression"
            );
        }
        (prop, cex) => panic!("unexpected counterexample shape for {prop:?}: {cex:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Symbolic verdicts ≡ compiled verdicts on every safety property,
    /// and every symbolic counterexample replays on the reference
    /// semantics.
    #[test]
    fn safety_verdicts_agree_and_witnesses_replay(
        prog in arb_program(), p in arb_pred(), q in arb_pred()
    ) {
        let symbolic = ScanConfig::symbolic();
        let explicit = ScanConfig::default();
        for prop in [
            Property::Init(p.clone()),
            Property::Stable(p.clone()),
            Property::Invariant(p.clone()),
            Property::Next(p.clone(), q.clone()),
            Property::Transient(p.clone()),
            Property::Unchanged(add(var(X), var(Y))),
            Property::Unchanged(var(B)),
        ] {
            let s = check_property(&prog, &prop, Universe::AllStates, &symbolic);
            let e = check_property(&prog, &prop, Universe::AllStates, &explicit);
            prop_assert_eq!(
                s.is_ok(), e.is_ok(),
                "engines disagree on {:?}: {:?} vs {:?}", prop, s, e
            );
            if let Err(McError::Refuted { cex, .. }) = &s {
                assert_genuine(&prog, &prop, cex);
            }
        }
    }

    /// The symbolic reachable-state count equals the explicit
    /// transition system's state count.
    #[test]
    fn reachable_counts_agree(prog in arb_program()) {
        let sym = reachable_count(&prog).expect("vocabulary fits");
        let ts = TransitionSystem::build(&prog, Universe::Reachable, &ScanConfig::default())
            .unwrap();
        prop_assert_eq!(sym, ts.len() as u128);
    }

    /// Validity / satisfiability / equivalence side conditions agree.
    #[test]
    fn side_conditions_agree(p in arb_pred(), q in arb_pred()) {
        let v = vocab();
        let symbolic = ScanConfig::symbolic();
        let explicit = ScanConfig::default();
        prop_assert_eq!(
            check_valid(&v, &p, &symbolic).is_ok(),
            check_valid(&v, &p, &explicit).is_ok()
        );
        prop_assert_eq!(
            find_satisfying(&v, &p, &symbolic).unwrap().is_some(),
            find_satisfying(&v, &p, &explicit).unwrap().is_some()
        );
        prop_assert_eq!(
            check_equivalent(&v, &p, &q, &symbolic).is_ok(),
            check_equivalent(&v, &p, &q, &explicit).is_ok()
        );
        // A symbolic validity witness falsifies the predicate for real.
        if let Err(McError::Refuted { cex: Counterexample::Validity { state }, .. }) =
            check_valid(&v, &p, &symbolic)
        {
            prop_assert!(!eval_bool(&p, &state));
            prop_assert!(state.in_domains(&v));
        }
    }
}

/// Fixed regression: the paper's two systems under the symbolic engine.
#[test]
fn paper_systems_check_symbolically() {
    use unity_systems::priority::PrioritySystem;
    use unity_systems::toy_counter::{toy_system, ToySpec};
    let symbolic = ScanConfig::symbolic();
    for n in [2usize, 3] {
        let toy = toy_system(ToySpec::new(n, 2)).unwrap();
        check_property(
            &toy.system.composed,
            &toy.system_invariant(),
            Universe::AllStates,
            &symbolic,
        )
        .unwrap();
        check_property(
            &toy.system.components[0],
            &toy.spec_unchanged(0),
            Universe::AllStates,
            &symbolic,
        )
        .unwrap();
    }
    let sys = PrioritySystem::new(Arc::new(prio_graph::topology::ring(4))).unwrap();
    check_property(
        &sys.system.composed,
        &sys.safety_invariant(),
        Universe::AllStates,
        &symbolic,
    )
    .unwrap();
    // Reachable-set parity on the ring.
    let sym = reachable_count(&sys.system.composed).unwrap();
    let ts = TransitionSystem::build(
        &sys.system.composed,
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .unwrap();
    assert_eq!(sym, ts.len() as u128);
}

/// The invariant-counterexample parity bar from the issue: when
/// `invariant` fails symbolically, the decoded witness state must be
/// accepted as a genuine violation by the reference evaluator.
#[test]
fn symbolic_invariant_witness_is_a_genuine_violation() {
    use unity_systems::toy_counter::{toy_system_broken, ToySpec};
    let broken = toy_system_broken(ToySpec::new(2, 2), 1).unwrap();
    let program = &broken.system.composed;
    let Property::Invariant(inv) = broken.system_invariant() else {
        panic!("system invariant is an invariant");
    };
    let err = check_invariant(program, &inv, &ScanConfig::symbolic()).unwrap_err();
    let McError::Refuted { cex, .. } = err else {
        panic!("expected refutation");
    };
    assert_genuine(program, &Property::Invariant(inv.clone()), &cex);
    // And the explicit engine refutes it too.
    assert!(check_invariant(program, &inv, &ScanConfig::default()).is_err());
}
