//! Property-based tests of the model checker on *random programs*:
//! symbolic/operational agreement, soundness of the paper's
//! existential/universal classification (checked semantically under
//! composition), and the Transient rule's soundness against the exact fair
//! `leadsto` checker.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_mc::prelude::*;

const A: VarId = VarId(0);
const B: VarId = VarId(1);
const F: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    Arc::new(v)
}

/// Small pool of guards.
fn arb_guard() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(tt()),
        Just(var(F)),
        Just(not(var(F))),
        (0i64..=2).prop_map(|k| lt(var(A), int(k))),
        (0i64..=2).prop_map(|k| eq(var(B), int(k))),
        (0i64..=2).prop_map(|k| ge(add(var(A), var(B)), int(k))),
    ]
}

/// Small pool of updates (target, rhs).
fn arb_update() -> impl Strategy<Value = (VarId, Expr)> {
    prop_oneof![
        Just((A, add(var(A), int(1)))),
        Just((A, sub(var(A), int(1)))),
        Just((A, int(0))),
        Just((B, add(var(B), int(1)))),
        Just((B, var(A))),
        Just((F, not(var(F)))),
        Just((F, tt())),
        Just((F, ff())),
    ]
}

/// A random command as (guard, updates-with-distinct-targets, fair?).
fn arb_command() -> impl Strategy<Value = (Expr, Vec<(VarId, Expr)>, bool)> {
    (
        arb_guard(),
        prop::collection::vec(arb_update(), 1..3),
        any::<bool>(),
    )
        .prop_map(|(g, mut ups, fair)| {
            ups.sort_by_key(|(x, _)| *x);
            ups.dedup_by_key(|(x, _)| *x);
            (g, ups, fair)
        })
}

/// A random program over the shared vocabulary (init = all minimums).
fn arb_program(name: &'static str) -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_command(), 1..4).prop_map(move |cmds| {
        let v = vocab();
        let mut builder = Program::builder(name, v).init(and(vec![
            eq(var(A), int(0)),
            eq(var(B), int(0)),
            not(var(F)),
        ]));
        for (i, (g, ups, fair)) in cmds.into_iter().enumerate() {
            builder = if fair {
                builder.fair_command(format!("{name}_c{i}"), g, ups)
            } else {
                builder.command(format!("{name}_c{i}"), g, ups)
            };
        }
        builder.build().expect("pool commands are well-typed")
    })
}

/// A small pool of predicates to check.
fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..=2).prop_map(|k| eq(var(A), int(k))),
        (0i64..=2).prop_map(|k| le(var(B), int(k))),
        Just(var(F)),
        Just(and2(var(F), ge(var(A), int(1)))),
        (0i64..=4).prop_map(|k| eq(add(var(A), var(B)), int(k))),
        Just(or2(not(var(F)), eq(var(A), var(B)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn operational_next_equals_wp_next(prog in arb_program("r"), p in arb_pred(), q in arb_pred()) {
        let cfg = ScanConfig::default();
        let op = check_next(&prog, &p, &q, &cfg).is_ok();
        let sym = check_next_wp(&prog, &p, &q, &cfg).is_ok();
        prop_assert_eq!(op, sym);
    }

    #[test]
    fn stable_conjunction_is_universal_wrt_composition(
        f in arb_program("f"), g in arb_program("g"), p in arb_pred()
    ) {
        // The paper's classification, checked semantically: stable is a
        // universal property type — if both components satisfy it, the
        // composition does.
        let cfg = ScanConfig::default();
        let f_ok = check_stable(&f, &p, &cfg).is_ok();
        let g_ok = check_stable(&g, &p, &cfg).is_ok();
        let sys = System::compose(vec![f.clone(), g.clone()], InitSatCheck::Skip).unwrap();
        let both = check_stable(&sys.composed, &p, &cfg).is_ok();
        if f_ok && g_ok {
            prop_assert!(both, "stable must lift universally");
        }
        if both {
            // Conversely the composition satisfying it forces both
            // components (their commands are a subset).
            prop_assert!(f_ok && g_ok);
        }
    }

    #[test]
    fn transient_is_existential_wrt_composition(
        f in arb_program("f"), g in arb_program("g"), p in arb_pred()
    ) {
        let cfg = ScanConfig::default();
        let f_ok = check_transient(&f, &p, &cfg).is_ok();
        let g_ok = check_transient(&g, &p, &cfg).is_ok();
        let sys = System::compose(vec![f.clone(), g.clone()], InitSatCheck::Skip).unwrap();
        let composed = check_transient(&sys.composed, &p, &cfg).is_ok();
        if f_ok || g_ok {
            prop_assert!(composed, "transient must lift existentially");
        }
    }

    #[test]
    fn init_is_existential_wrt_composition(
        f in arb_program("f"), g in arb_program("g"), p in arb_pred()
    ) {
        let cfg = ScanConfig::default();
        let f_ok = check_init(&f, &p, &cfg).is_ok();
        let sys = System::compose(vec![f.clone(), g.clone()], InitSatCheck::Skip).unwrap();
        if f_ok {
            prop_assert!(
                check_init(&sys.composed, &p, &cfg).is_ok(),
                "init must survive composition (conjoined initially)"
            );
        }
    }

    #[test]
    fn transient_rule_sound_for_fair_leadsto(prog in arb_program("t"), p in arb_pred()) {
        // transient p ⊢ true ↦ ¬p — the kernel's Transient rule must be
        // sound for the exact fair checker, in both universes.
        let cfg = ScanConfig::default();
        if check_transient(&prog, &p, &cfg).is_ok() {
            for universe in [Universe::Reachable, Universe::AllStates] {
                let lt = check_leadsto(&prog, &tt(), &not(p.clone()), universe, &cfg);
                prop_assert!(lt.is_ok(), "transient held but leadsto refuted ({universe:?})");
            }
        }
    }

    #[test]
    fn invariant_inductive_implies_reachable(prog in arb_program("i"), p in arb_pred()) {
        let cfg = ScanConfig::default();
        if check_invariant(&prog, &p, &cfg).is_ok() {
            prop_assert!(check_invariant_reachable(&prog, &p, &cfg).is_ok());
        }
    }

    #[test]
    fn leadsto_monotone_in_target(prog in arb_program("m"), p in arb_pred()) {
        // p ↦ p trivially (already-there); and anything leads to `true`.
        let cfg = ScanConfig::default();
        prop_assert!(
            check_leadsto(&prog, &p, &p, Universe::Reachable, &cfg).is_ok()
        );
        prop_assert!(
            check_leadsto(&prog, &p, &tt(), Universe::Reachable, &cfg).is_ok()
        );
    }

    #[test]
    fn parallel_and_sequential_checks_agree(prog in arb_program("p"), p in arb_pred()) {
        let seq = ScanConfig {
            par: ParConfig::sequential(),
            ..Default::default()
        };
        let par = ScanConfig {
            par: ParConfig::with_threads(4),
            ..Default::default()
        };
        prop_assert_eq!(
            check_stable(&prog, &p, &seq).is_ok(),
            check_stable(&prog, &p, &par).is_ok()
        );
        prop_assert_eq!(
            check_transient(&prog, &p, &seq).is_ok(),
            check_transient(&prog, &p, &par).is_ok()
        );
    }
}
