//! Property-based validation of the graph substrate on *random* graphs —
//! the probabilistic companion to the exhaustive small-graph checks in the
//! unit tests. Together these discharge the paper's "from graph theory"
//! citations for Lemmas 1 and 2.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use prio_graph::acyclic::{is_acyclic, is_acyclic_by_closure, topological_order};
use prio_graph::closure::{
    all_reach_sets, duality_holds, priority_characterization_holds, reach_sets_naive,
};
use prio_graph::derive::{derive, derives_through, lemma1_holds};
use prio_graph::maximal::{lemma2_holds, maximal_above};
use prio_graph::orientation::Orientation;
use prio_graph::topology::connected_random;

/// A random connected conflict graph with up to 10 nodes plus a random
/// orientation of its edges.
fn arb_oriented() -> impl Strategy<Value = Orientation> {
    (2usize..10, 0.0f64..0.5, any::<u64>(), any::<u64>()).prop_map(|(n, p, seed, bits)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(connected_random(n, p, &mut rng));
        let mask = if g.edge_count() == 0 {
            0
        } else {
            bits & ((1u64 << g.edge_count().min(63)) - 1)
        };
        Orientation::from_bits(g, mask)
    })
}

/// A random connected graph with an *acyclic* orientation (random
/// permutation order).
fn arb_acyclic() -> impl Strategy<Value = Orientation> {
    (2usize..10, 0.0f64..0.5, any::<u64>(), any::<u64>()).prop_map(|(n, p, seed, perm_seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(connected_random(n, p, &mut rng));
        // Random node ranking; orient every edge from lower rank to higher.
        let mut rank: Vec<usize> = (0..n).collect();
        let mut prng = StdRng::seed_from_u64(perm_seed);
        use rand::seq::SliceRandom;
        rank.shuffle(&mut prng);
        let mut o = Orientation::index_order(g.clone());
        for &(u, v) in g.edges() {
            if rank[u] < rank[v] {
                o.set_points(u, v);
            } else {
                o.set_points(v, u);
            }
        }
        o
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bfs_closure_matches_naive(o in arb_oriented()) {
        prop_assert_eq!(all_reach_sets(&o), reach_sets_naive(&o));
    }

    #[test]
    fn duality_and_priority_characterization(o in arb_oriented()) {
        // The paper's (19) and (20) on random graphs.
        prop_assert!(duality_holds(&o));
        prop_assert!(priority_characterization_holds(&o));
    }

    #[test]
    fn kahn_agrees_with_closure_acyclicity(o in arb_oriented()) {
        prop_assert_eq!(is_acyclic(&o), is_acyclic_by_closure(&o));
    }

    #[test]
    fn rank_orientations_are_acyclic(o in arb_acyclic()) {
        prop_assert!(is_acyclic(&o));
        let order = topological_order(&o).expect("acyclic has topo order");
        let mut pos = vec![0usize; o.node_count()];
        for (k, &v) in order.iter().enumerate() {
            pos[v] = k;
        }
        for &(u, v) in o.graph().edges() {
            let (hi, lo) = if o.points(u, v) { (u, v) } else { (v, u) };
            prop_assert!(pos[hi] < pos[lo]);
        }
    }

    #[test]
    fn lemma1_on_random_derivations(o in arb_oriented()) {
        for i0 in 0..o.node_count() {
            if let Some(derived) = derive(&o, i0) {
                prop_assert!(derives_through(&o, &derived, i0));
                prop_assert!(lemma1_holds(&o, &derived, i0));
            }
        }
    }

    #[test]
    fn derivations_preserve_acyclicity(o in arb_acyclic()) {
        // Property 5's graph-theoretic core on random acyclic graphs.
        for i0 in 0..o.node_count() {
            if let Some(derived) = derive(&o, i0) {
                prop_assert!(is_acyclic(&derived), "yield through {i0} made a cycle");
            }
        }
    }

    #[test]
    fn lemma2_on_random_acyclic(o in arb_acyclic()) {
        prop_assert!(lemma2_holds(&o));
        for i in 0..o.node_count() {
            if let Some(j) = maximal_above(&o, i) {
                prop_assert!(o.priority(j), "maximal node must hold priority");
            }
        }
    }

    #[test]
    fn acyclic_graph_has_a_priority_node(o in arb_acyclic()) {
        // The paper: "there is always a node which has the priority".
        prop_assert!(!o.priority_nodes().is_empty());
    }

    #[test]
    fn repeated_yields_visit_every_node(seed in any::<u64>(), n in 3usize..8) {
        // Deterministic greedy run: always yield the lowest priority
        // holder; within a bounded number of rounds every node must have
        // held priority at least once (the liveness shape, graph-level).
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(connected_random(n, 0.3, &mut rng));
        let mut o = Orientation::index_order(g);
        let mut seen = vec![false; n];
        for _ in 0..(n * n * 4) {
            let holders = o.priority_nodes();
            prop_assert!(!holders.is_empty());
            for &h in &holders {
                seen[h] = true;
            }
            let &pick = holders.first().expect("nonempty");
            o.yield_node(pick);
        }
        prop_assert!(seen.iter().all(|&s| s), "some node never got priority: {seen:?}");
    }
}

#[test]
fn exhaustive_all_graphs_n4_lemmas() {
    // Every orientation of every graph on 4 nodes: Lemma 1, Lemma 2,
    // duality, acyclicity agreement. (~64 graphs × ≤64 orientations.)
    for g in prio_graph::topology::all_graphs(4) {
        let g = Arc::new(g);
        for o in Orientation::enumerate(&g) {
            assert!(duality_holds(&o));
            assert!(priority_characterization_holds(&o));
            assert_eq!(is_acyclic(&o), is_acyclic_by_closure(&o));
            if is_acyclic(&o) {
                assert!(lemma2_holds(&o));
            }
            for i0 in 0..4 {
                if let Some(d) = derive(&o, i0) {
                    assert!(lemma1_holds(&o, &d, i0));
                    if is_acyclic(&o) {
                        assert!(is_acyclic(&d));
                    }
                }
            }
        }
    }
}
