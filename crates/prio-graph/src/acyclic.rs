//! Acyclicity (paper §4.4): `Acyclicity ≝ ⟨∀i :: i ∉ R*(i)⟩`.

use crate::closure::reach_set;
use crate::orientation::Orientation;

/// Whether the orientation is acyclic, decided by Kahn's algorithm
/// (O(n + m)).
pub fn is_acyclic(o: &Orientation) -> bool {
    topological_order(o).is_some()
}

/// Whether the orientation is acyclic, decided by the paper's definition
/// `⟨∀i :: i ∉ R*(i)⟩`. Reference implementation for cross-checks.
pub fn is_acyclic_by_closure(o: &Orientation) -> bool {
    (0..o.node_count()).all(|i| !reach_set(o, i).contains(i))
}

/// A topological order of the priority DAG (`i` before `j` whenever
/// `i → j`), or `None` if the orientation has a cycle.
pub fn topological_order(o: &Orientation) -> Option<Vec<usize>> {
    let n = o.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| o.a_set(i).len()).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        order.push(u);
        for v in o.r_set(u).iter() {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Nodes with no incoming priority edge — by the paper's (20) these are
/// exactly the `Priority` holders. In a non-empty acyclic finite graph at
/// least one exists ("there is always a node which has the priority").
pub fn sources(o: &Orientation) -> Vec<usize> {
    (0..o.node_count())
        .filter(|&i| o.a_set(i).is_empty())
        .collect()
}

/// Nodes with no outgoing priority edge (globally lowest priority).
pub fn sinks(o: &Orientation) -> Vec<usize> {
    (0..o.node_count())
        .filter(|&i| o.r_set(i).is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConflictGraph;
    use std::sync::Arc;

    fn ring5() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap())
    }

    #[test]
    fn index_order_is_acyclic() {
        let o = Orientation::index_order(ring5());
        assert!(is_acyclic(&o));
        assert!(is_acyclic_by_closure(&o));
        let order = topological_order(&o).unwrap();
        // Order respects edges.
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (k, &v) in order.iter().enumerate() {
                p[v] = k;
            }
            p
        };
        for &(u, v) in o.graph().edges() {
            let (hi, lo) = if o.points(u, v) { (u, v) } else { (v, u) };
            assert!(pos[hi] < pos[lo], "{hi} → {lo} must order before");
        }
    }

    #[test]
    fn directed_ring_is_cyclic() {
        let g = ring5();
        let mut o = Orientation::index_order(g);
        // Make 0→1→2→3→4→0.
        o.set_points(4, 0);
        assert!(!is_acyclic(&o));
        assert!(!is_acyclic_by_closure(&o));
        assert!(topological_order(&o).is_none());
        assert!(sources(&o).is_empty());
    }

    #[test]
    fn kahn_matches_closure_exhaustively() {
        let g = ring5();
        for o in Orientation::enumerate(&g) {
            assert_eq!(is_acyclic(&o), is_acyclic_by_closure(&o));
        }
    }

    #[test]
    fn acyclic_nonempty_graph_has_source_and_sink() {
        let g = ring5();
        for o in Orientation::enumerate(&g) {
            if is_acyclic(&o) {
                assert!(!sources(&o).is_empty(), "acyclic ⇒ some priority node");
                assert!(!sinks(&o).is_empty());
                // Sources are exactly the priority nodes (paper (20)).
                assert_eq!(sources(&o), o.priority_nodes());
            }
        }
    }

    #[test]
    fn isolated_nodes_are_sources_and_sinks() {
        let g = Arc::new(ConflictGraph::new(3));
        let o = Orientation::index_order(g);
        assert!(is_acyclic(&o));
        assert_eq!(sources(&o), vec![0, 1, 2]);
        assert_eq!(sinks(&o), vec![0, 1, 2]);
    }
}
