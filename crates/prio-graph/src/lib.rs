//! # prio-graph
//!
//! The graph substrate of the paper's §4 priority mechanism: undirected
//! conflict graphs, edge orientations (the priority relation `→`), the
//! reachability closures `R*`/`A*`, acyclicity, Definition 1 (derivation
//! through a node) with Lemma 1, and Lemma 2 (maximal nodes) — all as
//! executable, exhaustively-tested functions.
//!
//! The paper takes Lemmas 1 and 2 "from graph theory"; this crate is the
//! substitute substrate: the lemmas are implemented and validated by
//! exhaustive enumeration over all orientations of all small graphs plus
//! property-based tests on random larger ones (see `tests/` and the E5
//! bench).
//!
//! ```
//! use std::sync::Arc;
//! use prio_graph::prelude::*;
//!
//! let ring = Arc::new(topology::ring(5));
//! let mut orientation = Orientation::index_order(ring);
//! assert!(is_acyclic(&orientation));
//! assert!(orientation.priority(0));
//! orientation.yield_node(0);           // node 0 yields to its neighbours
//! assert!(is_acyclic(&orientation));   // Property 5: acyclicity preserved
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acyclic;
pub mod bitset;
pub mod closure;
pub mod derive;
pub mod graph;
pub mod maximal;
pub mod orientation;
pub mod paths;
pub mod topology;

/// Commonly used items.
pub mod prelude {
    pub use crate::acyclic::{
        is_acyclic, is_acyclic_by_closure, sinks, sources, topological_order,
    };
    pub use crate::bitset::BitSet;
    pub use crate::closure::{
        above_set, all_above_sets, all_reach_sets, duality_holds, priority_characterization_holds,
        reach_set,
    };
    pub use crate::derive::{derive, derives_through, is_legal_step, lemma1_holds};
    pub use crate::graph::{ConflictGraph, GraphError};
    pub use crate::maximal::{above_cardinality, lemma2_holds, maximal_above};
    pub use crate::orientation::Orientation;
    pub use crate::paths::{simple_cycles, simple_paths};
    pub use crate::topology::{self, Topology};
}
