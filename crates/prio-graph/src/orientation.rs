//! Edge orientations of a conflict graph (the priority relation `→`).
//!
//! `i → j` means *component `i` has priority over component `j`* (paper
//! §4.2). Exactly one of `i → j`, `j → i` holds for every conflict edge —
//! the paper's implementation invariant
//! `⟨∀i,j : j ∈ N(i) : (i → j) ⇎ (j → i)⟩` is guaranteed by construction
//! here: each edge carries a single direction bit.

use std::sync::Arc;

use crate::bitset::BitSet;
use crate::graph::ConflictGraph;

/// An orientation of every edge of a conflict graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Orientation {
    graph: Arc<ConflictGraph>,
    /// `dir[e] == true` ⇔ the edge points from its lower endpoint to its
    /// higher endpoint (`u → v` for the stored `(u, v)` with `u < v`).
    dir: Vec<bool>,
}

impl Orientation {
    /// All edges oriented from lower to higher node index — always acyclic
    /// (node order is a topological order), a convenient initial priority
    /// assignment.
    pub fn index_order(graph: Arc<ConflictGraph>) -> Self {
        let m = graph.edge_count();
        Orientation {
            graph,
            dir: vec![true; m],
        }
    }

    /// Builds from an explicit direction-bit vector (bit per edge id).
    pub fn from_bits(graph: Arc<ConflictGraph>, bits: u64) -> Self {
        let m = graph.edge_count();
        assert!(m <= 64, "from_bits supports at most 64 edges");
        Orientation {
            graph,
            dir: (0..m).map(|e| bits >> e & 1 == 1).collect(),
        }
    }

    /// Direction bits as a `u64` (inverse of [`Orientation::from_bits`]).
    pub fn to_bits(&self) -> u64 {
        assert!(self.dir.len() <= 64);
        self.dir
            .iter()
            .enumerate()
            .fold(0u64, |acc, (e, &d)| acc | (u64::from(d) << e))
    }

    /// Enumerates all `2^m` orientations of `graph` (requires `m ≤ 63`).
    pub fn enumerate(graph: &Arc<ConflictGraph>) -> impl Iterator<Item = Orientation> + '_ {
        let m = graph.edge_count();
        assert!(m <= 63, "enumerate supports at most 63 edges");
        (0u64..(1u64 << m)).map(move |bits| Orientation::from_bits(graph.clone(), bits))
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        &self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether `i → j` (requires `i ~ j`).
    pub fn points(&self, i: usize, j: usize) -> bool {
        let e = self
            .graph
            .edge_id(i, j)
            .expect("points() requires a conflict edge");
        let (u, _v) = self.graph.endpoints(e);
        if i == u {
            self.dir[e as usize]
        } else {
            !self.dir[e as usize]
        }
    }

    /// Orients the edge so that `i → j`.
    pub fn set_points(&mut self, i: usize, j: usize) {
        let e = self
            .graph
            .edge_id(i, j)
            .expect("set_points() requires a conflict edge");
        let (u, _v) = self.graph.endpoints(e);
        self.dir[e as usize] = i == u;
    }

    /// The paper's `R(i) = { j ∈ N(i) : i → j }` (nodes `i` has priority
    /// over).
    pub fn r_set(&self, i: usize) -> BitSet {
        let mut out = BitSet::new(self.node_count());
        for j in self.graph.neighbors(i).iter() {
            if self.points(i, j) {
                out.insert(j);
            }
        }
        out
    }

    /// The paper's `A(i) = { j ∈ N(i) : j → i }` (nodes with priority over
    /// `i`).
    pub fn a_set(&self, i: usize) -> BitSet {
        let mut out = BitSet::new(self.node_count());
        for j in self.graph.neighbors(i).iter() {
            if !self.points(i, j) {
                out.insert(j);
            }
        }
        out
    }

    /// The paper's `Priority(i) ≝ ⟨∀j : j ∈ N(i) : i → j⟩`.
    pub fn priority(&self, i: usize) -> bool {
        self.graph.neighbors(i).iter().all(|j| self.points(i, j))
    }

    /// Nodes currently holding priority.
    pub fn priority_nodes(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&i| self.priority(i))
            .collect()
    }

    /// Reverses every edge incident to `i` so that all of them point
    /// *toward* `i` (the yielding move: `i` becomes lower-priority than all
    /// its neighbours). This is the graph effect of the paper's component
    /// action; see [`crate::derive`] for the derivation relation.
    pub fn yield_node(&mut self, i: usize) {
        let graph = self.graph.clone();
        for j in graph.neighbors(i).iter() {
            self.set_points(j, i);
        }
    }

    /// Per-edge direction bits (edge id order).
    pub fn direction_bits(&self) -> &[bool] {
        &self.dir
    }

    /// Checks the paper's antisymmetry invariant
    /// `(i → j) ⇎ (j → i)` for every edge. Trivially true by
    /// representation; exercised by property tests.
    pub fn check_antisymmetry(&self) -> bool {
        self.graph
            .edges()
            .iter()
            .all(|&(u, v)| self.points(u, v) != self.points(v, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap())
    }

    #[test]
    fn index_order_orients_down() {
        let o = Orientation::index_order(triangle());
        assert!(o.points(0, 1));
        assert!(o.points(1, 2));
        assert!(o.points(0, 2));
        assert!(!o.points(2, 0));
        assert!(o.check_antisymmetry());
        assert!(o.priority(0));
        assert!(!o.priority(1));
        assert_eq!(o.priority_nodes(), vec![0]);
    }

    #[test]
    fn r_and_a_sets() {
        let o = Orientation::index_order(triangle());
        assert_eq!(o.r_set(0).to_vec(), vec![1, 2]);
        assert!(o.a_set(0).is_empty());
        assert_eq!(o.a_set(2).to_vec(), vec![0, 1]);
        assert_eq!(o.r_set(1).to_vec(), vec![2]);
        assert_eq!(o.a_set(1).to_vec(), vec![0]);
    }

    #[test]
    fn yield_reverses_incident_edges() {
        let mut o = Orientation::index_order(triangle());
        o.yield_node(0);
        assert!(o.points(1, 0));
        assert!(o.points(2, 0));
        // Edge 1-2 untouched.
        assert!(o.points(1, 2));
        assert!(!o.priority(0));
        assert!(o.priority(1));
    }

    #[test]
    fn bits_roundtrip() {
        let g = triangle();
        for bits in 0u64..8 {
            let o = Orientation::from_bits(g.clone(), bits);
            assert_eq!(o.to_bits(), bits);
            assert!(o.check_antisymmetry());
        }
    }

    #[test]
    fn enumerate_counts() {
        let g = triangle();
        assert_eq!(Orientation::enumerate(&g).count(), 8);
    }

    #[test]
    fn set_points_both_directions() {
        let g = triangle();
        let mut o = Orientation::index_order(g);
        o.set_points(2, 0);
        assert!(o.points(2, 0));
        o.set_points(0, 2);
        assert!(o.points(0, 2));
    }
}
