//! Conflict-graph topology generators for experiments and benches.

use rand::Rng;

use crate::graph::ConflictGraph;

/// A named topology family, for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Path `0 - 1 - ... - (n-1)`.
    Path,
    /// Cycle on `n ≥ 3` nodes.
    Ring,
    /// Star with centre 0.
    Star,
    /// Complete graph `K_n`.
    Complete,
    /// Approximately-square grid.
    Grid,
    /// Complete binary tree.
    BinaryTree,
    /// Wheel: a ring plus a hub adjacent to every rim node.
    Wheel,
    /// Hypercube of the largest dimension fitting `n`, truncated to `n`
    /// nodes.
    Hypercube,
}

impl Topology {
    /// All families, for sweeps.
    pub const ALL: [Topology; 8] = [
        Topology::Path,
        Topology::Ring,
        Topology::Star,
        Topology::Complete,
        Topology::Grid,
        Topology::BinaryTree,
        Topology::Wheel,
        Topology::Hypercube,
    ];

    /// Builds the family member with `n` nodes.
    pub fn build(self, n: usize) -> ConflictGraph {
        match self {
            Topology::Path => path(n),
            Topology::Ring => ring(n),
            Topology::Star => star(n),
            Topology::Complete => complete(n),
            Topology::Grid => {
                let w = (n as f64).sqrt().ceil() as usize;
                grid_n(w.max(1), n)
            }
            Topology::BinaryTree => binary_tree(n),
            Topology::Wheel => wheel(n),
            Topology::Hypercube => hypercube_n(n),
        }
    }

    /// A short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Path => "path",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Complete => "complete",
            Topology::Grid => "grid",
            Topology::BinaryTree => "tree",
            Topology::Wheel => "wheel",
            Topology::Hypercube => "hypercube",
        }
    }
}

/// Path graph on `n` nodes.
pub fn path(n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("path edges are simple");
    }
    g
}

/// Ring (cycle) on `n` nodes; `n < 3` degenerates to a path.
pub fn ring(n: usize) -> ConflictGraph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("closing edge is fresh");
    }
    g
}

/// Star with centre node `0` and `n - 1` leaves — the maximally contended
/// topology (every conflict involves the centre).
pub fn star(n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for i in 1..n {
        g.add_edge(0, i).expect("star edges are simple");
    }
    g
}

/// Complete graph `K_n` — the paper's "dining philosophers around one
/// table" extreme: everybody conflicts with everybody.
pub fn complete(n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete edges are simple");
        }
    }
    g
}

/// `w × h` grid.
pub fn grid(w: usize, h: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(w * h);
    let id = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(id(x, y), id(x + 1, y)).expect("grid edge");
            }
            if y + 1 < h {
                g.add_edge(id(x, y), id(x, y + 1)).expect("grid edge");
            }
        }
    }
    g
}

/// First `n` nodes of a `w`-wide grid (row-major), so sweeps can use exact
/// node counts.
pub fn grid_n(w: usize, n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for i in 0..n {
        let (x, y) = (i % w, i / w);
        if x + 1 < w && i + 1 < n {
            g.add_edge(i, i + 1).expect("grid edge");
        }
        let below = (y + 1) * w + x;
        if below < n {
            g.add_edge(i, below).expect("grid edge");
        }
    }
    g
}

/// Complete binary tree on `n` nodes (node `i`'s children are `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                g.add_edge(i, c).expect("tree edge");
            }
        }
    }
    g
}

/// Wheel on `n` nodes: hub `0` plus a rim ring `1..n`. Combines the
/// star's central contention with the ring's peer conflicts; `n < 4`
/// degenerates to a star/complete graph.
pub fn wheel(n: usize) -> ConflictGraph {
    let mut g = star(n);
    if n >= 3 {
        for i in 1..n - 1 {
            g.add_edge(i, i + 1).expect("rim edge");
        }
        if n >= 4 {
            g.add_edge(n - 1, 1).expect("closing rim edge");
        }
    }
    g
}

/// Hypercube `Q_d` on `2^d` nodes: nodes are bit strings, edges connect
/// strings at Hamming distance one. The regular, vertex-transitive
/// topology used for symmetry experiments.
pub fn hypercube(d: u32) -> ConflictGraph {
    let n = 1usize << d;
    let mut g = ConflictGraph::new(n);
    for u in 0..n {
        for b in 0..d {
            let v = u ^ (1 << b);
            if u < v {
                g.add_edge(u, v).expect("hypercube edge");
            }
        }
    }
    g
}

/// First `n` nodes of the smallest hypercube with at least `n` nodes
/// (edges between retained nodes only), so sweeps can use exact counts.
/// `hypercube_n(2^d)` is exactly `Q_d`. Connected for every `n ≥ 1`:
/// dropping the highest nodes of a hypercube leaves each survivor `u > 0`
/// adjacent to the smaller node `u` with its top bit cleared.
pub fn hypercube_n(n: usize) -> ConflictGraph {
    let d = usize::BITS - n.saturating_sub(1).leading_zeros();
    let mut g = ConflictGraph::new(n);
    for u in 0..n {
        for b in 0..d {
            let v = u ^ (1 << b);
            if u < v && v < n {
                g.add_edge(u, v).expect("hypercube edge");
            }
        }
    }
    g
}

/// `w × h` torus: the grid with wrap-around rows and columns. Every node
/// has degree 4 (for `w, h ≥ 3`) — vertex-transitive, used in symmetry
/// experiments.
pub fn torus(w: usize, h: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(w * h);
    let id = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            let right = id((x + 1) % w, y);
            let down = id(x, (y + 1) % h);
            for v in [right, down] {
                let u = id(x, y);
                if u != v && !g.is_edge(u, v) {
                    g.add_edge(u, v).expect("torus edge");
                }
            }
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}`: parts `0..a` and `a..a+b` — the
/// client/server conflict pattern (every client conflicts with every
/// server, never with another client).
pub fn complete_bipartite(a: usize, b: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(a + b);
    for u in 0..a {
        for v in a..a + b {
            g.add_edge(u, v).expect("bipartite edge");
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("ER edges are simple");
            }
        }
    }
    g
}

/// A connected random graph: random spanning tree plus `G(n, p)` extras.
pub fn connected_random(n: usize, p: f64, rng: &mut impl Rng) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        g.add_edge(u, v).expect("spanning tree edge");
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.is_edge(u, v) && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("extra edge is fresh");
            }
        }
    }
    g
}

/// Iterates over *all* simple graphs on `n` nodes (one per edge subset).
/// `n ≤ 7` keeps this tractable (`2^21` graphs at `n = 7`).
pub fn all_graphs(n: usize) -> impl Iterator<Item = ConflictGraph> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let m = pairs.len();
    assert!(m <= 31, "all_graphs supports at most 31 candidate edges");
    (0u32..(1u32 << m)).map(move |mask| {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(k, _)| mask >> *k & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        ConflictGraph::from_edges(n, &edges).expect("subset of simple edges")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn family_shapes() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(ring(2).edge_count(), 1, "degenerate ring is a path");
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(grid(3, 2).edge_count(), 7);
        assert_eq!(binary_tree(7).edge_count(), 6);
    }

    #[test]
    fn all_families_connected_and_simple() {
        for t in Topology::ALL {
            for n in [1usize, 2, 3, 6, 9] {
                let g = t.build(n);
                assert_eq!(g.node_count(), n, "{} n={n}", t.name());
                g.check_invariants().unwrap();
                assert!(g.is_connected(), "{} n={n} must be connected", t.name());
            }
        }
    }

    #[test]
    fn wheel_shapes() {
        let g = wheel(6); // hub + 5-rim
        assert_eq!(g.edge_count(), 10); // 5 spokes + 5 rim
        assert_eq!(g.degree(0), 5);
        for i in 1..6 {
            assert_eq!(g.degree(i), 3, "rim node {i}");
        }
        assert_eq!(wheel(4).edge_count(), 6, "W4 = K4");
        assert_eq!(wheel(2).edge_count(), 1);
    }

    #[test]
    fn hypercube_shapes() {
        for d in 0..5u32 {
            let g = hypercube(d);
            assert_eq!(g.node_count(), 1 << d);
            assert_eq!(g.edge_count(), (d as usize) << d.saturating_sub(1));
            for i in 0..g.node_count() {
                assert_eq!(g.degree(i), d as usize);
            }
            assert!(g.is_connected());
            g.check_invariants().unwrap();
        }
        // Truncation keeps exactly n nodes, stays connected, and matches
        // the full cube at powers of two.
        for n in 1..=20usize {
            let g = hypercube_n(n);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(), "hypercube_n({n})");
            g.check_invariants().unwrap();
        }
        assert_eq!(hypercube_n(8).edge_count(), hypercube(3).edge_count());
    }

    #[test]
    fn torus_shapes() {
        let g = torus(3, 3);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 18);
        for i in 0..9 {
            assert_eq!(g.degree(i), 4);
        }
        assert!(g.is_connected());
        g.check_invariants().unwrap();
        // Degenerate widths collapse duplicate wrap edges instead of
        // panicking.
        let small = torus(2, 2);
        small.check_invariants().unwrap();
        assert!(small.is_connected());
    }

    #[test]
    fn complete_bipartite_shapes() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        for u in 0..2 {
            assert_eq!(g.degree(u), 3);
        }
        for v in 2..5 {
            assert_eq!(g.degree(v), 2);
        }
        // No intra-part edges.
        assert!(!g.is_edge(0, 1));
        assert!(!g.is_edge(2, 3));
        g.check_invariants().unwrap();
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn connected_random_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 5, 12, 30] {
            let g = connected_random(n, 0.1, &mut rng);
            assert!(g.is_connected());
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn all_graphs_counts() {
        assert_eq!(all_graphs(3).count(), 8); // 2^3 subsets of K3's edges
        assert_eq!(all_graphs(4).count(), 64);
        // Every generated graph satisfies the invariants.
        for g in all_graphs(4) {
            g.check_invariants().unwrap();
        }
    }
}
