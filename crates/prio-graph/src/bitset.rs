//! A dense fixed-capacity bitset.
//!
//! Closure computations (`R*`, `A*`) are BFS sweeps over node sets; a flat
//! `u64`-word bitset keeps them allocation-free and cache-friendly, per the
//! hpc guidance of preferring compact representations in hot loops.

/// A fixed-capacity set of `usize` values below `capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity (exclusive upper bound on members).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`; returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bitset index {v} out of capacity");
        let w = &mut self.words[v / 64];
        let bit = 1u64 << (v % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `v`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        let w = &mut self.words[v / 64];
        let bit = 1u64 << (v % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        v < self.capacity && self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Whether `self` and `other` share any member.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collects members into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element (+1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in items {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "re-insert reports false");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_ascending() {
        let mut s = BitSet::new(200);
        for v in [5, 64, 63, 199, 0] {
            s.insert(v);
        }
        assert_eq!(s.to_vec(), vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        assert!(!a.intersects(&b));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersects(&b));
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 7, 3].into_iter().collect();
        assert_eq!(s.to_vec(), vec![3, 7]);
        assert_eq!(s.capacity(), 8);
    }
}
