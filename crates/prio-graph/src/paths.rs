//! Simple-path and simple-cycle enumeration.
//!
//! The §4 proofs quantify over reachability sets `R*`/`A*`. To express
//! those as *predicates over the edge-orientation variables* (so the proof
//! kernel and model checker can manipulate them), we enumerate the simple
//! paths and cycles of the underlying conflict graph once: `j ∈ A*(i)` is
//! then "some simple path from `j` to `i` is fully oriented forward", and
//! acyclicity is "no simple cycle is oriented around". Enumeration is
//! exponential in general and intended for the small instances on which the
//! mechanized proofs are checked (`n ≤ 6`).

use crate::graph::ConflictGraph;

/// All simple paths from `from` to `to` (node sequences, inclusive;
/// `from != to`), in DFS order.
pub fn simple_paths(g: &ConflictGraph, from: usize, to: usize) -> Vec<Vec<usize>> {
    assert_ne!(from, to, "simple_paths requires distinct endpoints");
    let mut out = Vec::new();
    let mut visited = vec![false; g.node_count()];
    let mut path = vec![from];
    visited[from] = true;
    dfs_paths(g, from, to, &mut visited, &mut path, &mut out);
    out
}

fn dfs_paths(
    g: &ConflictGraph,
    at: usize,
    to: usize,
    visited: &mut Vec<bool>,
    path: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    for next in g.neighbors(at).iter() {
        if next == to {
            path.push(to);
            out.push(path.clone());
            path.pop();
            continue;
        }
        if !visited[next] {
            visited[next] = true;
            path.push(next);
            dfs_paths(g, next, to, visited, path, out);
            path.pop();
            visited[next] = false;
        }
    }
}

/// All simple cycles (length ≥ 3) of the undirected graph, each reported
/// exactly once as a node sequence `[s, …]` that starts at its smallest
/// node `s` and whose second node is smaller than its last (fixing the
/// traversal direction).
pub fn simple_cycles(g: &ConflictGraph) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let n = g.node_count();
    for s in 0..n {
        // DFS restricted to nodes > s (s is the smallest on the cycle).
        let mut visited = vec![false; n];
        visited[s] = true;
        let mut path = vec![s];
        dfs_cycles(g, s, s, &mut visited, &mut path, &mut out);
    }
    out
}

fn dfs_cycles(
    g: &ConflictGraph,
    s: usize,
    at: usize,
    visited: &mut Vec<bool>,
    path: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    for next in g.neighbors(at).iter() {
        if next == s && path.len() >= 3 {
            // Close the cycle; dedup direction: second node < last node.
            if path[1] < path[path.len() - 1] {
                out.push(path.clone());
            }
            continue;
        }
        if next > s && !visited[next] {
            visited[next] = true;
            path.push(next);
            dfs_cycles(g, s, next, visited, path, out);
            path.pop();
            visited[next] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn paths_on_a_path_graph() {
        let g = topology::path(4); // 0-1-2-3
        assert_eq!(simple_paths(&g, 0, 3), vec![vec![0, 1, 2, 3]]);
        assert_eq!(simple_paths(&g, 3, 0), vec![vec![3, 2, 1, 0]]);
        assert_eq!(simple_paths(&g, 1, 2), vec![vec![1, 2]]);
    }

    #[test]
    fn paths_on_a_ring() {
        let g = topology::ring(5);
        // Exactly two simple paths between any distinct pair on a ring.
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(simple_paths(&g, i, j).len(), 2, "{i}→{j}");
                }
            }
        }
    }

    #[test]
    fn cycles_counts() {
        assert_eq!(simple_cycles(&topology::path(5)).len(), 0);
        assert_eq!(simple_cycles(&topology::ring(5)).len(), 1);
        // K4 has 7 simple cycles: four triangles and three 4-cycles.
        assert_eq!(simple_cycles(&topology::complete(4)).len(), 7);
        // K5: 10 triangles + 15 4-cycles + 12 5-cycles = 37.
        assert_eq!(simple_cycles(&topology::complete(5)).len(), 37);
    }

    #[test]
    fn cycles_are_canonical() {
        for c in simple_cycles(&topology::complete(5)) {
            let s = c[0];
            assert!(c.iter().all(|&v| v >= s), "starts at smallest node");
            assert!(c[1] < c[c.len() - 1], "direction canonicalized");
            assert!(c.len() >= 3);
        }
    }

    #[test]
    fn every_cycle_is_a_real_cycle() {
        let g = topology::complete(4);
        for c in simple_cycles(&g) {
            for w in c.windows(2) {
                assert!(g.is_edge(w[0], w[1]));
            }
            assert!(g.is_edge(c[c.len() - 1], c[0]), "closing edge exists");
            // All distinct.
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), c.len());
        }
    }
}
