//! Reachability closures `R*(i)` and `A*(i)` (paper §4.4).
//!
//! ```text
//! R¹(i) = R(i)        Rⁿ⁺¹(i) = Rⁿ(i) ∪ ⋃_{j ∈ Rⁿ(i)} R(j)       R*(i) = ⋃ₙ Rⁿ(i)
//! ```
//!
//! `R*(i)` is the (non-reflexive) set of nodes reachable from `i` along
//! priority edges; `A*(i)` the set of nodes from which `i` is reachable.
//! Note `i ∈ R*(i)` exactly when `i` lies on a directed cycle.
//!
//! The paper's (19) `i ∈ R*(j) ⇔ j ∈ A*(i)` and (20)
//! `Priority(i) ⇔ A*(i) = ∅` are exposed as checkable functions and
//! verified exhaustively in the test-suite.

use crate::bitset::BitSet;
use crate::orientation::Orientation;

/// Computes `R*(i)` by BFS along out-edges.
pub fn reach_set(o: &Orientation, i: usize) -> BitSet {
    closure_from(o, i, Direction::Forward)
}

/// Computes `A*(i)` by BFS along in-edges.
pub fn above_set(o: &Orientation, i: usize) -> BitSet {
    closure_from(o, i, Direction::Backward)
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

fn closure_from(o: &Orientation, start: usize, dir: Direction) -> BitSet {
    let n = o.node_count();
    let mut out = BitSet::new(n);
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    // Seed with direct successors/predecessors of `start` — the closure is
    // non-reflexive, so `start` itself only joins via a cycle.
    let seed = match dir {
        Direction::Forward => o.r_set(start),
        Direction::Backward => o.a_set(start),
    };
    for j in seed.iter() {
        if out.insert(j) {
            stack.push(j);
        }
    }
    while let Some(u) = stack.pop() {
        let next = match dir {
            Direction::Forward => o.r_set(u),
            Direction::Backward => o.a_set(u),
        };
        for v in next.iter() {
            if out.insert(v) {
                stack.push(v);
            }
        }
    }
    out
}

/// All `R*` sets at once (index by node). Quadratic BFS; fine for the small
/// graphs of the paper's mechanism.
pub fn all_reach_sets(o: &Orientation) -> Vec<BitSet> {
    (0..o.node_count()).map(|i| reach_set(o, i)).collect()
}

/// All `A*` sets at once.
pub fn all_above_sets(o: &Orientation) -> Vec<BitSet> {
    (0..o.node_count()).map(|i| above_set(o, i)).collect()
}

/// Reference implementation via Floyd–Warshall-style saturation; used to
/// cross-check the BFS closures in tests.
pub fn reach_sets_naive(o: &Orientation) -> Vec<BitSet> {
    let n = o.node_count();
    // reach[i][j] = true if i → j directly.
    let mut reach: Vec<BitSet> = (0..n).map(|i| o.r_set(i)).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut acc = reach[i].clone();
            for j in reach[i].iter() {
                // acc ∪= reach[j]
                let rj = reach[j].clone();
                changed |= acc.union_with(&rj);
            }
            reach[i] = acc;
        }
        if !changed {
            break;
        }
    }
    reach
}

/// The paper's (19): `i ∈ R*(j) ⇔ j ∈ A*(i)` for all pairs.
pub fn duality_holds(o: &Orientation) -> bool {
    let n = o.node_count();
    let r = all_reach_sets(o);
    let a = all_above_sets(o);
    (0..n).all(|i| (0..n).all(|j| r[j].contains(i) == a[i].contains(j)))
}

/// The paper's (20): `Priority(i) ⇔ A*(i) = ∅` for all nodes.
pub fn priority_characterization_holds(o: &Orientation) -> bool {
    (0..o.node_count()).all(|i| o.priority(i) == above_set(o, i).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConflictGraph;
    use std::sync::Arc;

    fn path4() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap())
    }

    #[test]
    fn chain_reachability() {
        // 0 → 1 → 2 → 3 (index order on a path).
        let o = Orientation::index_order(path4());
        assert_eq!(reach_set(&o, 0).to_vec(), vec![1, 2, 3]);
        assert_eq!(reach_set(&o, 2).to_vec(), vec![3]);
        assert!(reach_set(&o, 3).is_empty());
        assert_eq!(above_set(&o, 3).to_vec(), vec![0, 1, 2]);
        assert!(above_set(&o, 0).is_empty());
    }

    #[test]
    fn cycle_contains_self() {
        // Triangle oriented cyclically: 0→1, 1→2, 2→0.
        let g = Arc::new(ConflictGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap());
        let mut o = Orientation::index_order(g);
        o.set_points(2, 0);
        for i in 0..3 {
            assert!(reach_set(&o, i).contains(i), "node {i} on a cycle");
            assert_eq!(reach_set(&o, i).len(), 3);
        }
    }

    #[test]
    fn bfs_matches_naive_exhaustively() {
        // Every orientation of two small graphs.
        for edges in [
            vec![(0usize, 1usize), (1, 2), (0, 2), (2, 3)],
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        ] {
            let g = Arc::new(ConflictGraph::from_edges(4, &edges).unwrap());
            for o in Orientation::enumerate(&g) {
                assert_eq!(all_reach_sets(&o), reach_sets_naive(&o));
            }
        }
    }

    #[test]
    fn duality_and_priority_characterization_exhaustive() {
        let g = Arc::new(
            ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
                .unwrap(),
        );
        for o in Orientation::enumerate(&g) {
            assert!(duality_holds(&o));
            assert!(priority_characterization_holds(&o));
        }
    }
}
