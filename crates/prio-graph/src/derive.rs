//! Definition 1 and Lemma 1 of the paper.
//!
//! **Definition 1.** Let `G` and `G′` be two graphs differing only by edge
//! orientation. `G′` is *derived from `G` through node `i₀`*, written
//! `G ⟶(i₀) G′`, iff all the edges of `i₀` are outgoing in `G` and incoming
//! in `G′`, all other edges being equal.
//!
//! (So `i₀` holds `Priority` in `G` and has yielded in `G′` — the only kind
//! of change a correct component can make, which is what Property 1/2 of
//! the paper capture.)
//!
//! **Lemma 1.** `G ⟶(i₀) G′  ⇒  ⟨∀i :: R*_{G′}(i) ⊆ R*_G(i) ∪ {i₀}⟩`.
//!
//! The functions here make both statements *executable*; the test-suite
//! checks Lemma 1 exhaustively on all orientations of all graphs up to 5
//! nodes and probabilistically on larger random graphs.

use crate::closure::all_reach_sets;
use crate::orientation::Orientation;

/// Whether `to` is derived from `from` through `i0` (Definition 1).
pub fn derives_through(from: &Orientation, to: &Orientation, i0: usize) -> bool {
    debug_assert!(std::sync::Arc::ptr_eq(from.graph(), to.graph()) || from.graph() == to.graph());
    let g = from.graph();
    // All edges of i0: outgoing in `from`, incoming in `to`.
    for j in g.neighbors(i0).iter() {
        if !from.points(i0, j) || !to.points(j, i0) {
            return false;
        }
    }
    // All other edges equal.
    for &(u, v) in g.edges() {
        if u == i0 || v == i0 {
            continue;
        }
        if from.points(u, v) != to.points(u, v) {
            return false;
        }
    }
    true
}

/// Performs the derivation through `i0`, if permitted (`i0` must hold
/// priority in `from`); returns the derived orientation.
pub fn derive(from: &Orientation, i0: usize) -> Option<Orientation> {
    if !from.priority(i0) {
        return None;
    }
    let mut to = from.clone();
    to.yield_node(i0);
    debug_assert!(derives_through(from, &to, i0));
    Some(to)
}

/// Whether `to` equals `from` or is derived from it through *some* node —
/// the shared universal Property 2 (22) of the paper, at the graph level.
pub fn is_legal_step(from: &Orientation, to: &Orientation) -> bool {
    if from == to {
        return true;
    }
    (0..from.node_count()).any(|i0| derives_through(from, to, i0))
}

/// Checks Lemma 1 on a concrete pair: `R*_{to}(i) ⊆ R*_{from}(i) ∪ {i₀}`
/// for every node `i`.
pub fn lemma1_holds(from: &Orientation, to: &Orientation, i0: usize) -> bool {
    let r_from = all_reach_sets(from);
    let r_to = all_reach_sets(to);
    (0..from.node_count()).all(|i| r_to[i].iter().all(|x| r_from[i].contains(x) || x == i0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic::is_acyclic;
    use crate::graph::ConflictGraph;
    use std::sync::Arc;

    fn triangle_plus_tail() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap())
    }

    #[test]
    fn derive_requires_priority() {
        let o = Orientation::index_order(triangle_plus_tail());
        assert!(o.priority(0));
        assert!(derive(&o, 0).is_some());
        assert!(derive(&o, 1).is_none(), "1 lacks priority");
    }

    #[test]
    fn derivation_matches_definition() {
        let o = Orientation::index_order(triangle_plus_tail());
        let d = derive(&o, 0).unwrap();
        assert!(derives_through(&o, &d, 0));
        assert!(!derives_through(&o, &d, 1));
        assert!(!derives_through(&o, &o, 0), "identity is not a derivation");
        assert!(is_legal_step(&o, &d));
        assert!(is_legal_step(&o, &o), "stuttering is legal");
    }

    #[test]
    fn illegal_steps_detected() {
        let g = triangle_plus_tail();
        let from = Orientation::index_order(g.clone());
        // Flip a single edge not forming a full yield: illegal.
        let mut to = from.clone();
        to.set_points(1, 0);
        assert!(!is_legal_step(&from, &to));
    }

    #[test]
    fn lemma1_exhaustive_small() {
        // All orientations of all graphs on 4 nodes (every edge subset).
        let all_pairs: Vec<(usize, usize)> = (0..4)
            .flat_map(|u| ((u + 1)..4).map(move |v| (u, v)))
            .collect();
        for mask in 0u32..(1 << all_pairs.len()) {
            let edges: Vec<(usize, usize)> = all_pairs
                .iter()
                .enumerate()
                .filter(|(k, _)| mask >> k & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let g = Arc::new(ConflictGraph::from_edges(4, &edges).unwrap());
            for o in Orientation::enumerate(&g) {
                for i0 in 0..4 {
                    if let Some(d) = derive(&o, i0) {
                        assert!(lemma1_holds(&o, &d, i0), "Lemma 1 failed");
                    }
                }
            }
        }
    }

    #[test]
    fn derivation_preserves_acyclicity_on_samples() {
        // Property 5's graph-theoretic core, spot-checked here (the full
        // exhaustive check lives in the integration suite).
        let g = triangle_plus_tail();
        for o in Orientation::enumerate(&g) {
            if !is_acyclic(&o) {
                continue;
            }
            for i0 in 0..4 {
                if let Some(d) = derive(&o, i0) {
                    assert!(is_acyclic(&d), "derivation introduced a cycle");
                }
            }
        }
    }
}
