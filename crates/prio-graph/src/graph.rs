//! Undirected conflict graphs (the paper's neighbourhood graph `P`).
//!
//! The graph is finite, simple (no self-loops — the paper requires
//! `⟨∀i :: i ∉ N(i)⟩`) and symmetric (`j ∈ N(i) ⇔ i ∈ N(j)` is an
//! invariant of the representation).

use std::fmt;

use crate::bitset::BitSet;

/// Error raised when building a conflict graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Attempted self-conflict `i ~ i`.
    SelfLoop(usize),
    /// Node index out of range.
    OutOfRange(usize, usize),
    /// Edge added twice.
    DuplicateEdge(usize, usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(i) => write!(f, "self-loop at node {i}"),
            GraphError::OutOfRange(i, n) => write!(f, "node {i} out of range (n = {n})"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConflictGraph {
    n: usize,
    adj: Vec<BitSet>,
    /// Edges as `(u, v)` with `u < v`, in insertion order; the index in this
    /// vector is the edge's id (used as the orientation variable index).
    edges: Vec<(usize, usize)>,
    /// `edge_id[u][v]` for `u != v` (dense; graphs here are small).
    edge_ids: Vec<Vec<Option<u32>>>,
}

impl ConflictGraph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        ConflictGraph {
            n,
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            edges: Vec::new(),
            edge_ids: vec![vec![None; n]; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the conflict edge `u ~ v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if u >= self.n {
            return Err(GraphError::OutOfRange(u, self.n));
        }
        if v >= self.n {
            return Err(GraphError::OutOfRange(v, self.n));
        }
        if self.adj[u].contains(v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let id = self.edges.len() as u32;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.edge_ids[u][v] = Some(id);
        self.edge_ids[v][u] = Some(id);
        Ok(())
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = ConflictGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Whether `u ~ v`.
    pub fn is_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].contains(v)
    }

    /// The neighbour set `N(i)`.
    pub fn neighbors(&self, i: usize) -> &BitSet {
        &self.adj[i]
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Edge list `(u, v)` with `u < v`, in id order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The id of edge `u ~ v`, if present.
    pub fn edge_id(&self, u: usize, v: usize) -> Option<u32> {
        if u >= self.n || v >= self.n {
            return None;
        }
        self.edge_ids[u][v]
    }

    /// The endpoints of edge `id` as `(u, v)` with `u < v`.
    pub fn endpoints(&self, id: u32) -> (usize, usize) {
        self.edges[id as usize]
    }

    /// Edge ids incident to `i`.
    pub fn incident_edges(&self, i: usize) -> Vec<u32> {
        self.adj[i]
            .iter()
            .map(|j| self.edge_ids[i][j].expect("adjacency implies edge id"))
            .collect()
    }

    /// Checks the representation invariants (symmetry, no self-loops,
    /// consistent ids). Used by property tests.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        for i in 0..self.n {
            if self.adj[i].contains(i) {
                return Err(GraphError::SelfLoop(i));
            }
            for j in self.adj[i].iter() {
                if !self.adj[j].contains(i) {
                    return Err(GraphError::DuplicateEdge(i, j));
                }
            }
        }
        for (id, &(u, v)) in self.edges.iter().enumerate() {
            if self.edge_ids[u][v] != Some(id as u32) || self.edge_ids[v][u] != Some(id as u32) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
        }
        Ok(())
    }

    /// Whether the graph is connected (singleton/empty graphs count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = BitSet::new(self.n);
        let mut stack = vec![0usize];
        seen.insert(0);
        while let Some(u) = stack.pop() {
            for v in self.adj[u].iter() {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_edge(0, 1));
        assert!(g.is_edge(1, 0), "symmetry");
        assert!(!g.is_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_id(2, 1), Some(1));
        assert_eq!(g.endpoints(1), (1, 2));
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g = ConflictGraph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge(1, 0)));
        assert_eq!(g.add_edge(0, 9), Err(GraphError::OutOfRange(9, 3)));
    }

    #[test]
    fn incident_edges() {
        let g = ConflictGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let mut inc = g.incident_edges(0);
        inc.sort();
        assert_eq!(inc, vec![0, 1]);
        assert_eq!(g.incident_edges(1), vec![0]);
    }

    #[test]
    fn connectivity() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_connected());
        assert!(ConflictGraph::new(1).is_connected());
        assert!(ConflictGraph::new(0).is_connected());
    }
}
