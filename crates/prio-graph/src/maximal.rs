//! Lemma 2 of the paper: maximal nodes in above-sets.
//!
//! **Lemma 2.** In a finite acyclic graph, any non-empty above-set contains
//! a maximal node:
//! `Acyclicity ⇒ ⟨∀i : A*(i) ≠ ∅ : ⟨∃j : j ∈ A*(i) : A*(j) = ∅⟩⟩`.
//!
//! With (20) this is the paper's Property 6: every non-priority component
//! always has a *priority* component above it — the pivot of the liveness
//! proof.

use crate::closure::above_set;
use crate::orientation::Orientation;

/// Returns a maximal node above `i`: some `j ∈ A*(i)` with `A*(j) = ∅`
/// (equivalently, `Priority(j)`), or `None` when `A*(i) = ∅`.
///
/// On cyclic orientations a maximal node may not exist; the function then
/// also returns `None` even though `A*(i)` is non-empty — use
/// [`lemma2_holds`] to check the lemma's statement.
pub fn maximal_above(o: &Orientation, i: usize) -> Option<usize> {
    // Walk upward greedily: from any node with a non-empty direct
    // above-set, move to a predecessor; in an acyclic finite graph this
    // terminates at a source. Guard against cycles with a step budget.
    let n = o.node_count();
    let above = above_set(o, i);
    if above.is_empty() {
        return None;
    }
    let mut current = above.iter().next().expect("non-empty");
    for _ in 0..=n {
        let a = o.a_set(current);
        let up = a.iter().next();
        match up {
            None => return Some(current),
            Some(up) => current = up,
        }
    }
    None // cycle: no maximal node found within the budget
}

/// Checks Lemma 2's statement on a concrete acyclic orientation: for every
/// node with non-empty `A*`, a maximal node exists *within* `A*`.
pub fn lemma2_holds(o: &Orientation) -> bool {
    let n = o.node_count();
    (0..n).all(|i| {
        let above = above_set(o, i);
        if above.is_empty() {
            return true;
        }
        let has_max = above.iter().any(|j| above_set(o, j).is_empty());
        has_max
    })
}

/// The cardinality `|A*(i)|` — the induction metric of the paper's final
/// liveness proof (Property 8).
pub fn above_cardinality(o: &Orientation, i: usize) -> usize {
    above_set(o, i).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic::is_acyclic;
    use crate::graph::ConflictGraph;
    use std::sync::Arc;

    #[test]
    fn finds_maximal_on_chain() {
        let g = Arc::new(ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap());
        let o = Orientation::index_order(g); // 0 → 1 → 2 → 3
        assert_eq!(maximal_above(&o, 3), Some(0));
        assert_eq!(maximal_above(&o, 1), Some(0));
        assert_eq!(maximal_above(&o, 0), None, "A*(0) is empty");
        assert_eq!(above_cardinality(&o, 3), 3);
        assert!(lemma2_holds(&o));
    }

    #[test]
    fn maximal_is_in_above_set() {
        let g = Arc::new(
            ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap(),
        );
        for o in Orientation::enumerate(&g) {
            if !is_acyclic(&o) {
                continue;
            }
            for i in 0..5 {
                if let Some(j) = maximal_above(&o, i) {
                    let above = above_set(&o, i);
                    assert!(above.contains(j), "maximal node must lie in A*({i})");
                    assert!(above_set(&o, j).is_empty(), "maximal node has empty A*");
                    assert!(o.priority(j), "paper (20): maximal ⇔ Priority");
                }
            }
        }
    }

    #[test]
    fn lemma2_exhaustive_on_ring() {
        let g = Arc::new(
            ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap(),
        );
        for o in Orientation::enumerate(&g) {
            if is_acyclic(&o) {
                assert!(lemma2_holds(&o));
            }
        }
    }

    #[test]
    fn cyclic_graph_may_lack_maximal() {
        let g = Arc::new(ConflictGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap());
        let mut o = Orientation::index_order(g);
        o.set_points(2, 0); // cycle 0→1→2→0
        assert_eq!(maximal_above(&o, 0), None);
        assert!(
            !lemma2_holds(&o),
            "Lemma 2's hypothesis (acyclicity) matters"
        );
    }
}
