//! The verification service: submissions in, cached verdicts out.
//!
//! [`Service`] ties the layers together. One `POST /verify` flows as:
//!
//! 1. content-hash the spec ([`crate::store::spec_hash`]) — the
//!    *submission* identity used for the journal, history, and reply
//!    cache;
//! 2. on a pool worker (bounded, timeout-guarded, panic-contained):
//!    parse + compose the spec, content-hash the composed *program*
//!    ([`unity_ag::cert::program_hash`] — the *artifact* key, stable
//!    under check-line edits), [`ArtifactStore::load`] whatever the
//!    store holds for that program, seed a [`Verifier`] session with
//!    it, run every check, then export and persist the session's
//!    artifacts. A `"compositional": true` submission runs a
//!    [`CompositionalVerifier`] instead: per-component certificates are
//!    loaded by component hash, obligations discharge in component
//!    spaces, and only the dirty certificates (plus any product
//!    artifacts a fallback built) are written back;
//! 3. append the [`Report`] to the journal (synced before the sequence
//!    number is returned) and answer with per-artifact cache outcomes.
//!
//! Cache accounting is taken from the session itself, not the store's
//! claims: an artifact is a **hit** if it was installed at seed time
//! (the session's status showed it present before any check ran), a
//! **miss** if the session had to build it, and **unused** if the
//! submission's checks never demanded it. A corrupt or shape-mismatched
//! stored artifact therefore reports as the miss it operationally is.
//!
//! # Resilience discipline
//!
//! Three behaviors added for end-to-end fault tolerance:
//!
//! - **Load shedding.** Admissions are bounded: when
//!   [`ServiceConfig::queue_limit`] submissions are already in flight,
//!   new ones are refused with [`ServiceError::Overloaded`] (the HTTP
//!   layer turns that into `503` + `Retry-After`) instead of queueing
//!   without bound.
//! - **Degraded mode.** The first persistence failure — journal append,
//!   artifact save — flips a sticky `degraded` flag. From then on the
//!   service still *answers* (verdicts are computed and returned, with
//!   sequence numbers from [`Journal::reserve_seq`]) but persists
//!   nothing, and `GET /status` says so. A restart with a healthy disk
//!   clears the mode; verdicts served while degraded were never
//!   journaled and honestly vanish from history.
//! - **Idempotent replay.** A request carrying a `request_id` the
//!   service has already answered gets the cached [`VerifyResponse`]
//!   back — same sequence number, no second verification, no second
//!   journal record — which is what makes client-side retry safe.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use unity_ag::cert::program_hash;
use unity_mc::prelude::{CompositionalVerifier, Report, ScanConfig, SessionStatus, Verifier};
use unity_mc::spec::load_spec;

use crate::journal::Journal;
use crate::pool::{JobOutcome, WorkerPool};
use crate::proto::{
    CacheInfo, CacheState, HistoryEntry, StatusResponse, VerifyRequest, VerifyResponse,
};
use crate::store::{spec_hash, ArtifactStore};

/// Answered `request_id`s remembered for idempotent replay (FIFO).
pub const REPLY_CACHE_SIZE: usize = 128;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Root directory for the artifact store and journal.
    pub data_dir: PathBuf,
    /// Worker-pool size (concurrent verifications).
    pub workers: usize,
    /// Default per-submission timeout (`None` = unlimited; requests
    /// can override per-call).
    pub default_timeout: Option<Duration>,
    /// Maximum submissions in flight (running + queued) before new ones
    /// are shed with [`ServiceError::Overloaded`].
    pub queue_limit: usize,
}

impl ServiceConfig {
    /// The default admission bound for a pool of `workers`: the workers
    /// themselves plus a short queue behind them.
    pub fn default_queue_limit(workers: usize) -> usize {
        workers.max(1) * 4
    }
}

/// Why a submission produced no verdict.
#[derive(Debug)]
pub enum ServiceError {
    /// The submission itself is at fault (parse error, bad options).
    BadRequest(String),
    /// The job exceeded its deadline; reports the deadline in ms.
    Timeout(u64),
    /// The daemon failed (verification panic, store/journal I/O).
    Internal(String),
    /// Admission control refused the submission; carries the suggested
    /// `Retry-After` seconds.
    Overloaded(u64),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "{m}"),
            ServiceError::Timeout(ms) => write!(f, "verification exceeded {ms} ms"),
            ServiceError::Internal(m) => write!(f, "{m}"),
            ServiceError::Overloaded(secs) => {
                write!(f, "service at capacity, retry in {secs}s")
            }
        }
    }
}

/// What a verification job reports back to the request thread.
struct JobOutput {
    report: Report,
    cache: CacheInfo,
    /// Artifact persistence failed; the verdict itself is intact. The
    /// request thread flips degraded mode and still answers.
    persist_error: Option<String>,
}

enum JobError {
    /// Submitter's fault: unparsable spec.
    Spec(String),
}

/// Bounded `request_id → response` memory for idempotent resubmission.
struct ReplyCache {
    map: HashMap<String, VerifyResponse>,
    order: VecDeque<String>,
}

/// The long-running verification service (transport-agnostic; the HTTP
/// layer in [`crate::server`] is one front end, tests drive it
/// directly).
pub struct Service {
    store: Arc<ArtifactStore>,
    journal: Mutex<Journal>,
    history: Mutex<Vec<HistoryEntry>>,
    pool: WorkerPool,
    default_timeout: Option<Duration>,
    queue_limit: usize,
    in_flight: AtomicUsize,
    degraded: Mutex<Option<String>>,
    replies: Mutex<ReplyCache>,
    started: Instant,
    /// Cumulative certificate-cache accounting across every
    /// compositional submission (reported by `GET /status`).
    cert_hits: AtomicU64,
    cert_misses: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn cache_state(seeded: bool, present: bool) -> CacheState {
    match (seeded, present) {
        (true, _) => CacheState::Hit,
        (false, true) => CacheState::Miss,
        (false, false) => CacheState::Unused,
    }
}

/// Per-artifact accounting from the session status just after seeding
/// (`pre`) vs just after the checks (`post`), plus whether a stored
/// field order was handed to the symbolic configuration.
fn cache_info(pre: &SessionStatus, post: &SessionStatus, order_seeded: bool) -> CacheInfo {
    CacheInfo {
        ts_reachable: cache_state(pre.ts_reachable, post.ts_reachable),
        ts_all_states: cache_state(pre.ts_all_states, post.ts_all_states),
        pred_reachable: cache_state(pre.pred_reachable, post.pred_reachable),
        pred_all_states: cache_state(pre.pred_all_states, post.pred_all_states),
        field_order: cache_state(order_seeded && post.symbolic, post.symbolic),
        cert_hits: 0,
        cert_misses: 0,
    }
}

/// Decrements the in-flight gauge on every exit path, including panics.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Service {
    /// Opens the service: creates the data dir, opens the store,
    /// replays the journal, spawns the worker pool.
    pub fn open(cfg: ServiceConfig) -> Result<Service, String> {
        std::fs::create_dir_all(&cfg.data_dir)
            .map_err(|e| format!("{}: {e}", cfg.data_dir.display()))?;
        let store = ArtifactStore::open(cfg.data_dir.join("store"))
            .map_err(|e| format!("artifact store: {e}"))?;
        let (journal, replayed) = Journal::open(&cfg.data_dir.join("journal.log"))?;
        let history = replayed
            .into_iter()
            .map(|rec| HistoryEntry {
                seq: rec.seq,
                spec_hash: rec.spec_hash,
                program: rec.report.program.clone(),
                passed: rec.report.all_passed(),
                checks: rec.report.checks.len() as u64,
            })
            .collect();
        Ok(Service {
            store: Arc::new(store),
            journal: Mutex::new(journal),
            history: Mutex::new(history),
            pool: WorkerPool::new(cfg.workers.max(1)),
            default_timeout: cfg.default_timeout,
            queue_limit: cfg.queue_limit.max(1),
            in_flight: AtomicUsize::new(0),
            degraded: Mutex::new(None),
            replies: Mutex::new(ReplyCache {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            started: Instant::now(),
            cert_hits: AtomicU64::new(0),
            cert_misses: AtomicU64::new(0),
        })
    }

    /// Verifies one submission end to end (hash → seed → check →
    /// persist → journal). Blocking; concurrency comes from the
    /// transport calling this from many connection threads, multiplexed
    /// over the bounded pool.
    pub fn verify(&self, req: VerifyRequest) -> Result<VerifyResponse, ServiceError> {
        // Idempotent replay: a retried request_id is answered from the
        // reply cache — no admission charge, no second verification.
        if let Some(id) = &req.request_id {
            if let Some(hit) = lock(&self.replies).map.get(id) {
                return Ok(hit.clone());
            }
        }
        // Admission control. fetch_add first, judge after: two racing
        // submissions can't both slip under the limit.
        let admitted = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let _guard = InFlightGuard(&self.in_flight);
        if admitted > self.queue_limit {
            return Err(ServiceError::Overloaded(self.retry_after_hint()));
        }
        let hash = spec_hash(&req.spec);
        let timeout = match req.timeout_ms {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => self.default_timeout,
        };
        let store = Arc::clone(&self.store);
        let spec_src = req.spec;
        let (engine, universe) = (req.engine, req.universe);
        let compositional = req.compositional;
        // While degraded, persistence is off: the job skips the store
        // write instead of rediscovering the dead disk on every call.
        let skip_persist = self.degraded().is_some();
        let outcome = self
            .pool
            .run(timeout, move || -> Result<JobOutput, JobError> {
                let spec =
                    load_spec(&spec_src).map_err(|e| JobError::Spec(format!("spec: {e}")))?;
                let program = &spec.system.composed;
                let cfg = ScanConfig {
                    engine,
                    ..ScanConfig::default()
                };
                // Artifacts key by the composed *program's* content, not
                // the spec text: editing a check line keeps the hash, so
                // everything expensive is reused (delta keying).
                let prog_hash = program_hash(program);
                if compositional {
                    let mut session =
                        CompositionalVerifier::new(&spec.system, cfg).with_universe(universe);
                    // Components plus the cone slices this battery will
                    // decide on — the full certificate key space.
                    let hashes = session.plan_hashes(&spec.checks);
                    let seeded = store.load_certs(&hashes);
                    let mut session = session.with_certs(seeded);
                    let report = session.verify_all(&spec.checks);
                    let stats = session.stats().clone();
                    let persist_error = if skip_persist {
                        None
                    } else {
                        let mut result = store.save_certs(session.certs());
                        if result.is_ok() {
                            // A fallback's product artifacts file under
                            // the composed hash, warming later flat runs.
                            if let Some(arts) = session.product_artifacts() {
                                result = store.save(&prog_hash, &spec_src, &arts);
                            }
                        }
                        result.err().map(|e| format!("artifact store: {e}"))
                    };
                    // Product artifacts were never seeded, so the status
                    // after the run tells built (miss) from untouched
                    // (unused) — `None` means the product never existed.
                    let mut cache = cache_info(
                        &SessionStatus::default(),
                        &session.product_status().unwrap_or_default(),
                        false,
                    );
                    cache.cert_hits = stats.cert_hits;
                    cache.cert_misses = stats.cert_misses;
                    return Ok(JobOutput {
                        report,
                        cache,
                        persist_error,
                    });
                }
                let stored = store.load(&prog_hash, program, &cfg);
                let order_seeded = stored.field_order.is_some();
                let mut session = Verifier::new(program, cfg).with_universe(universe);
                session.seed(stored);
                let pre = session.status();
                let report = session.verify_all(&spec.checks);
                let post = session.status();
                let persist_error = if skip_persist {
                    None
                } else {
                    store
                        .save(&prog_hash, &spec_src, &session.artifacts())
                        .err()
                        .map(|e| format!("artifact store: {e}"))
                };
                Ok(JobOutput {
                    report,
                    cache: cache_info(&pre, &post, order_seeded),
                    persist_error,
                })
            });
        let output = match outcome {
            JobOutcome::Completed(Ok(output)) => output,
            JobOutcome::Completed(Err(JobError::Spec(msg))) => {
                return Err(ServiceError::BadRequest(msg))
            }
            JobOutcome::Panicked(msg) => {
                return Err(ServiceError::Internal(format!(
                    "verification panicked: {msg}"
                )))
            }
            JobOutcome::TimedOut => {
                return Err(ServiceError::Timeout(
                    timeout.map(|d| d.as_millis() as u64).unwrap_or(0),
                ))
            }
        };
        self.cert_hits
            .fetch_add(output.cache.cert_hits, Ordering::Relaxed);
        self.cert_misses
            .fetch_add(output.cache.cert_misses, Ordering::Relaxed);
        if let Some(msg) = output.persist_error {
            self.enter_degraded(msg);
        }
        // Crashpoint: verdict computed, nothing journaled, nothing
        // acked. The torture suite proves a crash here loses no *acked*
        // response — the client never saw a sequence number.
        unity_fault::fail_point!("service.verify.pre_journal");
        // Journal before answering: the sequence number a client sees
        // is durable by the time it sees it — unless the disk already
        // failed, in which case the number is reserved, not persisted,
        // and /status says so.
        let seq = if self.degraded().is_some() {
            lock(&self.journal).reserve_seq()
        } else {
            // Bind before matching: a `match` on the locked call would
            // keep the journal guard alive into the arms, and the
            // error arm locks the journal again to reserve a number.
            let appended = lock(&self.journal).append(&hash, &output.report);
            match appended {
                Ok(seq) => seq,
                Err(msg) => {
                    self.enter_degraded(msg);
                    lock(&self.journal).reserve_seq()
                }
            }
        };
        lock(&self.history).push(HistoryEntry {
            seq,
            spec_hash: hash.clone(),
            program: output.report.program.clone(),
            passed: output.report.all_passed(),
            checks: output.report.checks.len() as u64,
        });
        let response = VerifyResponse {
            seq,
            spec_hash: hash,
            cache: output.cache,
            report: output.report,
        };
        if let Some(id) = req.request_id {
            let mut replies = lock(&self.replies);
            if replies.map.insert(id.clone(), response.clone()).is_none() {
                replies.order.push_back(id);
                if replies.order.len() > REPLY_CACHE_SIZE {
                    if let Some(evicted) = replies.order.pop_front() {
                        replies.map.remove(&evicted);
                    }
                }
            }
        }
        Ok(response)
    }

    /// The `GET /status` summary.
    pub fn status(&self) -> StatusResponse {
        let degraded_reason = self.degraded();
        StatusResponse {
            specs: self.store.known_programs(),
            verdicts: lock(&self.history).len() as u64,
            workers: self.pool.workers() as u64,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            last_seq: lock(&self.journal).next_seq().saturating_sub(1),
            queue_depth: self.pool.queued() as u64,
            degraded: degraded_reason.is_some(),
            degraded_reason,
            cert_hits: self.cert_hits.load(Ordering::Relaxed),
            cert_misses: self.cert_misses.load(Ordering::Relaxed),
        }
    }

    /// The verdict history, optionally restricted to one spec hash.
    pub fn history(&self, spec: Option<&str>) -> Vec<HistoryEntry> {
        lock(&self.history)
            .iter()
            .filter(|e| spec.is_none_or(|h| e.spec_hash == h))
            .cloned()
            .collect()
    }

    /// The sticky degraded reason, if persistence has failed.
    pub fn degraded(&self) -> Option<String> {
        lock(&self.degraded).clone()
    }

    /// Flips degraded mode (first reason wins; later errors are noise
    /// from the same dead disk).
    fn enter_degraded(&self, reason: String) {
        let mut flag = lock(&self.degraded);
        if flag.is_none() {
            eprintln!("unity-serve: entering degraded mode: {reason}");
            *flag = Some(reason);
        }
    }

    /// Submissions currently admitted (running or queued).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// The `Retry-After` hint for shed load: roughly one slot-drain per
    /// queued job, clamped to something a client would actually wait.
    fn retry_after_hint(&self) -> u64 {
        (self.pool.queued() as u64 + 1).clamp(1, 30)
    }

    /// Graceful-drain support: blocks until every admitted submission
    /// has finished (or `timeout` passes). The transport stops
    /// accepting first, so `in_flight` can only fall. Returns whether
    /// the service fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Test hook: drops the store's in-memory layer so the next load
    /// decodes from segment files.
    pub fn drop_memory_cache(&self) {
        self.store.drop_memory_cache();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use unity_mc::prelude::{Engine, Universe};

    const SPEC: &str = "program P\n  var a : int 0..3\n  var b : int 0..3\n  init a == 0 && b == 0\n  fair cmd right: a < 3 -> a := a + 1\n  fair cmd up: b < 3 -> b := b + 1\nend\nspec S\n  cap: invariant a <= 3\n  done: true leadsto a == 3 && b == 3\nend";

    fn tmp_service(name: &str) -> Service {
        let dir =
            std::env::temp_dir().join(format!("unity_serve_service_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Service::open(ServiceConfig {
            data_dir: dir,
            workers: 2,
            default_timeout: Some(Duration::from_secs(60)),
            queue_limit: 8,
        })
        .unwrap()
    }

    #[test]
    fn cold_then_warm_submission_flips_misses_to_hits() {
        let service = tmp_service("cold_warm");
        let cold = service.verify(VerifyRequest::new(SPEC)).unwrap();
        assert_eq!(cold.seq, 1);
        assert!(cold.report.all_passed());
        assert_eq!(cold.cache.ts_reachable, CacheState::Miss);
        assert_eq!(cold.cache.pred_reachable, CacheState::Miss);
        assert_eq!(cold.cache.ts_all_states, CacheState::Unused);
        assert_eq!(cold.cache.field_order, CacheState::Unused);

        let warm = service.verify(VerifyRequest::new(SPEC)).unwrap();
        assert_eq!(warm.seq, 2);
        assert_eq!(warm.spec_hash, cold.spec_hash);
        assert_eq!(warm.cache.ts_reachable, CacheState::Hit);
        assert_eq!(warm.cache.pred_reachable, CacheState::Hit);
        // Verdicts identical witness-for-witness.
        for (c, w) in cold.report.checks.iter().zip(&warm.report.checks) {
            assert_eq!(c.verdict.outcome, w.verdict.outcome, "{}", c.name);
        }

        // And again with the memory layer dropped: disk segments only.
        service.drop_memory_cache();
        let disk = service.verify(VerifyRequest::new(SPEC)).unwrap();
        assert_eq!(disk.cache.ts_reachable, CacheState::Hit);
        assert_eq!(disk.cache.pred_reachable, CacheState::Hit);
    }

    #[test]
    fn bad_specs_are_rejected_not_journaled() {
        let service = tmp_service("bad_spec");
        let err = service.verify(VerifyRequest::new("banana")).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)), "{err}");
        assert_eq!(service.history(None).len(), 0);
        assert_eq!(service.status().verdicts, 0);
        assert_eq!(service.in_flight(), 0, "admission gauge fully released");
    }

    #[test]
    fn history_filters_by_spec_hash() {
        let service = tmp_service("history");
        let a = service.verify(VerifyRequest::new(SPEC)).unwrap();
        let other = SPEC.replace("a == 3 && b == 3", "a == 3");
        let b = service.verify(VerifyRequest::new(other)).unwrap();
        assert_ne!(a.spec_hash, b.spec_hash);
        assert_eq!(service.history(None).len(), 2);
        let filtered = service.history(Some(&a.spec_hash));
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].seq, a.seq);
        assert!(service.history(Some("ffff")).is_empty());
        // The two submissions differ only in a check line, so they share
        // one *program* hash — one store directory (delta keying) — even
        // though their spec hashes (journal identities) differ.
        assert_eq!(service.status().specs, 1);
        assert_eq!(service.status().last_seq, 2);
        assert_eq!(service.status().queue_depth, 0);
        assert!(!service.status().degraded);
    }

    #[test]
    fn failing_checks_are_verdicts_not_errors() {
        let service = tmp_service("failing");
        let spec = SPEC.replace("invariant a <= 3", "invariant a <= 2");
        let resp = service.verify(VerifyRequest::new(spec)).unwrap();
        assert!(!resp.report.all_passed());
        assert!(resp.report.checks[0].verdict.failed());
        let entries = service.history(Some(&resp.spec_hash));
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].passed);
    }

    #[test]
    fn engines_and_universes_share_the_store_coherently() {
        let service = tmp_service("engines");
        for engine in [Engine::Compiled, Engine::Reference, Engine::Symbolic] {
            for universe in [Universe::Reachable, Universe::AllStates] {
                let mut req = VerifyRequest::new(SPEC);
                req.engine = engine;
                req.universe = universe;
                let resp = service.verify(req).unwrap();
                assert!(
                    resp.report.all_passed(),
                    "{engine:?}/{universe:?}: {:?}",
                    resp.report.checks
                );
            }
        }
    }

    #[test]
    fn duplicate_request_ids_replay_the_same_verdict() {
        let service = tmp_service("idempotent");
        let mut req = VerifyRequest::new(SPEC);
        req.request_id = Some("retry-key-1".into());
        let first = service.verify(req.clone()).unwrap();
        let replay = service.verify(req).unwrap();
        assert_eq!(replay.seq, first.seq, "no second journal record");
        assert_eq!(service.history(None).len(), 1);

        // A different id is a genuinely new submission.
        let mut req2 = VerifyRequest::new(SPEC);
        req2.request_id = Some("retry-key-2".into());
        let second = service.verify(req2).unwrap();
        assert_eq!(second.seq, first.seq + 1);
    }

    #[test]
    fn edited_checks_reuse_program_keyed_artifacts() {
        let service = tmp_service("delta_keying");
        let cold = service.verify(VerifyRequest::new(SPEC)).unwrap();
        assert_eq!(cold.cache.ts_reachable, CacheState::Miss);

        // Same programs, different check line: a different spec hash,
        // but the program-keyed transition system is reused — from disk,
        // not just the memory layer.
        service.drop_memory_cache();
        let edited = SPEC.replace("a == 3 && b == 3", "a == 3");
        let warm = service.verify(VerifyRequest::new(edited)).unwrap();
        assert_ne!(warm.spec_hash, cold.spec_hash);
        assert_eq!(warm.cache.ts_reachable, CacheState::Hit);
        assert_eq!(warm.cache.pred_reachable, CacheState::Hit);
        assert!(warm.report.all_passed());
    }

    const TWO_COMPONENT_SPEC: &str = "program A\n  var a : int 0..3\n  init a == 0\n  fair cmd inc_a: a < 3 -> a := a + 1\nend\nprogram B\n  var b : int 0..3\n  init b == 0\n  fair cmd inc_b: b < 3 -> b := b + 1\nend\nspec S\n  cap_a: invariant a <= 3\n  go_a: true leadsto a == 3\nend";

    #[test]
    fn compositional_submissions_cache_certificates() {
        let service = tmp_service("compositional");
        let mut req = VerifyRequest::new(TWO_COMPONENT_SPEC);
        req.compositional = true;

        let cold = service.verify(req.clone()).unwrap();
        assert!(cold.report.all_passed());
        assert!(cold.cache.cert_misses > 0, "{:?}", cold.cache);
        assert_eq!(cold.cache.cert_hits, 0);
        // Every obligation discharged compositionally: the product
        // state space was never touched.
        assert_eq!(cold.cache.ts_reachable, CacheState::Unused);

        // Re-submission answers every component fact from persisted
        // certificates — no component re-checked.
        let warm = service.verify(req.clone()).unwrap();
        assert_eq!(warm.cache.cert_misses, 0, "{:?}", warm.cache);
        assert_eq!(warm.cache.cert_hits, cold.cache.cert_misses);

        // /status accumulates across submissions.
        let status = service.status();
        assert_eq!(status.cert_hits, warm.cache.cert_hits);
        assert_eq!(status.cert_misses, cold.cache.cert_misses);

        // Editing component B invalidates only B's certificates: A's
        // facts (and the cone slice over A) still answer from cache.
        let mut edited = req.clone();
        edited.spec = TWO_COMPONENT_SPEC.replace("inc_b: b < 3", "inc_b: b < 2");
        let partial = service.verify(edited).unwrap();
        assert!(partial.cache.cert_hits > 0, "{:?}", partial.cache);
        assert!(partial.cache.cert_misses > 0, "{:?}", partial.cache);

        // Verdict-and-witness identical to the flat path.
        let flat = service
            .verify(VerifyRequest::new(TWO_COMPONENT_SPEC))
            .unwrap();
        for (c, f) in cold.report.checks.iter().zip(&flat.report.checks) {
            assert_eq!(c.verdict.outcome, f.verdict.outcome, "{}", c.name);
        }
    }

    // Degraded-mode, admission-shedding, and fault-injection coverage
    // lives in `tests/fault_injection.rs`: the failpoint registry is
    // process-global, so tests that configure points get their own test
    // binary (their own process) instead of racing the unit tests here.
}
