//! Hand-rolled HTTP/1.1 framing over [`std::net::TcpStream`].
//!
//! The repo builds fully offline, so the service speaks the smallest
//! useful HTTP subset by hand — the same discipline as the hand-rolled
//! RFC 8259 JSON in [`unity_mc::json`]. One request per connection,
//! `Connection: close` semantics, `Content-Length` bodies only (no
//! chunked encoding, no keep-alive, no TLS). Both ends are here: the
//! server-side [`read_request`]/[`write_response`] pair and the tiny
//! [`request`] client that `unity-check --serve` uses.
//!
//! Framing limits are hard errors, not truncation: header lines are
//! capped at [`MAX_HEADER_BYTES`] and bodies at [`MAX_BODY_BYTES`], so
//! a hostile peer cannot make the daemon buffer unbounded input.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted header line (request line included).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted request body. Spec files are a few kilobytes; the
/// cap only has to dwarf real submissions.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request: method, path, query pairs, raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client convention).
    pub method: String,
    /// Path without the query string, e.g. `/verify`.
    pub path: String,
    /// Decoded `k=v` query pairs, in order. No percent-decoding: every
    /// value the protocol puts in a query (spec hashes) is plain hex.
    pub query: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one header line (capped, CRLF-stripped) from `r`.
fn read_line<R: BufRead>(r: &mut R, cap: usize) -> Result<String, String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(|e| format!("read: {e}"))?;
        if buf.is_empty() {
            return Err("connection closed mid-header".into());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(k) => {
                line.extend_from_slice(&buf[..k]);
                r.consume(k + 1);
                break;
            }
            None => {
                line.extend_from_slice(buf);
                let n = buf.len();
                r.consume(n);
            }
        }
        if line.len() > cap {
            return Err(format!("header line exceeds {cap} bytes"));
        }
    }
    if line.len() > cap {
        return Err(format!("header line exceeds {cap} bytes"));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| "header line is not UTF-8".into())
}

/// Reads the header block after the request/status line, returning the
/// `Content-Length` (0 when absent).
fn read_headers<R: BufRead>(r: &mut R) -> Result<usize, String> {
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, MAX_HEADER_BYTES)?;
        if line.is_empty() {
            return Ok(content_length);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line `{line}`"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!("body of {content_length} bytes exceeds cap"));
            }
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &TcpStream) -> Result<Request, String> {
    let mut r = BufReader::new(stream);
    let request_line = read_line(&mut r, MAX_HEADER_BYTES)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(format!("malformed request line `{request_line}`")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let content_length = read_headers(&mut r)?;
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes a complete JSON response and flushes. The server always
/// closes the connection afterwards (`Connection: close`).
pub fn write_response(mut stream: &TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP client: connects to `addr` (`host:port`), sends
/// `method path` with an optional JSON body, and returns
/// `(status, body)`. Blocking; the server replies exactly once per
/// connection.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut r = BufReader::new(&stream);
    let status_line = read_line(&mut r, MAX_HEADER_BYTES)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let content_length = read_headers(&mut r)?;
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte response: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "response body is not UTF-8".to_string())?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/verify");
            assert_eq!(req.query_value("spec"), Some("abc123"));
            assert_eq!(req.query_value("missing"), None);
            assert_eq!(req.body, b"{\"k\":1}");
            write_response(&stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = request(
            &addr.to_string(),
            "POST",
            "/verify?spec=abc123&flag",
            Some("{\"k\":1}"),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        let cases: &[&[u8]] = &[
            b"GARBAGE\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
        ];
        for raw in cases {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(raw).unwrap();
                s.flush().unwrap();
                // Keep the stream open until the server is done parsing.
                let mut buf = [0u8; 1];
                let _ = s.read(&mut buf);
            });
            let (stream, _) = listener.accept().unwrap();
            assert!(
                read_request(&stream).is_err(),
                "accepted: {}",
                String::from_utf8_lossy(raw)
            );
            drop(stream);
            client.join().unwrap();
        }
    }

    #[test]
    fn truncated_bodies_are_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Claims 10 bytes, sends 3, closes.
            s.write_all(b"POST /v HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        assert!(read_request(&stream).is_err());
        client.join().unwrap();
    }
}
