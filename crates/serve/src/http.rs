//! Hand-rolled HTTP/1.1 framing over [`std::net::TcpStream`].
//!
//! The repo builds fully offline, so the service speaks the smallest
//! useful HTTP subset by hand — the same discipline as the hand-rolled
//! RFC 8259 JSON in [`unity_mc::json`]. One request per connection,
//! `Connection: close` semantics, `Content-Length` bodies only (no
//! chunked encoding, no keep-alive, no TLS). Both ends are here: the
//! server-side [`read_request_within`]/[`write_response`] pair and the
//! deadline-bounded [`request_with`] client that `unity-check --serve`
//! builds its retry loop on.
//!
//! Framing limits are hard errors, not truncation: header lines are
//! capped at [`MAX_HEADER_BYTES`], bodies at [`MAX_BODY_BYTES`], and —
//! slowloris defense — the *whole* request must arrive within a
//! deadline. A hostile peer can neither make the daemon buffer
//! unbounded input nor pin a connection thread by trickling one byte
//! per read-timeout.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Longest accepted header line (request line included).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted request body. Spec files are a few kilobytes; the
/// cap only has to dwarf real submissions.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request: method, path, query pairs, raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client convention).
    pub method: String,
    /// Path without the query string, e.g. `/verify`.
    pub path: String,
    /// Decoded `k=v` query pairs, in order. No percent-decoding: every
    /// value the protocol puts in a query (spec hashes) is plain hex.
    pub query: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Remaining time before `deadline`, or an error once it has passed.
fn remaining(deadline: Option<Instant>, what: &str) -> Result<(), String> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(format!("{what}: request deadline exceeded")),
        _ => Ok(()),
    }
}

/// Reads one header line (capped, CRLF-stripped) from `r`.
fn read_line<R: BufRead>(
    r: &mut R,
    cap: usize,
    deadline: Option<Instant>,
) -> Result<String, String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        remaining(deadline, "header")?;
        let buf = r.fill_buf().map_err(|e| format!("read: {e}"))?;
        if buf.is_empty() {
            return Err("connection closed mid-header".into());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(k) => {
                line.extend_from_slice(&buf[..k]);
                r.consume(k + 1);
                break;
            }
            None => {
                line.extend_from_slice(buf);
                let n = buf.len();
                r.consume(n);
            }
        }
        if line.len() > cap {
            return Err(format!("header line exceeds {cap} bytes"));
        }
    }
    if line.len() > cap {
        return Err(format!("header line exceeds {cap} bytes"));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| "header line is not UTF-8".into())
}

/// Parsed header block: the fields this protocol cares about.
#[derive(Debug, Default)]
struct Headers {
    content_length: usize,
    retry_after: Option<u64>,
}

/// Reads the header block after the request/status line.
fn read_headers<R: BufRead>(r: &mut R, deadline: Option<Instant>) -> Result<Headers, String> {
    let mut headers = Headers::default();
    loop {
        let line = read_line(r, MAX_HEADER_BYTES, deadline)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line `{line}`"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            headers.content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
            if headers.content_length > MAX_BODY_BYTES {
                return Err(format!(
                    "body of {} bytes exceeds cap",
                    headers.content_length
                ));
            }
        } else if name.eq_ignore_ascii_case("retry-after") {
            headers.retry_after = value.trim().parse::<u64>().ok();
        }
    }
}

/// Reads a `Content-Length` body under the deadline, in bounded chunks
/// so a slow sender cannot overshoot the deadline by more than one
/// socket read-timeout.
fn read_body<R: BufRead>(
    r: &mut R,
    len: usize,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, String> {
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        remaining(deadline, "body")?;
        let chunk = (len - filled).min(64 * 1024);
        match r.read(&mut body[filled..filled + chunk]) {
            Ok(0) => {
                return Err(format!(
                    "connection closed at byte {filled} of {len}-byte body"
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(format!("reading {len}-byte body: {e}")),
        }
    }
    Ok(body)
}

/// Reads and parses one HTTP/1.1 request from `stream`, requiring the
/// whole request (headers and body) to arrive within `deadline`.
pub fn read_request_within(stream: &TcpStream, deadline: Duration) -> Result<Request, String> {
    unity_fault::fail_point!("http.read_request", Err);
    let deadline = Some(Instant::now() + deadline);
    let mut r = BufReader::new(stream);
    let request_line = read_line(&mut r, MAX_HEADER_BYTES, deadline)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(format!("malformed request line `{request_line}`")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let headers = read_headers(&mut r, deadline)?;
    let body = read_body(&mut r, headers.content_length, deadline)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body,
    })
}

/// [`read_request_within`] with a generous default deadline (tests and
/// trusted in-process callers).
pub fn read_request(stream: &TcpStream) -> Result<Request, String> {
    read_request_within(stream, Duration::from_secs(30))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes a complete JSON response with an optional `Retry-After`
/// header (load-shedding replies tell the client when to come back) and
/// flushes. The server always closes the connection afterwards
/// (`Connection: close`).
pub fn write_response_with(
    mut stream: &TcpStream,
    status: u16,
    retry_after: Option<u64>,
    body: &str,
) -> std::io::Result<()> {
    unity_fault::fail_point!("http.write_response", |m: String| Err(
        std::io::Error::other(m)
    ));
    let retry = match retry_after {
        Some(secs) => format!("retry-after: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{retry}connection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// [`write_response_with`] without a `Retry-After` header.
pub fn write_response(stream: &TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, None, body)
}

/// Client-side socket policy: how long to wait for a connection and for
/// each read/write before giving up on the attempt.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-read/per-write socket timeout once connected.
    pub io_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A client-side view of one HTTP exchange.
#[derive(Debug)]
pub struct Reply {
    /// The response status code.
    pub status: u16,
    /// The response body.
    pub body: String,
    /// `Retry-After` seconds, when the server sent one (load shedding).
    pub retry_after: Option<u64>,
}

/// One-shot HTTP client: connects to `addr` (`host:port`) under the
/// given socket policy, sends `method path` with an optional JSON body,
/// and returns the [`Reply`]. Blocking; the server replies exactly once
/// per connection.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    opts: &ClientOptions,
) -> Result<Reply, String> {
    let targets: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .collect();
    let mut stream = None;
    let mut last_err = format!("resolve {addr}: no addresses");
    for target in targets {
        match TcpStream::connect_timeout(&target, opts.connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = format!("connect {addr}: {e}"),
        }
    }
    let mut stream = stream.ok_or(last_err)?;
    stream
        .set_read_timeout(Some(opts.io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(opts.io_timeout)))
        .map_err(|e| format!("socket options for {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let deadline = Some(Instant::now() + opts.io_timeout.max(Duration::from_secs(1)) * 4);
    let mut r = BufReader::new(&stream);
    let status_line = read_line(&mut r, MAX_HEADER_BYTES, deadline)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let headers = read_headers(&mut r, deadline)?;
    let body = read_body(&mut r, headers.content_length, deadline)?;
    let body = String::from_utf8(body).map_err(|_| "response body is not UTF-8".to_string())?;
    Ok(Reply {
        status,
        body,
        retry_after: headers.retry_after,
    })
}

/// [`request_with`] under the default socket policy, returning the
/// classic `(status, body)` pair.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let reply = request_with(addr, method, path, body, &ClientOptions::default())?;
    Ok((reply.status, reply.body))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/verify");
            assert_eq!(req.query_value("spec"), Some("abc123"));
            assert_eq!(req.query_value("missing"), None);
            assert_eq!(req.body, b"{\"k\":1}");
            write_response(&stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = request(
            &addr.to_string(),
            "POST",
            "/verify?spec=abc123&flag",
            Some("{\"k\":1}"),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn retry_after_header_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let _ = read_request(&stream).unwrap();
            write_response_with(&stream, 503, Some(7), "{\"error\":\"full\"}").unwrap();
        });
        let reply = request_with(
            &addr.to_string(),
            "GET",
            "/status",
            None,
            &ClientOptions::default(),
        )
        .unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.retry_after, Some(7));
        server.join().unwrap();
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        let cases: &[&[u8]] = &[
            b"GARBAGE\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
        ];
        for raw in cases {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(raw).unwrap();
                s.flush().unwrap();
                // Keep the stream open until the server is done parsing.
                let mut buf = [0u8; 1];
                let _ = s.read(&mut buf);
            });
            let (stream, _) = listener.accept().unwrap();
            assert!(
                read_request(&stream).is_err(),
                "accepted: {}",
                String::from_utf8_lossy(raw)
            );
            drop(stream);
            client.join().unwrap();
        }
    }

    #[test]
    fn truncated_bodies_are_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Claims 10 bytes, sends 3, closes.
            s.write_all(b"POST /v HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        assert!(read_request(&stream).is_err());
        client.join().unwrap();
    }

    #[test]
    fn slow_header_trickle_hits_the_request_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // One byte at a time, never finishing the request line.
            for b in b"GET /slow" {
                if s.write_all(&[*b]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
            std::thread::sleep(Duration::from_millis(500));
        });
        let (stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let t0 = Instant::now();
        let err = read_request_within(&stream, Duration::from_millis(120)).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline did not bound the read: {:?}",
            t0.elapsed()
        );
        // Either the deadline fired or a read timed out — both are
        // clean rejections, not hangs.
        assert!(
            err.contains("deadline") || err.contains("read"),
            "unexpected error: {err}"
        );
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn connect_timeout_bounds_unreachable_hosts() {
        // RFC 5737 TEST-NET address. Environments differ in how they
        // kill this (silent drop → connect timeout, admin reject →
        // reset); what the client guarantees is a *bounded* failure.
        let t0 = Instant::now();
        let result = request_with(
            "192.0.2.1:9",
            "GET",
            "/status",
            None,
            &ClientOptions {
                connect_timeout: Duration::from_millis(150),
                io_timeout: Duration::from_millis(150),
            },
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "attempt not bounded: {:?}",
            t0.elapsed()
        );
        assert!(result.is_err(), "TEST-NET answered a /status request");
    }
}
