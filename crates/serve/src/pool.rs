//! A bounded worker pool with per-job timeouts and panic containment.
//!
//! The daemon multiplexes concurrent verification sessions over a fixed
//! set of `std::thread` workers (the sessions themselves fan out
//! further through `unity_mc::parallel` during state-space builds).
//! Three properties the service needs:
//!
//! - **bounded**: at most `workers` verifications run at once; excess
//!   submissions queue in FIFO order.
//! - **contained**: a panicking job is caught with
//!   [`std::panic::catch_unwind`] and surfaces as
//!   [`JobOutcome::Panicked`] with the panic message — the daemon never
//!   dies with a submission.
//! - **time-bounded**: the submitter stops waiting after its deadline
//!   ([`JobOutcome::TimedOut`]). Threads cannot be killed, so the
//!   abandoned job keeps its worker busy until it finishes on its own —
//!   the timeout bounds the *caller's* latency and the outcome is
//!   reported honestly.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! subset has no condvar); lock poisoning is recovered everywhere since
//! worker bodies never panic while holding a lock anyway.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How a submitted job ended, from the submitter's point of view.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked; the payload message is attached.
    Panicked(String),
    /// The deadline passed first. The job itself may still be running
    /// on its worker; its eventual result is discarded.
    TimedOut,
}

/// A fixed-size FIFO worker pool. Dropping it drains nothing: pending
/// jobs are discarded, running jobs are joined.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 1) worker threads.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                #[allow(clippy::expect_used)] // thread spawn at startup: no caller can recover
                std::thread::Builder::new()
                    .name(format!("unity-serve-worker-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet picked up by a worker — the `/status`
    /// queue-depth signal.
    pub fn queued(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Runs `f` on a pool worker and waits for it, up to `timeout`
    /// (`None` waits indefinitely).
    pub fn run<T, F>(&self, timeout: Option<Duration>, f: F) -> JobOutcome<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        type Slot<T> = (Mutex<Option<std::thread::Result<T>>>, Condvar);
        let slot: Arc<Slot<T>> = Arc::new((Mutex::new(None), Condvar::new()));
        let done = Arc::clone(&slot);
        {
            let mut q = lock(&self.shared.queue);
            q.jobs.push_back(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // Inside the unwind boundary: a `panic` rule here
                    // exercises the containment path end to end.
                    unity_fault::fail_point!("pool.job");
                    f()
                }));
                *lock(&done.0) = Some(result);
                done.1.notify_all();
            }));
        }
        self.shared.ready.notify_one();

        let deadline = timeout.map(|d| Instant::now() + d);
        let mut guard = lock(&slot.0);
        loop {
            if let Some(result) = guard.take() {
                return match result {
                    Ok(v) => JobOutcome::Completed(v),
                    Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
                };
            }
            guard = match deadline {
                None => slot.1.wait(guard).unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return JobOutcome::TimedOut;
                    }
                    slot.1
                        .wait_timeout(guard, deadline - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
            q.jobs.clear();
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_complete_with_their_results() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        for k in 0..20usize {
            match pool.run(None, move || k * k) {
                JobOutcome::Completed(v) => assert_eq!(v, k * k),
                other => panic!("job {k}: {other:?}"),
            }
        }
    }

    #[test]
    fn panics_are_contained_with_their_message() {
        let pool = WorkerPool::new(1);
        match pool.run::<(), _>(None, || panic!("artifact store on fire")) {
            JobOutcome::Panicked(msg) => assert!(msg.contains("on fire"), "{msg}"),
            other => panic!("{other:?}"),
        }
        // The worker survives and serves the next job.
        match pool.run(None, || 7) {
            JobOutcome::Completed(v) => assert_eq!(v, 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deadlines_produce_timed_out_and_the_worker_recovers() {
        let pool = WorkerPool::new(1);
        let finished = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&finished);
        let outcome = pool.run(Some(Duration::from_millis(20)), move || {
            std::thread::sleep(Duration::from_millis(200));
            f2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(matches!(outcome, JobOutcome::TimedOut), "{outcome:?}");
        // The abandoned job still runs to completion on its worker,
        // after which the pool serves new jobs again.
        match pool.run(None, || 1) {
            JobOutcome::Completed(v) => assert_eq!(v, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn queue_is_bounded_by_worker_count() {
        let pool = WorkerPool::new(2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (pool, running, peak) = (&pool, Arc::clone(&running), Arc::clone(&peak));
                s.spawn(move || {
                    let out = pool.run(None, move || {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(30));
                        running.fetch_sub(1, Ordering::SeqCst);
                    });
                    assert!(matches!(out, JobOutcome::Completed(())));
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "{peak:?}");
    }
}
