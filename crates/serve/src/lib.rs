//! `unity-serve` — a persistent, incremental verification service.
//!
//! The paper's method is *characterize once, answer many*: a component's
//! universal properties are established one time and every later
//! composition inherits them. The batch CLI loses the computational
//! half of that bargain — each `unity-check` run rebuilds the packed
//! transition system, reachable set, predecessor index, and BDD order,
//! then throws them away at exit. This crate keeps them: a long-running
//! daemon with
//!
//! - a **content-hashed artifact store** ([`store`]) — submissions are
//!   keyed by spec hash; the expensive session artifacts persist as
//!   checksummed segment files and re-submissions only recompute what
//!   the hash says changed;
//! - an **append-only verdict journal** ([`journal`]) — every report is
//!   a durable, sequence-numbered record, replayed on startup so a
//!   restart (or `kill -9`) loses no history;
//! - a **bounded worker pool** ([`pool`]) — concurrent sessions with
//!   per-job timeouts, and panics contained to an error response;
//! - a thin **hand-rolled HTTP/1.1 protocol** ([`http`], [`proto`],
//!   [`server`]) — `POST /verify`, `GET /status`, `GET /history`,
//!   consumed by `unity-check --serve URL` or anything that speaks
//!   JSON over a socket.
//!
//! The daemon binary lives in `src/main.rs` (`unity-serve --data-dir
//! DIR`); [`service::Service`] is the transport-free core, usable
//! in-process (that is how the test suites and benches drive it).
//!
//! # Resilience
//!
//! The failure surface is explicit and tested, not hoped about. Every
//! fallible syscall boundary carries a named [`unity_fault`] failpoint
//! (zero-cost unless the `failpoints` feature is on); a crash-torture
//! suite kills the real daemon binary at each one and asserts the
//! journal/store invariants across restart. Operationally: per-socket
//! timeouts plus a whole-request deadline (slowloris defense), bounded
//! admission with `503` + `Retry-After` shedding, sticky degraded mode
//! when the disk fails (answers continue, persistence stops, `GET
//! /status` says so), idempotent retry via `request_id`, and graceful
//! drain on `SIGTERM`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod http;
pub mod journal;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod store;

pub use proto::{CacheInfo, CacheState, StatusResponse, VerifyRequest, VerifyResponse};
pub use server::{start, start_with, Server, ServerOptions};
pub use service::{Service, ServiceConfig, ServiceError};
pub use store::spec_hash;
