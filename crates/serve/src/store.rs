//! The content-hashed artifact store.
//!
//! Layout under `<data-dir>/store/`:
//!
//! ```text
//! store/<32-hex program hash>/
//!   spec.unity            # the source that first produced this program
//!   ts_reachable.seg      # packed TransitionSystem, Reachable universe
//!   ts_all_states.seg     # packed TransitionSystem, AllStates universe
//!   pred_reachable.seg    # predecessor CSR over ts_reachable
//!   pred_all_states.seg   # predecessor CSR over ts_all_states
//!   field_order.seg       # tuned BDD field order (symbolic engine)
//!   certs.seg             # component certificates (compositional runs)
//! ```
//!
//! Directories are keyed by [`unity_ag::cert::program_hash`] — the
//! content hash of the *program* (its canonical text), not the spec
//! file. Two spec files that differ only in check lines or comments
//! share one program hash and therefore one set of artifacts: editing a
//! check costs nothing but the check itself (**delta keying**). The
//! spec-file hash ([`spec_hash`]) still exists, but it identifies
//! *submissions* — journal records, history filters, reply-cache keys —
//! never artifacts. Component certificates use the same program-hash
//! scheme, so one keying discipline covers every artifact kind.
//!
//! Every `.seg` file is a [`unity_mc::artifact`] segment: versioned
//! magic header, artifact kind, payload length, checksum. Decoding is
//! defensive end to end — a missing, truncated, corrupt, or
//! version-skewed segment is a **cache miss** (the artifact rebuilds
//! from the spec), never an error and never trusted bytes. Predecessor
//! indexes only decode against a successfully decoded transition system
//! of the same universe, so their structural validation
//! (`PredIndex::from_artifact_bytes`) always has the true state/edge
//! counts to check against.
//!
//! A small in-memory layer (most-recently-submitted specs, capped at
//! [`MEM_CACHE_SPECS`]) fronts the disk: re-submitting a spec the
//! daemon has already seen skips even the segment decode. Writes are
//! atomic (temp file + rename) so a crash mid-persist leaves either the
//! old segment or the new one, not a torn file.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use unity_ag::cert::{CertKey, CertStore};
use unity_core::program::Program;
use unity_mc::artifact::{decode_segment, encode_segment, ByteReader, ByteWriter};
use unity_mc::hasher::FxHasher;
use unity_mc::prelude::{PredIndex, ScanConfig, SessionArtifacts, TransitionSystem};

/// Specs kept decoded in memory (FIFO eviction).
pub const MEM_CACHE_SPECS: usize = 32;

/// Segment kind byte: packed transition system.
pub const KIND_TRANSITION_SYSTEM: u8 = 1;
/// Segment kind byte: predecessor CSR.
pub const KIND_PRED_INDEX: u8 = 2;
/// Segment kind byte: BDD field order.
pub const KIND_FIELD_ORDER: u8 = 3;
/// Segment kind byte: component certificates.
pub const KIND_CERTS: u8 = 4;

/// Universe slot names, indexed like `SessionArtifacts::ts`.
const UNIVERSE_SLOT: [&str; 2] = ["reachable", "all_states"];

/// Content hash of a spec source: two independently salted FxHash
/// passes over the bytes, 32 hex chars. This is the *submission*
/// identity — journal records, history filters, and reply-cache keys —
/// while artifacts key by [`unity_ag::cert::program_hash`]. Not
/// cryptographic — it names operator-submitted specs — but 128 bits
/// keep accidental collisions out of reach, and the stored `spec.unity`
/// makes any collision observable.
pub fn spec_hash(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut lo = FxHasher::default();
    lo.write(bytes);
    let mut hi = FxHasher::default();
    // A different prefix decorrelates the second pass; the length
    // breaks FxHash's trailing-NUL padding collisions.
    hi.write_u64(0x6a09_e667_f3bc_c908);
    hi.write_u64(bytes.len() as u64);
    hi.write(bytes);
    format!("{:016x}{:016x}", lo.finish(), hi.finish())
}

struct MemCache {
    map: HashMap<String, SessionArtifacts>,
    order: VecDeque<String>,
}

/// The on-disk artifact store plus its in-memory front.
pub struct ArtifactStore {
    root: PathBuf,
    mem: Mutex<MemCache>,
}

fn lock(m: &Mutex<MemCache>) -> MutexGuard<'_, MemCache> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Atomic file write: temp sibling + rename. A crash anywhere in here
/// leaves either no destination file or the complete old one — the
/// `store.save.torn` failpoint proves it by writing a prefix of the
/// temp file and aborting before the rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    unity_fault::fail_torn_write!("store.save.torn", f, bytes);
    std::io::Write::write_all(&mut f, bytes)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: PathBuf) -> std::io::Result<ArtifactStore> {
        std::fs::create_dir_all(&root)?;
        Ok(ArtifactStore {
            root,
            mem: Mutex::new(MemCache {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        })
    }

    /// The directory holding one program's artifacts.
    pub fn program_dir(&self, hash: &str) -> PathBuf {
        self.root.join(hash)
    }

    /// Number of distinct programs with a persisted directory.
    pub fn known_programs(&self) -> u64 {
        std::fs::read_dir(&self.root)
            .map(|rd| rd.filter_map(Result::ok).count() as u64)
            .unwrap_or(0)
    }

    /// Loads whatever artifacts the store has for `hash`, decoded
    /// against `program`/`cfg` (the freshly parsed submission). Every
    /// failure — absent file, corrupt segment, mismatched shape — is an
    /// empty slot.
    pub fn load(&self, hash: &str, program: &Program, cfg: &ScanConfig) -> SessionArtifacts {
        if let Some(cached) = lock(&self.mem).map.get(hash) {
            return cached.clone();
        }
        // Injected disk-read failure: every slot is a miss, exactly the
        // contract real read errors get below.
        unity_fault::fail_point!("store.load.read", |_m: String| SessionArtifacts::default());
        let dir = self.program_dir(hash);
        let mut arts = SessionArtifacts::default();
        for (k, slot) in UNIVERSE_SLOT.iter().enumerate() {
            let ts_bytes = match std::fs::read(dir.join(format!("ts_{slot}.seg"))) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let Some(ts) = decode_ts(&ts_bytes, program, cfg) else {
                continue;
            };
            // The predecessor index is only meaningful relative to a
            // decoded transition system: its validation needs the true
            // state and edge counts.
            if let Ok(pred_bytes) = std::fs::read(dir.join(format!("pred_{slot}.seg"))) {
                arts.pred[k] = decode_pred(&pred_bytes, &ts).map(Arc::new);
            }
            arts.ts[k] = Some(Arc::new(ts));
        }
        if let Ok(order_bytes) = std::fs::read(dir.join("field_order.seg")) {
            arts.field_order = decode_field_order(&order_bytes);
        }
        if !arts.is_empty() {
            self.remember(hash, arts.clone());
        }
        arts
    }

    /// Persists the submitted source (once) and every artifact the
    /// session produced. Slots whose segment file already exists are
    /// skipped — a hit re-persisting itself would be wasted I/O.
    pub fn save(&self, hash: &str, spec_src: &str, arts: &SessionArtifacts) -> Result<(), String> {
        let dir = self.program_dir(hash);
        unity_fault::fail_point!("store.save.dir", |m: String| Err(format!(
            "{}: {m}",
            dir.display()
        )));
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        // Encoding a multi-megabyte segment just to discover the file is
        // already there would tax every warm submission, so `put` checks
        // existence before asking the closure to produce any bytes.
        let put = |name: String, bytes: &dyn Fn() -> Option<Vec<u8>>| -> Result<(), String> {
            let path = dir.join(name);
            if path.exists() {
                return Ok(());
            }
            unity_fault::fail_point!("store.save.segment", |m: String| Err(format!(
                "{}: {m}",
                path.display()
            )));
            match bytes() {
                Some(b) => write_atomic(&path, &b).map_err(|e| format!("{}: {e}", path.display())),
                None => Ok(()),
            }
        };
        put("spec.unity".into(), &|| Some(spec_src.as_bytes().to_vec()))?;
        for (k, slot) in UNIVERSE_SLOT.iter().enumerate() {
            if let Some(ts) = &arts.ts[k] {
                // Explicit (uncompiled) stores have no artifact form;
                // they rebuild instead — same policy as a cache miss.
                put(format!("ts_{slot}.seg"), &|| {
                    ts.to_artifact_bytes()
                        .map(|payload| encode_segment(KIND_TRANSITION_SYSTEM, &payload))
                })?;
            }
            if let Some(pred) = &arts.pred[k] {
                put(format!("pred_{slot}.seg"), &|| {
                    Some(encode_segment(KIND_PRED_INDEX, &pred.to_artifact_bytes()))
                })?;
            }
        }
        if let Some(order) = &arts.field_order {
            put("field_order.seg".into(), &|| {
                let mut w = ByteWriter::new();
                w.u32_slice(&order.iter().map(|&v| v as u32).collect::<Vec<u32>>());
                Some(encode_segment(KIND_FIELD_ORDER, &w.into_vec()))
            })?;
        }
        if !arts.is_empty() {
            self.remember(hash, arts.clone());
        }
        Ok(())
    }

    /// Loads every persisted certificate for the given component
    /// program hashes into a seeded [`CertStore`] (nothing dirty).
    /// Decoding is defensive like every other segment: a missing,
    /// corrupt, or malformed `certs.seg` contributes nothing — a miss.
    pub fn load_certs(&self, hashes: &[String]) -> CertStore {
        unity_fault::fail_point!("store.load.read", |_m: String| CertStore::new());
        let mut certs = CertStore::new();
        let mut done: Vec<&str> = Vec::new();
        for hash in hashes {
            // Identical components share one hash and one file.
            if done.contains(&hash.as_str()) {
                continue;
            }
            done.push(hash);
            if let Ok(bytes) = std::fs::read(self.program_dir(hash).join("certs.seg")) {
                decode_certs(&bytes, hash, &mut certs);
            }
        }
        certs
    }

    /// Persists every dirty certificate, grouped into one `certs.seg`
    /// per component program and **merged** with whatever that file
    /// already holds — two systems sharing a component accumulate facts
    /// rather than clobbering each other. Callers clear the store's
    /// dirty set after a successful write.
    pub fn save_certs(&self, certs: &CertStore) -> Result<(), String> {
        let mut by_program: BTreeMap<&str, Vec<(&CertKey, bool)>> = BTreeMap::new();
        for (key, passed) in certs.dirty() {
            by_program
                .entry(&key.program)
                .or_default()
                .push((key, passed));
        }
        for (program, fresh) in by_program {
            let dir = self.program_dir(program);
            unity_fault::fail_point!("store.save.dir", |m: String| Err(format!(
                "{}: {m}",
                dir.display()
            )));
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = dir.join("certs.seg");
            unity_fault::fail_point!("store.save.segment", |m: String| Err(format!(
                "{}: {m}",
                path.display()
            )));
            let mut merged = CertStore::new();
            if let Ok(bytes) = std::fs::read(&path) {
                decode_certs(&bytes, program, &mut merged);
            }
            for (key, passed) in fresh {
                merged.seed(key.clone(), passed);
            }
            let mut w = ByteWriter::new();
            w.u32(merged.len() as u32);
            for (key, passed) in merged.iter() {
                w.u8(key.universe);
                w.u8(u8::from(passed));
                w.bytes(key.property.as_bytes());
            }
            write_atomic(&path, &encode_segment(KIND_CERTS, &w.into_vec()))
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok(())
    }

    fn remember(&self, hash: &str, arts: SessionArtifacts) {
        let mut mem = lock(&self.mem);
        if mem.map.insert(hash.to_string(), arts).is_none() {
            mem.order.push_back(hash.to_string());
            if mem.order.len() > MEM_CACHE_SPECS {
                if let Some(evicted) = mem.order.pop_front() {
                    mem.map.remove(&evicted);
                }
            }
        }
    }

    /// Drops the in-memory layer (tests use this to force disk decode).
    pub fn drop_memory_cache(&self) {
        let mut mem = lock(&self.mem);
        mem.map.clear();
        mem.order.clear();
    }
}

fn decode_ts(bytes: &[u8], program: &Program, cfg: &ScanConfig) -> Option<TransitionSystem> {
    match decode_segment(bytes) {
        Ok((KIND_TRANSITION_SYSTEM, payload)) => {
            TransitionSystem::from_artifact_bytes(program, cfg, payload).ok()
        }
        _ => None,
    }
}

fn decode_pred(bytes: &[u8], ts: &TransitionSystem) -> Option<PredIndex> {
    match decode_segment(bytes) {
        Ok((KIND_PRED_INDEX, payload)) => {
            PredIndex::from_artifact_bytes(payload, ts.len(), ts.transition_count()).ok()
        }
        _ => None,
    }
}

/// Decodes a certificate segment into seeded entries for `program`.
/// Strict within the defensive contract: any malformation discards the
/// whole file (a cache miss), never a partial read.
fn decode_certs(bytes: &[u8], program: &str, certs: &mut CertStore) {
    let payload = match decode_segment(bytes) {
        Ok((KIND_CERTS, p)) => p,
        _ => return,
    };
    let mut r = ByteReader::new(payload);
    let Ok(n) = r.u32() else { return };
    let mut decoded = Vec::new();
    for _ in 0..n {
        let (Ok(universe), Ok(passed), Ok(prop)) = (r.u8(), r.u8(), r.byte_vec()) else {
            return;
        };
        let Ok(property) = String::from_utf8(prop) else {
            return;
        };
        if passed > 1 {
            return;
        }
        decoded.push((universe, passed == 1, property));
    }
    if r.finish().is_err() {
        return;
    }
    for (universe, passed, property) in decoded {
        certs.seed(
            CertKey {
                program: program.to_string(),
                property,
                universe,
            },
            passed,
        );
    }
}

fn decode_field_order(bytes: &[u8]) -> Option<Vec<usize>> {
    match decode_segment(bytes) {
        Ok((KIND_FIELD_ORDER, payload)) => {
            let mut r = ByteReader::new(payload);
            let order = r.u32_vec().ok()?;
            r.finish().ok()?;
            Some(order.into_iter().map(|v| v as usize).collect())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use unity_mc::prelude::*;
    use unity_mc::spec::load_spec;

    const SPEC: &str = "program P\n  var a : int 0..3\n  var b : int 0..3\n  init a == 0 && b == 0\n  fair cmd right: a < 3 -> a := a + 1\n  fair cmd up: b < 3 -> b := b + 1\nend\nspec S\n  done: true leadsto a == 3 && b == 3\nend";

    fn tmp_store(name: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("unity_serve_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    #[test]
    fn hashes_are_stable_hex_and_content_sensitive() {
        let h = spec_hash(SPEC);
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, spec_hash(SPEC), "deterministic");
        assert_ne!(h, spec_hash(&format!("{SPEC} ")), "content-sensitive");
        assert_ne!(spec_hash(""), spec_hash("\0"), "length is mixed in");
    }

    #[test]
    fn artifacts_survive_a_store_round_trip() {
        let store = tmp_store("round_trip");
        let spec = load_spec(SPEC).unwrap();
        let program = &spec.system.composed;
        let cfg = ScanConfig::default();
        let hash = spec_hash(SPEC);

        // Cold: nothing on disk.
        assert!(store.load(&hash, program, &cfg).is_empty());

        let mut session = Verifier::new(program, cfg.clone());
        let report = session.verify_all(&spec.checks);
        assert!(report.all_passed());
        let produced = session.artifacts();
        assert!(produced.ts[0].is_some(), "leadsto built the reachable ts");
        assert!(produced.pred[0].is_some(), "and its predecessor index");
        store.save(&hash, SPEC, &produced).unwrap();

        // Warm via memory.
        let warm = store.load(&hash, program, &cfg);
        assert!(Arc::ptr_eq(
            warm.ts[0].as_ref().unwrap(),
            produced.ts[0].as_ref().unwrap()
        ));

        // Warm via disk only.
        store.drop_memory_cache();
        let disk = store.load(&hash, program, &cfg);
        let ts = disk.ts[0].as_ref().expect("decoded from segment");
        assert_eq!(ts.len(), produced.ts[0].as_ref().unwrap().len());
        assert!(disk.pred[0].is_some());
        assert_eq!(
            std::fs::read_to_string(store.program_dir(&hash).join("spec.unity")).unwrap(),
            SPEC
        );
        assert_eq!(store.known_programs(), 1);
    }

    #[test]
    fn corrupt_segments_degrade_to_misses() {
        let store = tmp_store("corrupt");
        let spec = load_spec(SPEC).unwrap();
        let program = &spec.system.composed;
        let cfg = ScanConfig::default();
        let hash = spec_hash(SPEC);
        let mut session = Verifier::new(program, cfg.clone());
        let _ = session.verify_all(&spec.checks);
        store.save(&hash, SPEC, &session.artifacts()).unwrap();
        store.drop_memory_cache();

        // Flip one payload byte in the transition-system segment: both
        // it and the (dependent) predecessor index become misses.
        let ts_path = store.program_dir(&hash).join("ts_reachable.seg");
        let mut bytes = std::fs::read(&ts_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&ts_path, &bytes).unwrap();
        let loaded = store.load(&hash, program, &cfg);
        assert!(loaded.ts[0].is_none());
        assert!(loaded.pred[0].is_none());
    }

    #[test]
    fn certificates_round_trip_and_merge() {
        let store = tmp_store("certs");
        let key = |program: &str, prop: &str| CertKey {
            program: program.into(),
            property: prop.into(),
            universe: unity_ag::cert::UNIVERSE_INDUCTIVE,
        };
        let h1 = "a".repeat(32);
        let h2 = "b".repeat(32);
        let mut fresh = CertStore::new();
        fresh.insert(key(&h1, "invariant x <= 3 | x : int 0..3"), true);
        fresh.insert(key(&h1, "stable x == 3 | x : int 0..3"), false);
        fresh.insert(key(&h2, "invariant y <= 1 | y : int 0..1"), true);
        store.save_certs(&fresh).unwrap();

        // Duplicate hashes in the request are deduplicated, not re-read.
        let loaded = store.load_certs(&[h1.clone(), h2.clone(), h1.clone()]);
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.dirty_len(), 0, "loaded facts seed, not dirty");
        assert_eq!(
            loaded.get(&key(&h1, "stable x == 3 | x : int 0..3")),
            Some(false)
        );

        // A later run adds facts about h1 without clobbering the first.
        let mut more = CertStore::new();
        more.insert(key(&h1, "transient x == 0 | x : int 0..3"), true);
        store.save_certs(&more).unwrap();
        let merged = store.load_certs(std::slice::from_ref(&h1));
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.get(&key(&h1, "invariant x <= 3 | x : int 0..3")),
            Some(true)
        );
        assert_eq!(
            merged.get(&key(&h1, "transient x == 0 | x : int 0..3")),
            Some(true)
        );
    }

    #[test]
    fn corrupt_cert_segments_are_misses() {
        let store = tmp_store("corrupt_certs");
        let h = "c".repeat(32);
        let mut fresh = CertStore::new();
        fresh.insert(
            CertKey {
                program: h.clone(),
                property: "invariant x <= 3 | x : int 0..3".into(),
                universe: unity_ag::cert::UNIVERSE_INDUCTIVE,
            },
            true,
        );
        store.save_certs(&fresh).unwrap();
        let path = store.program_dir(&h).join("certs.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_certs(std::slice::from_ref(&h)).is_empty());
    }
}
