//! The append-only verdict journal.
//!
//! Every completed verification appends one line to
//! `<data-dir>/journal.log`:
//!
//! ```text
//! {"seq":N,"spec":"<32-hex content hash>","report":{...}}
//! ```
//!
//! `seq` is strictly increasing from 1; `report` is the stable
//! [`Report`] schema (the same JSON `unity-check --json` writes). The
//! line is flushed *and* synced before the sequence number is handed
//! out, so a `kill -9` after a response was sent cannot lose that
//! response's record.
//!
//! On startup the whole file is replayed. Exactly one kind of damage is
//! tolerated: a torn **final** line with no trailing newline — the
//! signature of dying mid-append — which is discarded. Any other
//! malformed line is corruption and [`Journal::open`] refuses to start,
//! because silently skipping interior records would misnumber every
//! later sequence. (The hardened [`unity_mc::json`] parser — duplicate
//! keys, trailing garbage, truncated strings all rejected — is what
//! makes this replay trustworthy.)

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use unity_mc::json::{write_string, Json};
use unity_mc::prelude::Report;

/// One replayed journal record.
#[derive(Debug)]
pub struct JournalRecord {
    /// Sequence number (strictly increasing from 1).
    pub seq: u64,
    /// Content hash of the verified spec.
    pub spec_hash: String,
    /// The full verdict report.
    pub report: Report,
}

/// The open journal: replay happens in [`Journal::open`], appends go
/// through [`Journal::append`].
#[derive(Debug)]
pub struct Journal {
    file: File,
    next_seq: u64,
}

fn parse_line(line: &[u8]) -> Result<JournalRecord, String> {
    let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_string())?;
    let root = Json::parse(text)?;
    let seq = u64::try_from(root.field("seq")?.as_int()?).map_err(|_| "negative seq")?;
    if seq == 0 {
        return Err("sequence numbers start at 1".into());
    }
    Ok(JournalRecord {
        seq,
        spec_hash: root.field("spec")?.as_str()?.to_string(),
        report: Report::from_value(root.field("report")?)?,
    })
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// record. Returns the journal positioned after the last good
    /// record, plus the replayed history in sequence order.
    pub fn open(path: &Path) -> Result<(Journal, Vec<JournalRecord>), String> {
        let mut records = Vec::new();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let mut last_seq = 0u64;
        let mut pos = 0usize; // start of the first unconsumed byte
        let mut record_no = 0usize;
        let mut torn = false;
        while pos < bytes.len() {
            let newline = bytes[pos..].iter().position(|&b| b == b'\n');
            let (line, next, terminated) = match newline {
                Some(k) => (&bytes[pos..pos + k], pos + k + 1, true),
                None => (&bytes[pos..], bytes.len(), false),
            };
            if line.is_empty() {
                pos = next;
                continue;
            }
            record_no += 1;
            match parse_line(line) {
                Ok(rec) => {
                    if rec.seq <= last_seq {
                        return Err(format!(
                            "{}: record {record_no} has seq {} after {}",
                            path.display(),
                            rec.seq,
                            last_seq
                        ));
                    }
                    last_seq = rec.seq;
                    records.push(rec);
                    pos = next;
                }
                // A torn final line (no trailing newline) is the one
                // tolerated failure: the daemon died mid-append and the
                // record was never acknowledged. It is truncated away
                // below so later appends start on a clean boundary.
                Err(_) if !terminated => {
                    torn = true;
                    break;
                }
                Err(e) => {
                    return Err(format!(
                        "{}: record {record_no} corrupt: {e}",
                        path.display()
                    ))
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if torn {
            // `pos` is the byte offset where the torn record starts.
            file.set_len(pos as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("{}: truncating torn tail: {e}", path.display()))?;
        } else if pos > 0 && bytes.last() != Some(&b'\n') {
            // The final record parsed but lost its newline (hand-edited
            // file): terminate it so the next append stays one-per-line.
            file.write_all(b"\n")
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok((
            Journal {
                file,
                next_seq: last_seq + 1,
            },
            records,
        ))
    }

    /// Appends one verdict, returning its sequence number. The record
    /// is synced to disk before this returns.
    pub fn append(&mut self, spec_hash: &str, report: &Report) -> Result<u64, String> {
        let seq = self.next_seq;
        let mut line = String::with_capacity(128);
        line.push_str(&format!("{{\"seq\":{seq},\"spec\":"));
        write_string(&mut line, spec_hash);
        line.push_str(",\"report\":");
        line.push_str(&report.to_json());
        line.push_str("}\n");
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("journal append: {e}"))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;
    use unity_mc::spec::load_spec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("unity_serve_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tiny_report() -> Report {
        let spec = load_spec(
            "program P\n  var x : bool\n  init !x\n  fair cmd go: !x -> x := true\nend\n\
             spec S\n  goal: true leadsto x\nend",
        )
        .unwrap();
        let mut session = Verifier::new(&spec.system.composed, ScanConfig::default());
        session.verify_all(&spec.checks)
    }

    #[test]
    fn appends_replay_in_order() {
        let path = tmp("replay.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(j.append("aa11", &report).unwrap(), 1);
            assert_eq!(j.append("bb22", &report).unwrap(), 2);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(j.next_seq(), 3);
        assert_eq!(replayed.len(), 2);
        assert_eq!(
            (replayed[0].seq, replayed[0].spec_hash.as_str()),
            (1, "aa11")
        );
        assert_eq!(
            (replayed[1].seq, replayed[1].spec_hash.as_str()),
            (2, "bb22")
        );
        assert_eq!(replayed[0].report.checks.len(), report.checks.len());
        assert!(replayed[0].report.all_passed());
    }

    #[test]
    fn torn_final_line_is_discarded_not_fatal() {
        let path = tmp("torn.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
        }
        // Simulate dying mid-append: a prefix of a record, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"seq\":2,\"spec\":\"bb22\",\"repo");
        std::fs::write(&path, &bytes).unwrap();
        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        // The next append reuses the torn record's number.
        assert_eq!(j.append("bb22", &report).unwrap(), 2);
    }

    #[test]
    fn interior_corruption_refuses_to_start() {
        let path = tmp("corrupt.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
            j.append("bb22", &report).unwrap();
        }
        let good = std::fs::read_to_string(&path).unwrap();
        // Damage the FIRST line (newline preserved): not a torn tail.
        let damaged = good.replacen("\"seq\":1", "\"seq\":", 1);
        std::fs::write(&path, damaged).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("record 1 corrupt"), "{err}");

        // Duplicate keys smuggled into a record are corruption too —
        // the hardened parser rejects them during replay.
        let dup = good.replacen("\"seq\":1", "\"seq\":1,\"seq\":9", 1);
        std::fs::write(&path, dup).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
    }

    #[test]
    fn sequence_must_strictly_increase() {
        let path = tmp("seq.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
        }
        let line = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{line}{line}")).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("seq 1 after 1"), "{err}");
    }
}
