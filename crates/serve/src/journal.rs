//! The append-only verdict journal.
//!
//! Every completed verification appends one line to
//! `<data-dir>/journal.log`:
//!
//! ```text
//! {"seq":N,"spec":"<32-hex content hash>","report":{...},"crc":"<16-hex>"}
//! ```
//!
//! `seq` is strictly increasing from 1; `report` is the stable
//! [`Report`] schema (the same JSON `unity-check --json` writes); `crc`
//! is an [`unity_mc::artifact::checksum_hex`] digest of the record
//! bytes before the `crc` field itself, so bit rot *inside* a record is
//! distinguishable from a malformed write. The line is flushed *and*
//! synced before the sequence number is handed out, so a `kill -9`
//! after a response was sent cannot lose that response's record.
//!
//! On startup the whole file is replayed. Exactly one kind of damage is
//! tolerated: a torn **final** line with no trailing newline — the
//! signature of dying mid-append — which is discarded. Any other
//! malformed line is corruption and [`Journal::open`] refuses to start,
//! because silently skipping interior records would misnumber every
//! later sequence. The refusal is a diagnosis, not a shrug: the error
//! names the record, its byte offset in the file, and (for digest
//! failures) the stored versus computed checksum, so an operator can
//! find and excise the damage with `dd`-level confidence. Records
//! without a `crc` field (journals written before the field existed)
//! replay without the digest check — the schema is absence-tolerant in
//! both directions.
//!
//! Fault injection (`failpoints` feature, see [`unity_fault`]): the
//! append path carries failpoints at every boundary a crash could
//! land on — `journal.append.write` (also a torn-write point),
//! `journal.append.pre_fsync`, `journal.append.post_fsync` — and
//! `journal.open.read` covers replay I/O. The crash-torture suite
//! drives each one.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use unity_mc::artifact::{checksum, checksum_hex, parse_checksum_hex};
use unity_mc::json::{write_string, Json};
use unity_mc::prelude::Report;

/// One replayed journal record.
#[derive(Debug)]
pub struct JournalRecord {
    /// Sequence number (strictly increasing from 1).
    pub seq: u64,
    /// Content hash of the verified spec.
    pub spec_hash: String,
    /// The full verdict report.
    pub report: Report,
}

/// The open journal: replay happens in [`Journal::open`], appends go
/// through [`Journal::append`].
#[derive(Debug)]
pub struct Journal {
    file: File,
    next_seq: u64,
}

/// The parse result plus the record's stored digest, if it carries one.
struct ParsedLine {
    record: JournalRecord,
    crc: Option<u64>,
}

fn parse_line(line: &[u8]) -> Result<ParsedLine, String> {
    let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_string())?;
    let root = Json::parse(text)?;
    let seq = u64::try_from(root.field("seq")?.as_int()?).map_err(|_| "negative seq")?;
    if seq == 0 {
        return Err("sequence numbers start at 1".into());
    }
    let crc = match root.field("crc") {
        Ok(v) => Some(parse_checksum_hex(v.as_str()?).map_err(|e| format!("crc field: {e}"))?),
        Err(_) => None, // pre-crc journal: accepted without the digest check
    };
    Ok(ParsedLine {
        record: JournalRecord {
            seq,
            spec_hash: root.field("spec")?.as_str()?.to_string(),
            report: Report::from_value(root.field("report")?)?,
        },
        crc,
    })
}

/// Recomputes the digest a record's `crc` field must match: the raw
/// line bytes with the trailing `,"crc":"..."` splice removed (the
/// writer always places `crc` last). Returns `None` when the splice
/// point cannot be located — then the record was not written by
/// [`Journal::append`] and the stored digest is checked against the
/// whole-line fallback of zero, i.e. it fails loudly.
fn recompute_crc(line: &[u8]) -> Option<u64> {
    let marker = b",\"crc\":\"";
    let at = line.windows(marker.len()).rposition(|w| w == marker)?;
    let mut payload = Vec::with_capacity(at + 1);
    payload.extend_from_slice(&line[..at]);
    payload.push(b'}');
    Some(checksum(&payload))
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// record. Returns the journal positioned after the last good
    /// record, plus the replayed history in sequence order.
    pub fn open(path: &Path) -> Result<(Journal, Vec<JournalRecord>), String> {
        unity_fault::fail_point!("journal.open.read", |m: String| Err(format!(
            "{}: {m}",
            path.display()
        )));
        let mut records = Vec::new();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let mut last_seq = 0u64;
        let mut pos = 0usize; // start of the first unconsumed byte
        let mut record_no = 0usize;
        let mut torn = false;
        while pos < bytes.len() {
            let newline = bytes[pos..].iter().position(|&b| b == b'\n');
            let (line, next, terminated) = match newline {
                Some(k) => (&bytes[pos..pos + k], pos + k + 1, true),
                None => (&bytes[pos..], bytes.len(), false),
            };
            if line.is_empty() {
                pos = next;
                continue;
            }
            record_no += 1;
            match parse_line(line) {
                Ok(parsed) => {
                    let rec = parsed.record;
                    if let Some(stored) = parsed.crc {
                        let computed = recompute_crc(line).unwrap_or(0);
                        if stored != computed {
                            return Err(format!(
                                "{}: record {record_no} (seq {}) at byte offset {pos}: \
                                 checksum mismatch (stored {:016x}, computed {computed:016x})",
                                path.display(),
                                rec.seq,
                                stored,
                            ));
                        }
                    }
                    if rec.seq <= last_seq {
                        return Err(format!(
                            "{}: record {record_no} at byte offset {pos} has seq {} after {}",
                            path.display(),
                            rec.seq,
                            last_seq
                        ));
                    }
                    last_seq = rec.seq;
                    records.push(rec);
                    pos = next;
                }
                // A torn final line (no trailing newline) is the one
                // tolerated failure: the daemon died mid-append and the
                // record was never acknowledged. It is truncated away
                // below so later appends start on a clean boundary.
                Err(_) if !terminated => {
                    torn = true;
                    break;
                }
                Err(e) => {
                    return Err(format!(
                        "{}: record {record_no} at byte offset {pos} corrupt: {e}",
                        path.display()
                    ))
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if torn {
            // `pos` is the byte offset where the torn record starts.
            file.set_len(pos as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("{}: truncating torn tail: {e}", path.display()))?;
        } else if pos > 0 && bytes.last() != Some(&b'\n') {
            // The final record parsed but lost its newline (hand-edited
            // file): terminate it so the next append stays one-per-line.
            file.write_all(b"\n")
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok((
            Journal {
                file,
                next_seq: last_seq + 1,
            },
            records,
        ))
    }

    /// Appends one verdict, returning its sequence number. The record
    /// is synced to disk before this returns.
    pub fn append(&mut self, spec_hash: &str, report: &Report) -> Result<u64, String> {
        let seq = self.next_seq;
        let mut payload = String::with_capacity(128);
        payload.push_str(&format!("{{\"seq\":{seq},\"spec\":"));
        write_string(&mut payload, spec_hash);
        payload.push_str(",\"report\":");
        payload.push_str(&report.to_json());
        payload.push('}');
        let digest = checksum_hex(payload.as_bytes());
        // Splice the digest in as the final field: everything before it
        // is exactly the payload the replay-side recompute covers.
        let mut line = payload;
        line.truncate(line.len() - 1);
        line.push_str(&format!(",\"crc\":\"{digest}\"}}\n"));
        unity_fault::fail_torn_write!("journal.append.write", self.file, line.as_bytes());
        unity_fault::fail_point!("journal.append.write", |m: String| Err(format!(
            "journal append: {m}"
        )));
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("journal append: {e}"))?;
        unity_fault::fail_point!("journal.append.pre_fsync", |m: String| Err(format!(
            "journal fsync: {m}"
        )));
        self.file
            .sync_data()
            .map_err(|e| format!("journal fsync: {e}"))?;
        unity_fault::fail_point!("journal.append.post_fsync", |m: String| Err(format!(
            "journal post-sync: {m}"
        )));
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Hands out the next sequence number *without* persisting anything
    /// — the degraded-mode path, where the disk is gone but the service
    /// keeps answering. Numbers stay strictly increasing within the
    /// process; they restart from the last durable record after a
    /// restart, which is exactly the contract degraded mode advertises.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq = seq + 1;
        seq
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use unity_mc::prelude::*;
    use unity_mc::spec::load_spec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("unity_serve_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tiny_report() -> Report {
        let spec = load_spec(
            "program P\n  var x : bool\n  init !x\n  fair cmd go: !x -> x := true\nend\n\
             spec S\n  goal: true leadsto x\nend",
        )
        .unwrap();
        let mut session = Verifier::new(&spec.system.composed, ScanConfig::default());
        session.verify_all(&spec.checks)
    }

    #[test]
    fn appends_replay_in_order() {
        let path = tmp("replay.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(j.append("aa11", &report).unwrap(), 1);
            assert_eq!(j.append("bb22", &report).unwrap(), 2);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(j.next_seq(), 3);
        assert_eq!(replayed.len(), 2);
        assert_eq!(
            (replayed[0].seq, replayed[0].spec_hash.as_str()),
            (1, "aa11")
        );
        assert_eq!(
            (replayed[1].seq, replayed[1].spec_hash.as_str()),
            (2, "bb22")
        );
        assert_eq!(replayed[0].report.checks.len(), report.checks.len());
        assert!(replayed[0].report.all_passed());
    }

    #[test]
    fn torn_final_line_is_discarded_not_fatal() {
        let path = tmp("torn.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
        }
        // Simulate dying mid-append: a prefix of a record, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"seq\":2,\"spec\":\"bb22\",\"repo");
        std::fs::write(&path, &bytes).unwrap();
        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        // The next append reuses the torn record's number.
        assert_eq!(j.append("bb22", &report).unwrap(), 2);
    }

    #[test]
    fn interior_corruption_refuses_to_start_naming_the_offset() {
        let path = tmp("corrupt.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
            j.append("bb22", &report).unwrap();
        }
        let good = std::fs::read_to_string(&path).unwrap();
        // Damage the FIRST line (newline preserved): not a torn tail.
        let damaged = good.replacen("\"seq\":1", "\"seq\":", 1);
        std::fs::write(&path, damaged).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("record 1 at byte offset 0 corrupt"), "{err}");

        // Duplicate keys smuggled into a record are corruption too —
        // the hardened parser rejects them during replay.
        let dup = good.replacen("\"seq\":1", "\"seq\":1,\"seq\":9", 1);
        std::fs::write(&path, dup).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
    }

    #[test]
    fn bit_rot_inside_a_record_is_a_named_checksum_mismatch() {
        let path = tmp("bitrot.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
            j.append("bb22", &report).unwrap();
        }
        let good = std::fs::read_to_string(&path).unwrap();
        let second_at = good.find('\n').unwrap() + 1;
        // Flip the spec hash of the SECOND record: still valid JSON,
        // still seq-ordered — only the digest knows.
        let rotted = format!(
            "{}{}",
            &good[..second_at],
            good[second_at..].replacen("bb22", "bb23", 1)
        );
        std::fs::write(&path, rotted).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("record 2"), "{err}");
        assert!(err.contains("seq 2"), "{err}");
        assert!(err.contains(&format!("byte offset {second_at}")), "{err}");
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(err.contains("stored") && err.contains("computed"), "{err}");
    }

    #[test]
    fn records_without_a_crc_field_still_replay() {
        let path = tmp("precrc.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
        }
        // Strip the crc field: the pre-digest on-disk schema.
        let good = std::fs::read_to_string(&path).unwrap();
        let at = good.rfind(",\"crc\":\"").unwrap();
        std::fs::write(&path, format!("{}}}\n", &good[..at])).unwrap();
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].spec_hash, "aa11");
        assert_eq!(j.next_seq(), 2);
    }

    #[test]
    fn sequence_must_strictly_increase() {
        let path = tmp("seq.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("aa11", &report).unwrap();
        }
        let line = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{line}{line}")).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("seq 1 after 1"), "{err}");
    }

    #[test]
    fn reserved_sequence_numbers_are_not_persisted() {
        let path = tmp("reserve.log");
        let _ = std::fs::remove_file(&path);
        let report = tiny_report();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            assert_eq!(j.append("aa11", &report).unwrap(), 1);
            assert_eq!(j.reserve_seq(), 2);
            assert_eq!(j.reserve_seq(), 3);
            // Appends after reservations stay strictly increasing.
            assert_eq!(j.append("bb22", &report).unwrap(), 4);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        // Only the durable records replay; the reserved numbers are
        // gone, and numbering resumes after the last durable one.
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].seq, 4);
        assert_eq!(j.next_seq(), 5);
    }
}
